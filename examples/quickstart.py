#!/usr/bin/env python
"""Quickstart: private social recommendations in ~40 lines.

Builds a small synthetic social-music dataset, fits the non-private
recommender and the differentially private framework side by side, and
prints both top-10 lists plus the NDCG agreement between them.

Run:  python examples/quickstart.py
"""

from repro import (
    CommonNeighbors,
    PrivateSocialRecommender,
    SocialRecommender,
    SyntheticDatasetSpec,
    ndcg_at_n,
)


def main() -> None:
    # A Last.fm-shaped dataset at 10% scale: ~190 users, ~350 items.
    dataset = SyntheticDatasetSpec.lastfm_like(scale=0.1).generate(seed=42)
    print(f"dataset: {dataset}\n")

    measure = CommonNeighbors()

    # The exact, non-private recommender (Definition 4 of the paper).
    exact = SocialRecommender(measure, n=10)
    exact.fit(dataset.social, dataset.preferences)

    # The private framework (Algorithm 1): Louvain clustering over the
    # public social graph + noisy per-cluster average preference weights.
    private = PrivateSocialRecommender(measure, epsilon=0.6, n=10, seed=7)
    private.fit(dataset.social, dataset.preferences)
    print(
        f"clustering: {private.clustering_.num_clusters} communities, "
        f"end-to-end privacy cost epsilon = {private.total_epsilon():g}\n"
    )

    user = dataset.social.users()[0]
    exact_list = exact.recommend(user)
    private_list = private.recommend(user)
    print(f"top-10 for user {user!r} (non-private): {exact_list.item_ids()}")
    print(f"top-10 for user {user!r} (eps=0.6):     {private_list.item_ids()}")

    score = ndcg_at_n(
        private_list.item_ids(),
        exact_list.item_ids(),
        exact.utilities(user),
        n=10,
    )
    print(f"\nNDCG@10 of the private list for this user: {score:.3f}")


if __name__ == "__main__":
    main()
