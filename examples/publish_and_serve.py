#!/usr/bin/env python
"""Scenario: publish the sanitised release once, serve it forever.

Differential privacy's post-processing property means the framework's
noisy cluster averages are a *publishable artifact*: compute them once at
privacy cost epsilon, write them to disk, and serve recommendations from
the file indefinitely — against any snapshot of the public social graph,
to users who did not even exist at release time — with zero further
privacy spend.

This example fits the framework, saves the release, deletes the private
preference data, reloads the artifact, and serves a brand-new user who
joined the social network after the release.

Run:  python examples/publish_and_serve.py
"""

import os
import tempfile

from repro import CommonNeighbors, PrivateSocialRecommender
from repro.core.persistence import PublishedRelease
from repro.datasets import SyntheticDatasetSpec


def main() -> None:
    dataset = SyntheticDatasetSpec.lastfm_like(scale=0.1).generate(seed=51)
    print(f"dataset: {dataset}\n")

    # --- release time: the only moment private data is touched ---------
    recommender = PrivateSocialRecommender(
        CommonNeighbors(), epsilon=0.5, n=10, seed=52
    )
    recommender.fit(dataset.social, dataset.preferences)
    release = PublishedRelease.from_recommender(recommender)

    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "release.npz")
        release.save(path)
        size_kb = os.path.getsize(path) / 1024
        print(
            f"released {release.weights.matrix.shape[0]} items x "
            f"{release.weights.matrix.shape[1]} clusters at epsilon = "
            f"{release.epsilon:g}  ({size_kb:.0f} KiB on disk)"
        )

        # The private data can now be destroyed; only the artifact and the
        # public social graph are needed from here on.
        del recommender, dataset.preferences

        # --- serve time: later, on another machine ---------------------
        loaded = PublishedRelease.load(path)
        social = dataset.social.copy()

        veteran = social.users()[0]
        server = loaded.server(social)
        print(f"\nveteran user {veteran!r}: {server.recommend(veteran).item_ids()}")

        # A newcomer befriends two existing users after the release.
        social.add_edge("newcomer", social.users()[1])
        social.add_edge("newcomer", social.users()[2])
        server = loaded.server(social)
        print(f"new user 'newcomer':   {server.recommend('newcomer').item_ids()}")

    print(
        "\nBoth queries are free post-processing: the epsilon was paid "
        "once, at release time."
    )


if __name__ == "__main__":
    main()
