#!/usr/bin/env python
"""Scenario: weighted (ratings-style) preferences — the §7 extension.

The paper's model is unweighted, but its Section 7 proposes extending the
framework to weighted preference edges (e.g. star ratings).  The library
supports this through the ``max_weight`` cap: edges are clipped to the cap
and the per-cluster noise is calibrated to ``max_weight / |c|``.

This example builds a movie-ratings dataset (weights 0.5-5.0), runs the
private framework with ``max_weight=5.0``, and shows that (a) rating
intensity influences the rankings, and (b) the privacy cost is still
exactly epsilon while noise scales with the cap.

Run:  python examples/weighted_ratings.py
"""

import numpy as np

from repro import CommonNeighbors, PrivateSocialRecommender, SocialRecommender
from repro.datasets import SyntheticDatasetSpec
from repro.graph.preference_graph import PreferenceGraph


def with_synthetic_ratings(dataset, seed: int) -> PreferenceGraph:
    """Replace the 0/1 weights with ratings in {0.5, 1, ..., 5}."""
    rng = np.random.default_rng(seed)
    rated = PreferenceGraph()
    rated.add_users(dataset.preferences.users())
    for item in dataset.preferences.items():
        rated.add_item(item)
    for user, item, _weight in dataset.preferences.edges():
        # Ratings skew positive, like real rating data.
        rating = min(5.0, max(0.5, rng.normal(3.8, 1.0)))
        rated.add_edge(user, item, weight=round(rating * 2) / 2)
    return rated


def main() -> None:
    dataset = SyntheticDatasetSpec.flixster_like(scale=0.002).generate(seed=21)
    ratings = with_synthetic_ratings(dataset, seed=22)
    print(f"dataset: {dataset.name} with ratings in [0.5, 5.0]")
    print(f"users: {dataset.social.num_users}, items: {ratings.num_items}\n")

    measure = CommonNeighbors()
    user = dataset.social.users()[0]

    exact = SocialRecommender(measure, n=10)
    exact.fit(dataset.social, ratings)
    print(f"non-private top-10 (rating-weighted): {exact.recommend(user).item_ids()}")

    # The cap bounds each rating's influence; noise scale = cap / (|c| eps).
    private = PrivateSocialRecommender(
        measure, epsilon=0.6, n=10, seed=23, max_weight=5.0
    )
    private.fit(dataset.social, ratings)
    print(f"private top-10 (eps=0.6, cap=5):      {private.recommend(user).item_ids()}")
    print(f"privacy cost: epsilon = {private.total_epsilon():g}\n")

    # Capping more aggressively trades rating fidelity for less noise:
    # every edge counts as at most 2 stars, but the Laplace scale drops by
    # the same factor.  On sparse data the lower-noise release often wins.
    capped = PrivateSocialRecommender(
        measure, epsilon=0.6, n=10, seed=23, max_weight=2.0
    )
    capped.fit(dataset.social, ratings)
    print(f"private top-10 (eps=0.6, cap=2):      {capped.recommend(user).item_ids()}")
    print(
        "\nThe cap is a tuning knob: max_weight=5 preserves rating "
        "intensity, max_weight=2 injects 2.5x less noise per cluster."
    )


if __name__ == "__main__":
    main()
