#!/usr/bin/env python
"""Scenario: the Section 2.3 Sybil attack, and why DP stops it.

An attacker wants to learn which items a victim privately prefers.  They
befriend (or fabricate) a degree-one neighbor of the victim with a fake
account, then read the fake account's recommendations: against the
non-private recommender every positive-utility recommendation is one of the
victim's private edges.  This demo runs the attack against the non-private
recommender and against the private framework at several privacy levels,
printing the attacker's precision/recall at each.

Run:  python examples/sybil_attack_demo.py
"""

from repro import CommonNeighbors, PrivateSocialRecommender, SocialRecommender
from repro.attacks import run_attack_experiment
from repro.datasets import SyntheticDatasetSpec


def main() -> None:
    dataset = SyntheticDatasetSpec.lastfm_like(scale=0.1).generate(seed=9)
    print(f"dataset: {dataset}\n")

    # Target the highest-preference-count user so the attack has something
    # substantial to steal.
    victim = max(
        (u for u in dataset.social.users() if dataset.preferences.has_user(u)),
        key=dataset.preferences.user_degree,
    )
    n_secrets = dataset.preferences.user_degree(victim)
    print(f"victim: user {victim!r} with {n_secrets} private preference edges\n")

    report = run_attack_experiment(
        dataset.social,
        dataset.preferences,
        victim,
        lambda: SocialRecommender(CommonNeighbors(), n=100),
        top_n=100,
    )
    print(
        f"non-private recommender: the attacker recovers "
        f"{len(set(report.inferred) & set(report.actual))}/{n_secrets} edges "
        f"(precision={report.precision:.2f}, recall={report.recall:.2f})"
    )

    for epsilon in (1.0, 0.5, 0.1):
        report = run_attack_experiment(
            dataset.social,
            dataset.preferences,
            victim,
            lambda eps=epsilon: PrivateSocialRecommender(
                CommonNeighbors(), epsilon=eps, n=100, seed=13
            ),
            top_n=100,
        )
        hits = len(set(report.inferred) & set(report.actual))
        print(
            f"private, eps={epsilon:<4}: attacker recovers {hits}/{n_secrets} "
            f"(precision={report.precision:.2f}, recall={report.recall:.2f}) "
            f"- mostly cluster-popular guesses, not the victim's edges"
        )

    print(
        "\nUnder differential privacy the attacker's channel still exists, "
        "but Theorem 4 bounds what flows through it: the observer's "
        "recommendations are dominated by cluster-level averages and noise."
    )


if __name__ == "__main__":
    main()
