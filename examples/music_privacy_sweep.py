#!/usr/bin/env python
"""Scenario: a social music service tuning its privacy budget.

The service (think Last.fm) wants to recommend artists from friends'
listening histories without revealing *what anyone listened to*.  This
example sweeps the privacy parameter across the paper's range for all four
similarity measures and prints the Figure-1-style table, so an operator
can pick the strongest epsilon that still meets their accuracy bar.

Run:  python examples/music_privacy_sweep.py
"""

import math

from repro import AdamicAdar, CommonNeighbors, GraphDistance, Katz
from repro.datasets import SyntheticDatasetSpec
from repro.experiments import format_tradeoff_table, run_tradeoff


def main() -> None:
    dataset = SyntheticDatasetSpec.lastfm_like(scale=0.15).generate(seed=11)
    print(f"dataset: {dataset}\n")

    cells = run_tradeoff(
        dataset,
        measures=[AdamicAdar(), CommonNeighbors(), GraphDistance(), Katz()],
        epsilons=(math.inf, 1.0, 0.6, 0.1, 0.05, 0.01),
        ns=(10, 50),
        repeats=3,
        seed=11,
    )
    for n in (10, 50):
        print(format_tradeoff_table(cells, n))
        print()

    # Operator guidance: strongest epsilon whose NDCG@10 stays above 0.9.
    usable = [
        c
        for c in cells
        if c.n == 10 and not math.isinf(c.epsilon) and c.ndcg_mean >= 0.9
    ]
    if usable:
        best = min(usable, key=lambda c: c.epsilon)
        print(
            f"strongest setting with NDCG@10 >= 0.9: eps={best.epsilon:g} "
            f"({best.measure.upper()}, NDCG@10={best.ndcg_mean:.3f})"
        )
    else:
        print("no setting reached NDCG@10 >= 0.9 on this dataset")


if __name__ == "__main__":
    main()
