#!/usr/bin/env python
"""Scenario: a service re-computing recommendations as the graphs evolve.

The paper assumes a single static snapshot (Section 2.3) and names dynamic
graphs its main future-work direction (Section 7).  The library's
composition-based treatment: a :class:`DynamicPrivateRecommender` holds a
total privacy budget and charges each snapshot under sequential
composition.  This example simulates a growing social network across four
weekly snapshots and shows the two allocation policies side by side.

Run:  python examples/dynamic_snapshots.py
"""

import numpy as np

from repro import (
    CommonNeighbors,
    DynamicPrivateRecommender,
    decay_allocation,
    uniform_allocation,
)
from repro.datasets import SyntheticDatasetSpec


def evolve(dataset, week: int, rng):
    """A later snapshot: the same graphs plus some new edges."""
    social = dataset.social.copy()
    prefs = dataset.preferences.copy()
    users = social.users()
    for _ in range(15 * week):
        u, v = rng.choice(len(users), size=2, replace=False)
        u, v = users[int(u)], users[int(v)]
        if not social.has_edge(u, v):
            social.add_edge(u, v)
    items = prefs.items()
    for _ in range(40 * week):
        u = users[int(rng.integers(len(users)))]
        i = items[int(rng.integers(len(items)))]
        if not prefs.has_edge(u, i):
            prefs.add_edge(u, i)
    return social, prefs


def main() -> None:
    dataset = SyntheticDatasetSpec.lastfm_like(scale=0.08).generate(seed=31)
    rng = np.random.default_rng(32)
    snapshots = [(dataset.social, dataset.preferences)] + [
        evolve(dataset, week, rng) for week in (1, 2, 3)
    ]
    user = dataset.social.users()[0]
    total = 1.0

    print(f"total privacy budget: epsilon = {total}\n")

    print("uniform allocation over 4 planned snapshots:")
    uniform = DynamicPrivateRecommender(
        CommonNeighbors(),
        total_epsilon=total,
        allocation=uniform_allocation(total, num_snapshots=4),
        n=5,
        seed=7,
    )
    for week, (social, prefs) in enumerate(snapshots):
        uniform.fit_snapshot(social, prefs)
        print(
            f"  week {week}: eps_t = {uniform.current.epsilon:.3f}, "
            f"spent = {uniform.spent_epsilon():.2f}, "
            f"top-5 = {uniform.recommend(user).item_ids()}"
        )

    print("\ngeometric decay (supports an unbounded stream):")
    decaying = DynamicPrivateRecommender(
        CommonNeighbors(),
        total_epsilon=total,
        allocation=decay_allocation(total, factor=0.5),
        n=5,
        seed=7,
    )
    for week, (social, prefs) in enumerate(snapshots):
        decaying.fit_snapshot(social, prefs)
        print(
            f"  week {week}: eps_t = {decaying.current.epsilon:.3f}, "
            f"spent = {decaying.spent_epsilon():.3f}, "
            f"top-5 = {decaying.recommend(user).item_ids()}"
        )

    print(
        "\nUniform gives each snapshot equal accuracy but exhausts after "
        "the planned count; decay never exhausts but later snapshots get "
        "noisier.  Both are conservative sequential composition — "
        "exploiting snapshot overlap is the open problem the paper left."
    )


if __name__ == "__main__":
    main()
