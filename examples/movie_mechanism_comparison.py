#!/usr/bin/env python
"""Scenario: a social movie site choosing a privacy mechanism.

A Flixster-style service is evaluating five ways to privatise its
friend-based movie recommendations: the paper's cluster framework, the two
naïve baselines (noise-on-utility, noise-on-edges), and the two literature
competitors (Low-Rank Mechanism, Group-and-Smooth).  This example runs the
paper's Figure 4 comparison and prints the ranking of mechanisms.

Run:  python examples/movie_mechanism_comparison.py
"""

from repro import CommonNeighbors
from repro.datasets import SyntheticDatasetSpec
from repro.experiments.comparison import format_comparison_table, run_comparison


def main() -> None:
    dataset = SyntheticDatasetSpec.flixster_like(scale=0.005).generate(seed=5)
    print(f"dataset: {dataset}\n")

    cells = run_comparison(
        dataset,
        measures=[CommonNeighbors()],
        epsilons=(1.0, 0.1),
        n=50,
        repeats=3,
        seed=5,
    )
    print(format_comparison_table(cells))

    # Rank mechanisms at the strong privacy setting.
    strong = sorted(
        (c for c in cells if c.epsilon == 0.1),
        key=lambda c: c.ndcg_mean,
        reverse=True,
    )
    print("\nranking at eps=0.1 (strong privacy):")
    for place, cell in enumerate(strong, start=1):
        print(f"  {place}. {cell.mechanism:<8} NDCG@50 = {cell.ndcg_mean:.3f}")
    winner = strong[0]
    print(
        f"\nThe {winner.mechanism!r} mechanism wins, as the paper predicts: "
        f"community clustering converts most of the Laplace noise into a "
        f"small amount of averaging error."
    )


if __name__ == "__main__":
    main()
