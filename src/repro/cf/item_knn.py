"""Item-based collaborative filtering over (noisy) co-occurrence counts.

The non-social comparator: a user's score for item ``i`` is the summed
item-item cosine similarity between ``i`` and the user's own items,

    score(u, i) = sum_{j in items(u)} cos_sim(i, j)

computed entirely from the sanitised co-count matrix.  Reading the target
user's *own* items at query time matches the deployment model of McSherry
& Mironov: the server holds the user's history and personalises locally
against the global sanitised model; the DP guarantee covers what the
*model* (and hence other users' recommendations) can reveal about any one
preference edge.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.cf.cocounts import ItemCoCounts
from repro.core.base import BaseRecommender, FittedState
from repro.privacy.mechanisms import validate_epsilon
from repro.similarity.base import SimilarityMeasure
from repro.types import ItemId, UserId

__all__ = ["ItemBasedCF"]


class _NullMeasure(SimilarityMeasure):
    """Placeholder: item-based CF does not read the social graph at all."""

    name = "none"

    def similarity_row(self, graph, user):
        return {}


class ItemBasedCF(BaseRecommender):
    """Top-N item-based collaborative filtering (non-social).

    Args:
        epsilon: privacy parameter for the co-count release
            (``math.inf`` = exact counts).
        n: default list length.
        max_items_per_user: McSherry-Mironov contribution clamp.
        exclude_owned: drop items the user already prefers from the
            ranking (the usual CF deployment); keep False to compare
            NDCG against the social recommenders, which rank the full
            universe.
        seed: noise seed.
    """

    def __init__(
        self,
        epsilon: float = math.inf,
        n: int = 10,
        max_items_per_user: int = 50,
        exclude_owned: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__(_NullMeasure(), n=n)
        self.epsilon = validate_epsilon(epsilon)
        self.max_items_per_user = max_items_per_user
        self.exclude_owned = exclude_owned
        self.seed = seed
        self.cocounts_: Optional[ItemCoCounts] = None
        self._similarities: Optional[np.ndarray] = None

    def _prepare(self, state: FittedState) -> None:
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, 5)))
        self.cocounts_ = ItemCoCounts.build(
            state.preferences,
            epsilon=self.epsilon,
            max_items_per_user=self.max_items_per_user,
            rng=rng,
        )
        self._similarities = self.cocounts_.cosine_similarities()

    def _score_vector(self, user: UserId) -> np.ndarray:
        state = self.state
        assert self._similarities is not None
        scores = np.zeros(len(state.items))
        if not state.preferences.has_user(user):
            return scores
        owned = state.preferences.items_of(user)
        for item in owned:
            scores += self._similarities[state.item_index[item], :]
        if self.exclude_owned:
            for item in owned:
                scores[state.item_index[item]] = -np.inf
        return scores

    def utilities(self, user: UserId) -> Dict[ItemId, float]:
        """CF scores for every item (``-inf`` marks excluded owned items)."""
        state = self.state
        vector = self._score_vector(user)
        return {item: float(vector[i]) for i, item in enumerate(state.items)}

    def recommend(self, user: UserId, n: Optional[int] = None):
        """Top-N from the dense score vector (fast vectorised path)."""
        limit = self.n if n is None else n
        if limit < 1:
            raise ValueError(f"n must be >= 1, got {limit}")
        return self._recommend_from_vector(
            user, self.state.items, self._score_vector(user), limit
        )
