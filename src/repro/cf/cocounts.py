"""Item-item co-occurrence counts with optional DP release.

The matrix ``C[i, j]`` counts users that prefer both items ``i`` and ``j``
(diagonal: item degree).  For the private release we follow the
McSherry-Mironov recipe adapted to *edge-level* privacy (the granularity
this library protects):

- each user's contribution is clamped to their first ``max_items_per_user``
  preferences (in a fixed, data-independent item order).  Adding one
  preference edge can insert the new item into the clamp window *and*
  displace one previously-counted item, so up to ``2 * max_items_per_user``
  upper-triangle cells (each item's pairings with the other counted items
  plus its diagonal) change by 1 — an L1 sensitivity of
  ``2 * max_items_per_user``;
- Laplace noise of scale ``2 * max_items_per_user / epsilon`` per
  upper-triangle cell then gives epsilon-DP for preference edges by the
  Laplace mechanism (the lower triangle mirrors the release).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import PrivacyError
from repro.graph.preference_graph import PreferenceGraph
from repro.privacy.mechanisms import validate_epsilon
from repro.types import ItemId

__all__ = ["ItemCoCounts"]


@dataclass(frozen=True)
class ItemCoCounts:
    """A (possibly sanitised) symmetric item-item co-occurrence matrix.

    Attributes:
        matrix: ``(num_items, num_items)`` co-count matrix.
        items: item order for both axes.
        item_index: item -> axis position.
        epsilon: the privacy parameter of the release (``math.inf`` when
            exact).
        clamp: the per-user contribution clamp used for sensitivity.
    """

    matrix: np.ndarray
    items: List[ItemId]
    item_index: Dict[ItemId, int]
    epsilon: float
    clamp: int

    @classmethod
    def build(
        cls,
        preferences: PreferenceGraph,
        epsilon: float = math.inf,
        max_items_per_user: int = 50,
        rng: Optional[np.random.Generator] = None,
    ) -> "ItemCoCounts":
        """Count co-occurrences and optionally add calibrated noise.

        Args:
            preferences: the preference graph.
            epsilon: privacy parameter; ``math.inf`` releases exact counts.
            max_items_per_user: per-user clamp; users with more preferences
                contribute only their first ``max_items_per_user`` items in
                the graph's fixed item order.  Smaller clamps mean less
                noise but discard data from heavy users.
            rng: noise source.

        Raises:
            InvalidEpsilonError: for an invalid epsilon.
            PrivacyError: for a non-positive clamp.
        """
        epsilon = validate_epsilon(epsilon)
        if max_items_per_user < 1:
            raise PrivacyError(
                f"max_items_per_user must be >= 1, got {max_items_per_user}"
            )
        if rng is None:
            rng = np.random.default_rng(0)

        items = preferences.items()
        item_index = {item: i for i, item in enumerate(items)}
        size = len(items)
        matrix = np.zeros((size, size))

        order = {item: pos for pos, item in enumerate(items)}
        for user in preferences.users():
            owned = sorted(preferences.items_of(user), key=order.__getitem__)
            counted = owned[:max_items_per_user]
            indices = [item_index[i] for i in counted]
            for a_pos, a in enumerate(indices):
                matrix[a, a] += 1.0
                for b in indices[a_pos + 1 :]:
                    matrix[a, b] += 1.0
                    matrix[b, a] += 1.0

        if not math.isinf(epsilon) and size:
            scale = 2.0 * max_items_per_user / epsilon
            # One independent draw per upper-triangle cell (incl. diagonal),
            # mirrored below: the release is a symmetric matrix, so only
            # the triangle carries information.
            noise = rng.laplace(0.0, scale, size=(size, size))
            upper = np.triu(noise)
            noise = upper + np.triu(noise, k=1).T
            matrix = matrix + noise

        return cls(
            matrix=matrix,
            items=items,
            item_index=item_index,
            epsilon=epsilon,
            clamp=max_items_per_user,
        )

    def count(self, item_a: ItemId, item_b: ItemId) -> float:
        """The (noisy) co-count of two items.

        Raises:
            KeyError: for unknown items.
        """
        return float(self.matrix[self.item_index[item_a], self.item_index[item_b]])

    def cosine_similarities(self) -> np.ndarray:
        """Item-item cosine similarity derived from the co-count matrix.

        ``sim(i, j) = C[i, j] / sqrt(C[i, i] * C[j, j])`` with negative or
        zero diagonals (possible after noise) treated as unusable rows.
        Post-processing of the sanitised matrix, so privacy is unaffected.
        """
        diag = np.diag(self.matrix).copy()
        diag[diag <= 0.0] = np.nan
        denom = np.sqrt(np.outer(diag, diag))
        with np.errstate(invalid="ignore", divide="ignore"):
            sims = self.matrix / denom
        sims = np.nan_to_num(sims, nan=0.0, posinf=0.0, neginf=0.0)
        np.fill_diagonal(sims, 0.0)
        return sims
