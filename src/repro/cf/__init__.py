"""Non-social, item-based collaborative filtering (paper Section 4 context).

The paper positions itself against McSherry & Mironov (KDD 2009), who made
*item-based* collaborative filtering differentially private by sanitising
a global item-item co-occurrence matrix.  This package implements that
family as a comparator substrate:

- :class:`ItemCoCounts` — the item-item co-occurrence matrix, exact or
  released under edge-level differential privacy (Laplace noise calibrated
  to a per-user contribution clamp, McSherry-Mironov style).
- :class:`ItemBasedCF` — a top-N recommender scoring items by cosine
  similarity to the target user's own items.

Two contrasts it enables (see ``benchmarks/test_ablation_social_vs_cf.py``):
the *personalisation* gap between social and non-social recommendations,
and the *sensitivity* gap — the co-count matrix has per-edge sensitivity
bounded by a small clamp, while social utility queries inherit the
social graph's worst-case column mass.
"""

from repro.cf.cocounts import ItemCoCounts
from repro.cf.item_knn import ItemBasedCF

__all__ = ["ItemCoCounts", "ItemBasedCF"]
