"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-specific failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``KeyError`` from misuse of internals, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "ItemNotFoundError",
    "EdgeError",
    "GraphArtifactError",
    "ClusteringError",
    "PrivacyError",
    "BudgetExhaustedError",
    "InvalidEpsilonError",
    "SimilarityError",
    "DatasetError",
    "ReleaseIntegrityError",
    "CacheIntegrityError",
    "RetryExhaustedError",
    "ExperimentError",
    "SweepQueueError",
    "LeaseLostError",
    "PoisonedCellError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a social or preference graph."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced user node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"user node {node!r} not found in graph")
        self.node = node


class ItemNotFoundError(GraphError, KeyError):
    """A referenced item node does not exist in the preference graph."""

    def __init__(self, item: object) -> None:
        super().__init__(f"item {item!r} not found in preference graph")
        self.item = item


class EdgeError(GraphError):
    """An edge is invalid (self-loop, duplicate, negative weight, ...)."""


class GraphArtifactError(GraphError):
    """An on-disk CSR graph artifact is corrupt, truncated, or malformed.

    Raised by :mod:`repro.graph.bigcsr` when an artifact fails its
    checksum, carries an unsupported format version, or violates CSR
    invariants — the same integrity discipline as
    :class:`CacheIntegrityError` for kernel artifacts.
    """


class ClusteringError(ReproError):
    """A clustering is invalid (not disjoint, does not cover users, ...)."""


class PrivacyError(ReproError):
    """A differential-privacy invariant would be violated."""


class InvalidEpsilonError(PrivacyError, ValueError):
    """The privacy parameter epsilon is not a positive number (or inf)."""

    def __init__(self, epsilon: object) -> None:
        super().__init__(
            f"epsilon must be a positive real number or math.inf, got {epsilon!r}"
        )
        self.epsilon = epsilon


class BudgetExhaustedError(PrivacyError):
    """A privacy budget does not have enough remaining epsilon."""

    def __init__(self, requested: float, remaining: float) -> None:
        super().__init__(
            f"requested epsilon {requested} exceeds remaining budget {remaining}"
        )
        self.requested = requested
        self.remaining = remaining


class SimilarityError(ReproError):
    """A similarity measure was misconfigured or misused."""


class DatasetError(ReproError):
    """A dataset could not be loaded, generated, or validated.

    Args:
        message: human-readable description.
        path: optional source file the problem was found in.
        line: optional 1-based line number within ``path``.
    """

    def __init__(
        self,
        message: str,
        path: "str | None" = None,
        line: "int | None" = None,
    ) -> None:
        if path is not None and line is not None:
            message = f"{path}:{line}: {message}"
        elif path is not None:
            message = f"{path}: {message}"
        super().__init__(message)
        self.path = path
        self.line = line


class ReleaseIntegrityError(DatasetError):
    """A persisted release artifact failed verification on load.

    Raised for corrupt containers, checksum mismatches, and unsupported
    format versions.  Subclasses :class:`DatasetError` so existing
    "cannot load" handlers keep working.
    """


class CacheIntegrityError(DatasetError):
    """A persisted similarity-kernel artifact failed verification on load.

    Raised for corrupt containers, checksum mismatches, and unsupported
    kernel format versions.  The cache layer normally swallows this and
    recomputes — it only propagates from direct artifact loads.
    """


class RetryExhaustedError(ReproError):
    """A retried operation kept failing past its attempt/deadline budget.

    Attributes:
        attempts: how many attempts were made.
        last_exception: the exception raised by the final attempt.
    """

    def __init__(self, attempts: int, last_exception: BaseException) -> None:
        super().__init__(
            f"operation failed after {attempts} attempt(s): {last_exception!r}"
        )
        self.attempts = attempts
        self.last_exception = last_exception


class ExperimentError(ReproError):
    """An experiment configuration or run is invalid."""


class SweepQueueError(ExperimentError):
    """A distributed sweep queue is missing, malformed, or inconsistent.

    Subclasses :class:`ExperimentError` so the CLI's experiment exit-code
    family (and any existing handler) covers distributed sweeps too.
    """


class LeaseLostError(SweepQueueError):
    """A worker's lease on a cell expired or was reclaimed by a peer.

    Raised by heartbeat renewal when the lease file no longer names this
    worker.  Losing a lease is not fatal — the cell is deterministic, so
    whichever worker finishes records the identical result — but the
    loser should stop heartbeating and move on.
    """


class PoisonedCellError(SweepQueueError):
    """A sweep cell exhausted its attempt budget and was quarantined.

    Attributes:
        task_id: the quarantined cell's task id.
        attempts: failed attempts when the cell was poisoned.
    """

    def __init__(self, task_id: str, attempts: int, reason: str = "") -> None:
        message = f"cell {task_id!r} poisoned after {attempts} attempt(s)"
        if reason:
            message += f": {reason}"
        super().__init__(message)
        self.task_id = task_id
        self.attempts = attempts
