"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-specific failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``KeyError`` from misuse of internals, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "ItemNotFoundError",
    "EdgeError",
    "ClusteringError",
    "PrivacyError",
    "BudgetExhaustedError",
    "InvalidEpsilonError",
    "SimilarityError",
    "DatasetError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a social or preference graph."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced user node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"user node {node!r} not found in graph")
        self.node = node


class ItemNotFoundError(GraphError, KeyError):
    """A referenced item node does not exist in the preference graph."""

    def __init__(self, item: object) -> None:
        super().__init__(f"item {item!r} not found in preference graph")
        self.item = item


class EdgeError(GraphError):
    """An edge is invalid (self-loop, duplicate, negative weight, ...)."""


class ClusteringError(ReproError):
    """A clustering is invalid (not disjoint, does not cover users, ...)."""


class PrivacyError(ReproError):
    """A differential-privacy invariant would be violated."""


class InvalidEpsilonError(PrivacyError, ValueError):
    """The privacy parameter epsilon is not a positive number (or inf)."""

    def __init__(self, epsilon: object) -> None:
        super().__init__(
            f"epsilon must be a positive real number or math.inf, got {epsilon!r}"
        )
        self.epsilon = epsilon


class BudgetExhaustedError(PrivacyError):
    """A privacy budget does not have enough remaining epsilon."""

    def __init__(self, requested: float, remaining: float) -> None:
        super().__init__(
            f"requested epsilon {requested} exceeds remaining budget {remaining}"
        )
        self.requested = requested
        self.remaining = remaining


class SimilarityError(ReproError):
    """A similarity measure was misconfigured or misused."""


class DatasetError(ReproError):
    """A dataset could not be loaded, generated, or validated."""


class ExperimentError(ReproError):
    """An experiment configuration or run is invalid."""
