"""Submit, supervise, and collect distributed tradeoff sweeps.

Three entry points:

- :func:`submit_tradeoff_sweep` decomposes a ``run_tradeoff`` call into
  (measure, epsilon) cell tasks and initialises a
  :class:`~repro.dist.queue.SweepQueue` directory (idempotent for the
  same sweep).
- :func:`run_distributed_tradeoff` is the drop-in distributed variant of
  :func:`~repro.experiments.tradeoff.run_tradeoff`: it submits (or
  attaches to) a queue, waits while external workers drain it — reaping
  expired leases so dead workers never wedge the sweep — and **degrades
  gracefully**: if no worker shows signs of life for ``grace_s``
  seconds, the orchestrator works the queue itself, in process, through
  the very same worker code path.  Either way the sweep finishes.
- :func:`collect_results` assembles the final
  :class:`~repro.experiments.tradeoff.TradeoffResult` from the shared
  checkpoint by calling ``run_tradeoff`` one last time: a
  fully-checkpointed call costs only file reads, and any cell the queue
  quarantined (poisoned) is simply computed in-parent — the last rung of
  the degradation ladder, so a sweep with poisoned cells still returns
  complete, bit-exact results.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Union

from repro.cache.store import SimilarityStore
from repro.datasets.dataset import SocialRecDataset
from repro.experiments.engine import validate_engine
from repro.experiments.tradeoff import TradeoffResult, run_tradeoff
from repro.obs.registry import incr
from repro.obs.spans import span
from repro.similarity.base import SimilarityMeasure

from .queue import CellTask, QueueStatus, SweepQueue, task_id_for
from .spec import SweepSpec, dataset_descriptor
from .worker import SweepWorker

__all__ = [
    "submit_tradeoff_sweep",
    "run_distributed_tradeoff",
    "collect_results",
    "queue_status",
]


def _build_tasks(spec: SweepSpec) -> List[CellTask]:
    return [
        CellTask(
            task_id=task_id_for(measure, epsilon),
            measure=measure,
            epsilon=epsilon,
        )
        for measure in spec.measures
        for epsilon in spec.epsilons
    ]


def submit_tradeoff_sweep(
    queue_dir: str,
    spec: SweepSpec,
    clock: Callable[[], float] = time.time,
) -> SweepQueue:
    """Create (or re-attach to) the queue for ``spec`` at ``queue_dir``.

    Idempotent: resubmitting the identical spec keeps all recorded
    progress; a different spec at the same directory raises
    :class:`~repro.exceptions.SweepQueueError` rather than mixing sweeps.
    """
    validate_engine(spec.engine)
    with span("dist.submit"):
        queue = SweepQueue.create(
            queue_dir, spec.to_dict(), _build_tasks(spec), clock=clock
        )
    incr("dist.sweeps_submitted")
    return queue


def run_distributed_tradeoff(
    dataset: SocialRecDataset,
    measures: Sequence[SimilarityMeasure],
    epsilons: Sequence[float],
    ns: Sequence[int],
    queue_dir: str,
    repeats: int = 10,
    sample_size: Optional[int] = None,
    louvain_runs: int = 10,
    seed: int = 0,
    engine: str = "vectorized",
    backend: str = "auto",
    max_attempts: int = 3,
    grace_s: float = 5.0,
    poll_s: float = 0.2,
    timeout_s: Optional[float] = None,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
) -> TradeoffResult:
    """Run a tradeoff sweep through a work queue, with graceful fallback.

    External workers (``repro sweep worker --queue ...``) may attach to
    ``queue_dir`` at any time — before, during, or instead of this call.
    The orchestrator supervises: it reaps expired leases (so a worker
    SIGKILL'd mid-cell delays the sweep by at most one lease TTL) and, if
    the queue sits with no live lease and no progress for ``grace_s``
    seconds, works the remaining cells itself in process.  The returned
    result is bit-identical to single-process ``run_tradeoff`` either
    way.

    Args:
        queue_dir: the queue root (created if needed).
        grace_s: how long the queue may sit idle — no live leases, no
            completions — before the orchestrator stops waiting for
            external workers and degrades to in-process execution.
        poll_s: supervision poll period.
        timeout_s: optional overall supervision budget; when it expires
            the orchestrator degrades to in-process execution rather
            than waiting longer.  (The sweep still finishes.)
        (remaining args: exactly as :func:`run_tradeoff`.)

    Returns:
        :class:`TradeoffResult`, one cell per (measure, epsilon, n).
    """
    spec = SweepSpec.build(
        dataset=dataset_descriptor(dataset=dataset),
        measures=[m.name for m in measures],
        epsilons=epsilons,
        ns=ns,
        repeats=repeats,
        sample_size=sample_size,
        louvain_runs=louvain_runs,
        seed=seed,
        engine=engine,
        backend=backend,
        max_attempts=max_attempts,
    )
    queue = submit_tradeoff_sweep(queue_dir, spec, clock=clock)
    started = clock()
    idle_since: Optional[float] = None
    last_done = -1
    with span("dist.supervise"):
        while True:
            status = queue.status()
            if status.remaining == 0:
                break
            if status.done != last_done:
                last_done = status.done
                idle_since = None  # progress: someone is alive
            if status.active > 0:
                idle_since = None  # live leases: workers attached
            now = clock()
            if idle_since is None:
                idle_since = now
            timed_out = timeout_s is not None and now - started >= timeout_s
            if now - idle_since >= grace_s or timed_out:
                # Nobody is working (or we are out of patience): the
                # outstanding leases are declared orphaned and reclaimed
                # whole, then the orchestrator degrades to in-process
                # execution via the same worker code path — queue
                # bookkeeping stays consistent for any worker that
                # attaches later, and a holder that was in fact alive
                # finds out at its next heartbeat (results stay bit-exact
                # either way: cells are deterministic and completion
                # markers are idempotent).
                incr("dist.degraded_inprocess")
                queue.reap("orchestrator", force=True)
                SweepWorker(
                    queue,
                    dataset=dataset,
                    worker_id="orchestrator-inprocess",
                    lease_ttl=max(grace_s, 30.0),
                    poll_interval=poll_s,
                    max_idle_s=max(grace_s, 1.0),
                    clock=clock,
                    sleep=sleep,
                ).run()
                break
            queue.reap("orchestrator")
            sleep(poll_s)
    return collect_results(queue, dataset, measures)


def collect_results(
    queue: Union[SweepQueue, str],
    dataset: Optional[SocialRecDataset] = None,
    measures: Optional[Sequence[SimilarityMeasure]] = None,
    store: Optional[SimilarityStore] = None,
) -> TradeoffResult:
    """Assemble the final result from a queue's shared checkpoint.

    Implemented as one more ``run_tradeoff`` call against the shared
    checkpoint: completed cells are pure file reads; cells the queue
    poisoned (or that no worker ever finished) are computed here, in the
    calling process — so the caller always gets a complete result, and
    gets it bit-exactly, whatever happened to the workers.
    """
    if isinstance(queue, str):
        queue = SweepQueue(queue)
    spec = SweepSpec.from_dict(queue.spec)
    dataset = spec.resolve_dataset(dataset)
    if measures is None:
        from repro.similarity.base import get_measure

        measures = [get_measure(name) for name in spec.measures]
    with span("dist.collect"):
        return run_tradeoff(
            dataset,
            list(measures),
            epsilons=spec.epsilon_values(),
            ns=spec.ns,
            repeats=spec.repeats,
            sample_size=spec.sample_size,
            louvain_runs=spec.louvain_runs,
            seed=spec.seed,
            checkpoint=queue.checkpoint_path,
            engine=spec.engine,
            store=store if store is not None else SimilarityStore(queue.cache_dir),
            backend=spec.backend,
        )


def queue_status(queue_dir: str) -> QueueStatus:
    """Convenience: one status scan of the queue at ``queue_dir``."""
    return SweepQueue(queue_dir).status()
