"""The sweep worker: claim a cell, heartbeat, compute, complete.

A :class:`SweepWorker` attaches to a :class:`~repro.dist.queue.SweepQueue`
and loops: claim one (measure, epsilon) cell, start a background
heartbeat thread renewing the lease, run the cell through the ordinary
``run_tradeoff`` path (restricted to that measure and epsilon, against
the queue's shared checkpoint and similarity cache), then mark the cell
done.  Transient failures are retried in place with the seeded
:class:`~repro.resilience.retry.RetryPolicy`; a cell that keeps failing
is released for other workers, and the queue quarantines it once the
attempt budget is spent.

The crucial property is that the worker adds **no new math**: a cell is
computed by the exact code path a single-process sweep uses, with the
exact seeds (every repeat's RNG stream derives from ``(master seed,
cell key)``), so the union of cells computed by any set of workers — in
any order, with any number of crashes and reclaims along the way — is
bit-identical to one uninterrupted ``run_tradeoff``.

The fault site ``dist.worker`` fires once per claimed cell, *inside* the
retry scope, which is how the tests inject crash-shaped failures into a
worker without patching anything.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.cache.store import SimilarityStore
from repro.community.clustering import Clustering
from repro.core.private import louvain_strategy
from repro.datasets.dataset import SocialRecDataset
from repro.exceptions import LeaseLostError
from repro.experiments.checkpoint import SweepCheckpoint, decode_epsilon
from repro.experiments.tradeoff import cell_key, run_tradeoff
from repro.obs.registry import incr
from repro.obs.spans import span
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy
from repro.similarity.base import get_measure

from .queue import CellTask, Lease, SweepQueue
from .spec import SweepSpec

__all__ = ["SweepWorker", "WorkerStats", "default_worker_id"]


def default_worker_id() -> str:
    """A worker id unique across hosts and processes."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


@dataclass
class WorkerStats:
    """What one :meth:`SweepWorker.run` invocation did."""

    cells_completed: int = 0
    cells_failed: int = 0
    cells_skipped_cached: int = 0
    lease_losses: int = 0
    idle_polls: int = 0


class _Heartbeat:
    """Background lease renewal for the cell currently being computed.

    Renews every ``interval`` seconds until stopped.  On
    :class:`~repro.exceptions.LeaseLostError` (or any renewal failure
    past the retry budget) it stops renewing and raises nothing — the
    computation finishes and relies on result idempotence; ``lost``
    records what happened for the worker's bookkeeping.
    """

    def __init__(
        self,
        queue: SweepQueue,
        lease: Lease,
        lease_ttl: float,
        interval: float,
        sleep: Callable[[float], None],
    ) -> None:
        self._queue = queue
        self.lease = lease
        self._ttl = lease_ttl
        self._interval = interval
        self._sleep = sleep
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(
            target=self._loop,
            name=f"heartbeat-{lease.task.task_id}",
            daemon=True,
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.lease = self._queue.heartbeat(self.lease, self._ttl)
            except LeaseLostError:
                self.lost = True
                return
            except Exception:
                # A torn read or transient IO error: try again next tick;
                # the lease has ttl-interval seconds of slack.
                continue


class SweepWorker:
    """One worker process' attachment to a sweep queue.

    Args:
        queue: the queue, or a path to its root directory.
        dataset: required only when the queue's spec records an external
            (in-memory) dataset; otherwise the spec's descriptor is
            materialised on first claim.
        worker_id: stable identity for leases (default: host-pid-random).
        lease_ttl: seconds a lease stays valid between heartbeats.  Keep
            it several multiples of ``heartbeat_interval``; a worker that
            dies simply stops renewing and the lease expires.
        heartbeat_interval: renewal period (default ``lease_ttl / 3``).
        poll_interval: idle sleep between claim scans when nothing is
            claimable but peers still hold leases.
        max_cells: stop after completing this many cells (None = run
            until the queue has no remaining work).
        max_idle_s: give up after this long without claiming anything
            (None = wait as long as work remains).
        retry: per-cell retry policy; default gives transient cell
            failures ``max_attempts=2`` in-process tries before the
            lease-level attempt accounting takes over.  The policy's
            ``deadline_s`` is the natural place for a per-cell wall-clock
            budget.
        clock / sleep: injectable for tests.
    """

    def __init__(
        self,
        queue: Union[SweepQueue, str],
        dataset: Optional[SocialRecDataset] = None,
        worker_id: Optional[str] = None,
        lease_ttl: float = 30.0,
        heartbeat_interval: Optional[float] = None,
        poll_interval: float = 0.2,
        max_cells: Optional[int] = None,
        max_idle_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        self.queue = (
            queue if isinstance(queue, SweepQueue) else SweepQueue(queue, clock=clock)
        )
        self.spec = SweepSpec.from_dict(self.queue.spec)
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl = lease_ttl
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else lease_ttl / 3.0
        )
        self.poll_interval = poll_interval
        self.max_cells = max_cells
        self.max_idle_s = max_idle_s
        self.retry = retry
        self.clock = clock
        self.sleep = sleep
        self.stats = WorkerStats()
        self._dataset = dataset
        self._clustering: Optional[Clustering] = None
        self._store: Optional[SimilarityStore] = None

    # ------------------------------------------------------------------
    # lazy shared state (built once per worker, identical across workers)
    # ------------------------------------------------------------------
    @property
    def dataset(self) -> SocialRecDataset:
        if self._dataset is None:
            with span("dist.dataset_build"):
                self._dataset = self.spec.resolve_dataset()
        return self._dataset

    def _shared_clustering(self) -> Clustering:
        # The single-process sweep clusters once with
        # louvain_strategy(runs, seed); doing the same here (same runs,
        # same seed, same graph) reproduces that clustering bit-exactly,
        # which in turn keeps every downstream cell value identical.
        if self._clustering is None:
            with span("dist.clustering"):
                strategy = louvain_strategy(
                    runs=self.spec.louvain_runs, seed=self.spec.seed
                )
                self._clustering = strategy(self.dataset.social)
        return self._clustering

    def _shared_store(self) -> SimilarityStore:
        if self._store is None:
            self._store = SimilarityStore(self.queue.cache_dir)
        return self._store

    def _cell_retry(self) -> RetryPolicy:
        if self.retry is not None:
            return self.retry
        return RetryPolicy(
            max_attempts=2,
            base_delay=0.05,
            retry_on=(OSError,),
            seed=self.spec.seed,
            sleep=self.sleep,
            clock=time.monotonic,
        )

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------
    def run(self) -> WorkerStats:
        """Work the queue until done (or the cell/idle budget is spent)."""
        idle_since: Optional[float] = None
        while True:
            if (
                self.max_cells is not None
                and self.stats.cells_completed >= self.max_cells
            ):
                break
            lease = self.queue.claim(self.worker_id, self.lease_ttl)
            if lease is None:
                status = self.queue.status()
                if status.remaining == 0:
                    break
                now = self.clock()
                if idle_since is None:
                    idle_since = now
                elif (
                    self.max_idle_s is not None
                    and now - idle_since >= self.max_idle_s
                ):
                    break
                # Peers hold every remaining cell; make sure a dead peer
                # cannot wedge us, then wait our turn.
                self.queue.reap(self.worker_id)
                self.stats.idle_polls += 1
                self.sleep(self.poll_interval)
                continue
            idle_since = None
            self._work_cell(lease)
        return self.stats

    def _work_cell(self, lease: Lease) -> None:
        heartbeat = _Heartbeat(
            self.queue,
            lease,
            self.lease_ttl,
            self.heartbeat_interval,
            self.sleep,
        )
        heartbeat.start()
        try:
            with span("dist.cell"):
                self._cell_retry().call(self._run_cell, lease.task)
        except BaseException as exc:
            heartbeat.stop()
            if heartbeat.lost:
                self.stats.lease_losses += 1
            self.stats.cells_failed += 1
            incr("dist.worker_cell_failures")
            self.queue.fail(heartbeat.lease, exc)
            if not isinstance(exc, Exception):
                raise  # KeyboardInterrupt / SystemExit: stop the worker
            return  # the queue's attempt accounting decides the cell's fate
        heartbeat.stop()
        if heartbeat.lost:
            # We finished anyway; the result is deterministic, so whoever
            # reclaimed the cell writes the identical records.  Completing
            # is still correct (idempotent marker), and cheaper than
            # letting the reclaimer recompute.
            self.stats.lease_losses += 1
        self.queue.complete(heartbeat.lease)
        self.stats.cells_completed += 1

    # ------------------------------------------------------------------
    # one cell
    # ------------------------------------------------------------------
    def _cell_fully_checkpointed(self, task: CellTask) -> bool:
        checkpoint = SweepCheckpoint(self.queue.checkpoint_path)
        dataset_name = self.dataset.name
        return all(
            cell_key(
                dataset_name,
                task.measure,
                decode_epsilon(task.epsilon),
                n,
                self.spec.repeats,
                self.spec.seed,
                self.spec.sample_size,
            )
            in checkpoint
            for n in self.spec.ns
        )

    def _run_cell(self, task: CellTask) -> None:
        fault_point("dist.worker")
        if self._cell_fully_checkpointed(task):
            # A predecessor (possibly our own earlier attempt, killed
            # between checkpointing and completing) already did the work.
            self.stats.cells_skipped_cached += 1
            incr("dist.cells_skipped_cached")
            return
        run_tradeoff(
            self.dataset,
            [get_measure(task.measure)],
            epsilons=[decode_epsilon(task.epsilon)],
            ns=self.spec.ns,
            repeats=self.spec.repeats,
            sample_size=self.spec.sample_size,
            clustering=self._shared_clustering(),
            seed=self.spec.seed,
            checkpoint=self.queue.checkpoint_path,
            engine=self.spec.engine,
            store=self._shared_store(),
            backend=self.spec.backend,
        )
