"""Fault-tolerant distributed sweep orchestration.

A filesystem-backed work queue (no external broker) that decomposes
``run_tradeoff``-shaped sweeps into leaseable cell tasks.  Workers claim
cells via atomic lease files, renew them with heartbeats, and publish
results through the ordinary :class:`~repro.experiments.checkpoint.
SweepCheckpoint` — so a SIGKILL'd, hung, or fault-injected worker never
loses a finished cell and never wedges the sweep, and the distributed
result is bit-identical to a single-process run.

See ``docs/robustness.md`` ("Distributed sweeps") for the lease
lifecycle and recovery guarantees.
"""

from repro.dist.orchestrator import (
    collect_results,
    queue_status,
    run_distributed_tradeoff,
    submit_tradeoff_sweep,
)
from repro.dist.queue import (
    CellTask,
    Lease,
    QueueStatus,
    SweepQueue,
    task_id_for,
)
from repro.dist.spec import SweepSpec, dataset_descriptor
from repro.dist.worker import SweepWorker, WorkerStats, default_worker_id

__all__ = [
    "CellTask",
    "Lease",
    "QueueStatus",
    "SweepQueue",
    "SweepSpec",
    "SweepWorker",
    "WorkerStats",
    "collect_results",
    "dataset_descriptor",
    "default_worker_id",
    "queue_status",
    "run_distributed_tradeoff",
    "submit_tradeoff_sweep",
    "task_id_for",
]
