"""Filesystem-backed work queue for distributed sweeps.

No external broker: a :class:`SweepQueue` is a directory on a shared
filesystem, and every coordination primitive reduces to an operation the
filesystem already makes atomic —

- **claim**: creating the lease file with ``O_CREAT | O_EXCL`` (exactly
  one worker can win);
- **reclaim**: renaming an *expired* lease file to a worker-unique name
  (``os.rename`` succeeds for exactly one reclaimer);
- **heartbeat**: atomically replacing the lease file with a renewed
  expiry (``os.replace``), after verifying the lease still names this
  worker;
- **complete / poison**: atomically publishing a marker file
  (tmp + fsync + ``os.replace`` + directory fsync).

Layout under the queue root::

    spec.json           # the sweep definition (SweepSpec)
    tasks/<id>.json     # one file per cell task, written at submit
    leases/<id>.json    # present while a worker owns the cell
    attempts/<id>.json  # failed-attempt count, updated on release/reclaim
    done/<id>.json      # completion marker
    poison/<id>.json    # quarantine marker (attempt budget exhausted)
    checkpoint.jsonl    # the shared SweepCheckpoint (the actual results)
    cache/              # the shared SimilarityStore (the artifact bus)

The markers are *bookkeeping*; the durable results always live in the
shared :class:`~repro.experiments.checkpoint.SweepCheckpoint`, so a
worker SIGKILL'd between finishing a cell and writing its marker loses
nothing — the next claimant finds every sub-cell checkpointed and the
cell completes in milliseconds.

Because every cell derives its RNG streams from ``(master seed, cell
key)`` alone, two workers racing on the same cell (a reclaim that turned
out to be premature) write bit-identical checkpoint records; duplicates
are tolerated (and counted) by the checkpoint loader.

Fault sites: ``dist.lease`` fires on every claim scan, ``dist.heartbeat``
on every renewal — tests inject failures there to pin the recovery
paths.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import LeaseLostError, SweepQueueError
from repro.experiments.checkpoint import fsync_directory
from repro.obs.registry import incr
from repro.resilience.faults import fault_point

__all__ = [
    "CellTask",
    "Lease",
    "QueueStatus",
    "SweepQueue",
    "task_id_for",
]

_SUBDIRS = ("tasks", "leases", "attempts", "done", "poison")


def _sanitize(part: str) -> str:
    """A filename-safe rendering of one task-id component."""
    return "".join(c if c.isalnum() or c in "._-" else "-" for c in part)


def task_id_for(measure_name: str, epsilon_label: str) -> str:
    """Deterministic task id of one (measure, epsilon) sweep cell."""
    return f"{_sanitize(measure_name)}__{_sanitize(epsilon_label)}"


@dataclass(frozen=True)
class CellTask:
    """One leaseable unit of sweep work: a (measure, epsilon) cell.

    Attributes:
        task_id: stable, filename-safe identity within the queue.
        measure: similarity-measure name (``repro.similarity.base``
            registry key).
        epsilon: encoded epsilon label
            (:func:`~repro.experiments.checkpoint.encode_epsilon`).
    """

    task_id: str
    measure: str
    epsilon: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "task_id": self.task_id,
            "measure": self.measure,
            "epsilon": self.epsilon,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CellTask":
        try:
            return cls(
                task_id=str(payload["task_id"]),
                measure=str(payload["measure"]),
                epsilon=str(payload["epsilon"]),
            )
        except (KeyError, TypeError) as exc:
            raise SweepQueueError(f"malformed task record: {exc!r}") from exc


@dataclass(frozen=True)
class Lease:
    """Proof of a successful claim: one worker owns one cell until expiry.

    Attributes:
        task: the claimed cell.
        worker: the owning worker's id.
        attempt: 1-based attempt number this claim represents (prior
            failed attempts + 1).
        expires_at: wall-clock expiry; a lease past it is reclaimable.
        token: unique per claim, so a worker that loses and re-wins a
            cell cannot confuse its own stale lease with the fresh one.
    """

    task: CellTask
    worker: str
    attempt: int
    expires_at: float
    token: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "task_id": self.task.task_id,
            "worker": self.worker,
            "attempt": self.attempt,
            "expires_at": self.expires_at,
            "token": self.token,
        }


@dataclass(frozen=True)
class QueueStatus:
    """One scan of the queue directory.

    ``remaining`` counts cells still needing work (pending + leased);
    the sweep is finished when it reaches zero — possibly with poisoned
    cells left for the orchestrator's in-process fallback.
    """

    total: int
    pending: int
    leased: int
    expired: int
    done: int
    poisoned: int

    @property
    def remaining(self) -> int:
        return self.pending + self.leased

    @property
    def active(self) -> int:
        """Leases that are currently live (not past expiry)."""
        return self.leased - self.expired


@dataclass
class QueueStats:
    """Per-process counters for one :class:`SweepQueue` instance."""

    claims: int = 0
    reclaims: int = 0
    heartbeats: int = 0
    completions: int = 0
    failures: int = 0
    poisoned: int = 0
    lease_lost: int = 0
    fields: Dict[str, int] = field(default_factory=dict, repr=False)


class SweepQueue:
    """The filesystem work queue (see module docstring for the layout).

    Args:
        root: queue directory; must already contain ``spec.json`` (use
            :meth:`create` to initialise one).
        clock: injectable wall clock (default ``time.time``).  Lease
            expiry compares *absolute* times, so every participant must
            share a clock domain — which is exactly the shared-filesystem
            deployment this queue targets.

    Raises:
        SweepQueueError: when ``root`` is not an initialised queue.
    """

    MAX_ATTEMPTS_DEFAULT = 3

    def __init__(
        self, root: str, clock: Callable[[], float] = time.time
    ) -> None:
        self.root = root
        self.clock = clock
        self.stats = QueueStats()
        if not os.path.isdir(root) or not os.path.exists(self._spec_path(root)):
            raise SweepQueueError(
                f"{root!r} is not an initialised sweep queue "
                f"(missing spec.json; run `repro sweep submit` first)"
            )
        self._spec: Optional[dict] = None

    # ------------------------------------------------------------------
    # creation / layout
    # ------------------------------------------------------------------
    @staticmethod
    def _spec_path(root: str) -> str:
        return os.path.join(root, "spec.json")

    @classmethod
    def create(
        cls,
        root: str,
        spec: Dict[str, object],
        tasks: List[CellTask],
        clock: Callable[[], float] = time.time,
    ) -> "SweepQueue":
        """Initialise a queue directory with a spec and its cell tasks.

        Idempotent for an identical spec (resubmitting a sweep is safe
        and keeps all progress); a *different* spec at the same root is
        rejected instead of silently mixing two sweeps' cells.

        Raises:
            SweepQueueError: when ``root`` already holds a different spec.
        """
        os.makedirs(root, exist_ok=True)
        for sub in _SUBDIRS:
            os.makedirs(os.path.join(root, sub), exist_ok=True)
        spec_path = cls._spec_path(root)
        if os.path.exists(spec_path):
            with open(spec_path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            if existing != spec:
                raise SweepQueueError(
                    f"queue {root!r} already holds a different sweep spec; "
                    f"use a fresh directory per sweep"
                )
        else:
            _atomic_write_json(spec_path, spec)
        queue = cls(root, clock=clock)
        for task in tasks:
            task_path = queue._path("tasks", task.task_id)
            if not os.path.exists(task_path):
                _atomic_write_json(task_path, task.to_dict())
        fsync_directory(os.path.join(root, "tasks"))
        return queue

    def _path(self, kind: str, task_id: str) -> str:
        return os.path.join(self.root, kind, f"{task_id}.json")

    @property
    def spec(self) -> dict:
        if self._spec is None:
            try:
                with open(self._spec_path(self.root), encoding="utf-8") as f:
                    self._spec = json.load(f)
            except (OSError, ValueError) as exc:
                raise SweepQueueError(
                    f"cannot read sweep spec in {self.root!r}: {exc}"
                ) from exc
        return self._spec

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.root, "checkpoint.jsonl")

    @property
    def cache_dir(self) -> str:
        return os.path.join(self.root, "cache")

    @property
    def max_attempts(self) -> int:
        value = self.spec.get("max_attempts", self.MAX_ATTEMPTS_DEFAULT)
        return int(value)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # task enumeration
    # ------------------------------------------------------------------
    def task_ids(self) -> List[str]:
        """All task ids, sorted (the deterministic claim scan order)."""
        names = []
        for name in os.listdir(os.path.join(self.root, "tasks")):
            if name.endswith(".json"):
                names.append(name[: -len(".json")])
        return sorted(names)

    def load_task(self, task_id: str) -> CellTask:
        payload = _read_json(self._path("tasks", task_id))
        if payload is None:
            raise SweepQueueError(f"no such task {task_id!r} in {self.root!r}")
        return CellTask.from_dict(payload)

    def is_done(self, task_id: str) -> bool:
        return os.path.exists(self._path("done", task_id))

    def is_poisoned(self, task_id: str) -> bool:
        return os.path.exists(self._path("poison", task_id))

    def poison_record(self, task_id: str) -> Optional[dict]:
        return _read_json(self._path("poison", task_id))

    def attempts(self, task_id: str) -> int:
        """Failed attempts recorded for ``task_id`` so far."""
        record = _read_json(self._path("attempts", task_id))
        if record is None:
            return 0
        try:
            return int(record["attempts"])  # type: ignore[index]
        except (KeyError, TypeError, ValueError):
            return 0

    # ------------------------------------------------------------------
    # the lease protocol
    # ------------------------------------------------------------------
    def claim(self, worker: str, lease_ttl: float) -> Optional[Lease]:
        """Try to lease one unclaimed cell; None when nothing is claimable.

        The scan visits tasks in sorted order, skipping completed and
        poisoned cells.  An *expired* lease found along the way is
        reclaimed (its attempt counted as failed) before the cell is
        re-offered; a cell whose failed attempts reached the queue's
        ``max_attempts`` is quarantined instead of offered.

        Raises:
            ValueError: for a non-positive ``lease_ttl``.
        """
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {lease_ttl}")
        fault_point("dist.lease")
        for task_id in self.task_ids():
            if self.is_done(task_id) or self.is_poisoned(task_id):
                continue
            lease_path = self._path("leases", task_id)
            if os.path.exists(lease_path):
                if not self._reclaim_if_expired(task_id, lease_path, worker):
                    continue  # live lease (or a peer won the reclaim)
            attempts = self.attempts(task_id)
            if attempts >= self.max_attempts:
                self._quarantine(task_id, attempts, "attempt budget exhausted")
                continue
            lease = Lease(
                task=self.load_task(task_id),
                worker=worker,
                attempt=attempts + 1,
                expires_at=self.clock() + lease_ttl,
                token=uuid.uuid4().hex,
            )
            try:
                fd = os.open(
                    lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                continue  # a peer claimed it between our scan and open
            except OSError as exc:
                raise SweepQueueError(
                    f"cannot create lease {lease_path!r}: {exc}"
                ) from exc
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(lease.to_dict(), handle)
                handle.flush()
                os.fsync(handle.fileno())
            self.stats.claims += 1
            incr("dist.claims")
            return lease
        return None

    def _reclaim_if_expired(
        self, task_id: str, lease_path: str, worker: str, force: bool = False
    ) -> bool:
        """Remove an expired lease; True when the cell became claimable.

        Exactly one reclaimer wins the rename of the stale lease file;
        the loser treats the cell as still busy this scan (it will see
        the truth next scan).  ``force`` skips the expiry check (see
        :meth:`reap`).
        """
        stale = _read_json(lease_path)
        if stale is None:
            # Lease vanished mid-scan: owner completed or released it.
            return True
        try:
            expires_at = float(stale["expires_at"])  # type: ignore[index]
            attempt = int(stale.get("attempt", 1))  # type: ignore[union-attr]
        except (KeyError, TypeError, ValueError):
            expires_at, attempt = 0.0, self.max_attempts  # malformed: poison
        if not force and expires_at > self.clock():
            return False
        grave = f"{lease_path}.reclaimed-{_sanitize(worker)}-{uuid.uuid4().hex}"
        try:
            os.rename(lease_path, grave)
        except OSError:
            return False  # a peer won the reclaim race
        # The dead worker's attempt counts as failed: that is what keeps
        # a crash-looping cell marching toward quarantine.
        self._record_attempts(task_id, max(attempt, self.attempts(task_id)))
        os.remove(grave)
        self.stats.reclaims += 1
        incr("dist.reclaims")
        return True

    def _record_attempts(self, task_id: str, attempts: int) -> None:
        _atomic_write_json(
            self._path("attempts", task_id), {"attempts": int(attempts)}
        )

    def _owns(self, lease: Lease) -> bool:
        current = _read_json(self._path("leases", lease.task.task_id))
        return (
            current is not None
            and current.get("worker") == lease.worker
            and current.get("token") == lease.token
        )

    def heartbeat(self, lease: Lease, lease_ttl: float) -> Lease:
        """Renew ``lease`` for another ``lease_ttl`` seconds.

        Raises:
            LeaseLostError: when the lease file no longer carries this
                worker's token (expired and reclaimed by a peer, or the
                cell finished elsewhere).  The caller should stop working
                the cell — or finish and rely on result idempotence.
        """
        fault_point("dist.heartbeat")
        if not self._owns(lease):
            self.stats.lease_lost += 1
            incr("dist.lease_lost")
            raise LeaseLostError(
                f"worker {lease.worker!r} lost its lease on "
                f"{lease.task.task_id!r}"
            )
        renewed = Lease(
            task=lease.task,
            worker=lease.worker,
            attempt=lease.attempt,
            expires_at=self.clock() + lease_ttl,
            token=lease.token,
        )
        _atomic_write_json(
            self._path("leases", lease.task.task_id), renewed.to_dict()
        )
        self.stats.heartbeats += 1
        incr("dist.heartbeats")
        return renewed

    def complete(self, lease: Lease) -> None:
        """Mark the leased cell done and release the lease.

        Safe to call after losing the lease: results are deterministic,
        so a double completion writes an identical marker.
        """
        _atomic_write_json(
            self._path("done", lease.task.task_id),
            {
                "task_id": lease.task.task_id,
                "worker": lease.worker,
                "attempt": lease.attempt,
                "completed_at": self.clock(),
            },
        )
        fsync_directory(os.path.join(self.root, "done"))
        if self._owns(lease):
            _remove_quietly(self._path("leases", lease.task.task_id))
        self.stats.completions += 1
        incr("dist.completed")

    def fail(self, lease: Lease, error: BaseException) -> bool:
        """Record a failed attempt and release the lease.

        Returns True when the failure quarantined the cell (attempt
        budget exhausted), False when the cell goes back to pending for
        another worker (or a later retry) to claim.
        """
        self._record_attempts(
            lease.task.task_id, max(lease.attempt, self.attempts(lease.task.task_id))
        )
        if self._owns(lease):
            _remove_quietly(self._path("leases", lease.task.task_id))
        self.stats.failures += 1
        incr("dist.failures")
        if lease.attempt >= self.max_attempts:
            self._quarantine(
                lease.task.task_id, lease.attempt, f"{type(error).__name__}: {error}"
            )
            return True
        return False

    def _quarantine(self, task_id: str, attempts: int, reason: str) -> None:
        if self.is_poisoned(task_id):
            return
        _atomic_write_json(
            self._path("poison", task_id),
            {
                "task_id": task_id,
                "attempts": int(attempts),
                "reason": reason,
                "poisoned_at": self.clock(),
            },
        )
        fsync_directory(os.path.join(self.root, "poison"))
        self.stats.poisoned += 1
        incr("dist.poisoned")

    # ------------------------------------------------------------------
    # maintenance / introspection
    # ------------------------------------------------------------------
    def reap(self, worker: str = "reaper", force: bool = False) -> int:
        """Reclaim every expired lease; returns how many were reclaimed.

        Cells whose failed attempts reached the budget are quarantined on
        the spot, so a wedged sweep (all workers dead mid-cell) is fully
        unwedged by one reap pass.

        With ``force=True`` *every* outstanding lease is reclaimed,
        expiry or not — for an orchestrator that has already decided the
        lease holders are gone (grace period or timeout spent).  A holder
        that is in fact alive discovers the loss at its next heartbeat
        and stops (or finishes idempotently: results are deterministic,
        completion markers tolerate duplicates).
        """
        reclaimed = 0
        for task_id in self.task_ids():
            if self.is_done(task_id) or self.is_poisoned(task_id):
                continue
            lease_path = self._path("leases", task_id)
            if not os.path.exists(lease_path):
                continue
            before = self.stats.reclaims
            if self._reclaim_if_expired(
                task_id, lease_path, worker, force=force
            ):
                if self.stats.reclaims > before:
                    reclaimed += 1
                if self.attempts(task_id) >= self.max_attempts:
                    self._quarantine(
                        task_id, self.attempts(task_id), "attempt budget exhausted"
                    )
        return reclaimed

    def status(self) -> QueueStatus:
        """Scan the directory into one consistent-enough snapshot."""
        now = self.clock()
        total = pending = leased = expired = done = poisoned = 0
        for task_id in self.task_ids():
            total += 1
            if self.is_done(task_id):
                done += 1
                continue
            if self.is_poisoned(task_id):
                poisoned += 1
                continue
            lease = _read_json(self._path("leases", task_id))
            if lease is None:
                pending += 1
                continue
            leased += 1
            try:
                if float(lease["expires_at"]) <= now:  # type: ignore[index]
                    expired += 1
            except (KeyError, TypeError, ValueError):
                expired += 1
        return QueueStatus(
            total=total,
            pending=pending,
            leased=leased,
            expired=expired,
            done=done,
            poisoned=poisoned,
        )


# ----------------------------------------------------------------------
# small file helpers (atomic JSON write, tolerant read)
# ----------------------------------------------------------------------
def _atomic_write_json(path: str, payload: Dict[str, object]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _read_json(path: str) -> Optional[dict]:
    """Read a small JSON file; None when absent or torn mid-write."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _remove_quietly(path: str) -> None:
    try:
        os.remove(path)
    except OSError:
        pass
