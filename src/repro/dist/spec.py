"""The serialized definition of a distributed sweep.

A :class:`SweepSpec` is everything a worker process needs to recompute
any cell of a ``run_tradeoff`` sweep bit-exactly: the dataset (by
recipe, not by pickle), the measure/epsilon/N grid, and the seeds.  It
round-trips through JSON so it can live in the queue directory's
``spec.json`` and be read by workers on other machines.

Datasets travel as *descriptors* rather than serialized graphs:

- ``{"kind": "synthetic", "preset": "lastfm", "scale": 0.05, "seed": 7}``
  regenerates the synthetic dataset (generation is seeded, so every
  worker builds the identical graph);
- ``{"kind": "directory", "path": "/data/lastfm"}`` loads a real crawl
  from a shared path;
- ``{"kind": "external", "name": "..."}`` marks a dataset the submitter
  constructed in memory — workers must be handed the same object
  explicitly (used by in-process tests and the orchestrator fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.datasets.dataset import SocialRecDataset
from repro.exceptions import SweepQueueError
from repro.experiments.checkpoint import decode_epsilon, encode_epsilon

__all__ = ["SweepSpec", "dataset_descriptor"]

_SPEC_VERSION = 1


def dataset_descriptor(
    dataset: Optional[SocialRecDataset] = None,
    preset: Optional[str] = None,
    scale: float = 1.0,
    seed: int = 0,
    data_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Build the JSON dataset descriptor for a :class:`SweepSpec`.

    Exactly one source must be given: a synthetic ``preset``
    (``"lastfm"`` / ``"flixster"``), a crawl ``data_dir``, or an
    in-memory ``dataset`` (recorded as external — workers then need the
    object passed to them directly).

    Raises:
        SweepQueueError: when no source (or several) is given.
    """
    sources = [s for s in (preset, data_dir, dataset) if s is not None]
    if len(sources) != 1:
        raise SweepQueueError(
            "exactly one of preset / data_dir / dataset must be given"
        )
    if preset is not None:
        if preset not in ("lastfm", "flixster"):
            raise SweepQueueError(
                f"unknown synthetic preset {preset!r} (want lastfm|flixster)"
            )
        return {
            "kind": "synthetic",
            "preset": preset,
            "scale": float(scale),
            "seed": int(seed),
        }
    if data_dir is not None:
        return {"kind": "directory", "path": data_dir}
    assert dataset is not None
    return {"kind": "external", "name": dataset.name}


@dataclass(frozen=True)
class SweepSpec:
    """One distributed ``run_tradeoff`` sweep, as data.

    ``epsilons`` are stored *encoded*
    (:func:`~repro.experiments.checkpoint.encode_epsilon`) so ``inf``
    survives JSON; use :meth:`epsilon_values` for the floats.
    """

    dataset: Dict[str, object]
    measures: List[str]
    epsilons: List[str]
    ns: List[int]
    repeats: int = 10
    sample_size: Optional[int] = None
    louvain_runs: int = 10
    seed: int = 0
    engine: str = "vectorized"
    backend: str = "auto"
    max_attempts: int = 3
    version: int = field(default=_SPEC_VERSION)

    @classmethod
    def build(
        cls,
        dataset: Dict[str, object],
        measures: Sequence[str],
        epsilons: Sequence[float],
        ns: Sequence[int],
        **kwargs,
    ) -> "SweepSpec":
        """Construct from *float* epsilons (encoding them for JSON)."""
        return cls(
            dataset=dict(dataset),
            measures=[str(m) for m in measures],
            epsilons=[encode_epsilon(float(e)) for e in epsilons],
            ns=[int(n) for n in ns],
            **kwargs,
        )

    def __post_init__(self) -> None:
        if not self.measures:
            raise SweepQueueError("sweep spec needs at least one measure")
        if not self.epsilons or not self.ns:
            raise SweepQueueError("sweep spec needs epsilons and ns")
        if self.max_attempts < 1:
            raise SweepQueueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def epsilon_values(self) -> List[float]:
        return [decode_epsilon(label) for label in self.epsilons]

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "dataset": self.dataset,
            "measures": list(self.measures),
            "epsilons": list(self.epsilons),
            "ns": list(self.ns),
            "repeats": self.repeats,
            "sample_size": self.sample_size,
            "louvain_runs": self.louvain_runs,
            "seed": self.seed,
            "engine": self.engine,
            "backend": self.backend,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepSpec":
        try:
            version = int(payload.get("version", _SPEC_VERSION))  # type: ignore[arg-type]
            if version > _SPEC_VERSION:
                raise SweepQueueError(
                    f"sweep spec version {version} is newer than this "
                    f"library supports ({_SPEC_VERSION})"
                )
            return cls(
                dataset=dict(payload["dataset"]),  # type: ignore[arg-type]
                measures=[str(m) for m in payload["measures"]],  # type: ignore[union-attr]
                epsilons=[str(e) for e in payload["epsilons"]],  # type: ignore[union-attr]
                ns=[int(n) for n in payload["ns"]],  # type: ignore[union-attr]
                repeats=int(payload.get("repeats", 10)),  # type: ignore[arg-type]
                sample_size=(
                    None
                    if payload.get("sample_size") is None
                    else int(payload["sample_size"])  # type: ignore[arg-type]
                ),
                louvain_runs=int(payload.get("louvain_runs", 10)),  # type: ignore[arg-type]
                seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
                engine=str(payload.get("engine", "vectorized")),
                backend=str(payload.get("backend", "auto")),
                max_attempts=int(payload.get("max_attempts", 3)),  # type: ignore[arg-type]
                version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SweepQueueError(f"malformed sweep spec: {exc!r}") from exc

    # ------------------------------------------------------------------
    # dataset resolution
    # ------------------------------------------------------------------
    def resolve_dataset(
        self, dataset: Optional[SocialRecDataset] = None
    ) -> SocialRecDataset:
        """Materialise the sweep's dataset in this process.

        Synthetic descriptors regenerate (seeded, hence identical across
        workers); directory descriptors load from the shared path; an
        external descriptor requires the caller to pass the dataset in.

        Raises:
            SweepQueueError: for an external descriptor with no dataset
                passed, a name mismatch, or an unknown descriptor kind.
        """
        kind = self.dataset.get("kind")
        if kind == "external":
            if dataset is None:
                raise SweepQueueError(
                    f"sweep uses in-memory dataset "
                    f"{self.dataset.get('name')!r}; pass it to the worker "
                    f"explicitly"
                )
            if dataset.name != self.dataset.get("name"):
                raise SweepQueueError(
                    f"dataset mismatch: queue expects "
                    f"{self.dataset.get('name')!r}, got {dataset.name!r}"
                )
            return dataset
        if dataset is not None:
            # An explicitly-passed dataset always wins (lets tests and the
            # orchestrator skip regeneration), but only if it matches.
            return dataset
        if kind == "synthetic":
            from repro.datasets.synthetic import SyntheticDatasetSpec

            preset = self.dataset.get("preset")
            scale = float(self.dataset.get("scale", 1.0))  # type: ignore[arg-type]
            gen_seed = int(self.dataset.get("seed", 0))  # type: ignore[arg-type]
            if preset == "lastfm":
                spec = SyntheticDatasetSpec.lastfm_like(scale=scale)
            elif preset == "flixster":
                spec = SyntheticDatasetSpec.flixster_like(scale=scale)
            else:
                raise SweepQueueError(f"unknown synthetic preset {preset!r}")
            return spec.generate(seed=gen_seed)
        if kind == "directory":
            from repro.datasets.loader import load_dataset_directory

            return load_dataset_directory(str(self.dataset.get("path")))
        raise SweepQueueError(f"unknown dataset descriptor kind {kind!r}")

    # ------------------------------------------------------------------
    # derived facts
    # ------------------------------------------------------------------
    def cell_count(self) -> int:
        """Leaseable tasks in this sweep (one per measure x epsilon)."""
        return len(self.measures) * len(self.epsilons)

    def expected_checkpoint_cells(self) -> int:
        """Checkpoint records a finished sweep holds (x ns too)."""
        return self.cell_count() * len(self.ns)

    def describe(self) -> str:
        eps = ", ".join(self.epsilons)
        return (
            f"{len(self.measures)} measure(s) x [{eps}] x ns={self.ns}, "
            f"repeats={self.repeats}, seed={self.seed}"
        )
