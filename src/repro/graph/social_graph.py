"""Undirected social graph ``G_s = (U, E_s)`` (paper Definition 1).

The social graph holds user-to-user friendship edges.  Under the paper's
threat model this structure is *public*: similarity measures and the
clustering phase may read it freely without spending privacy budget.

The implementation is an adjacency-set dictionary, which makes neighbor
lookups O(1) expected and neighborhood iteration O(deg).  All mutation goes
through :meth:`add_user` / :meth:`add_edge` / :meth:`remove_edge` so the
degree bookkeeping and invariants (no self loops, symmetric adjacency) are
maintained in one place.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import EdgeError, NodeNotFoundError
from repro.types import UserId

__all__ = ["SocialGraph", "user_sort_key"]


def user_sort_key(user: UserId) -> Tuple[int, int, str]:
    """A total-order sort key over int and str user identifiers.

    Integers order numerically, strings lexicographically, and the two
    families never interleave — so a heterogeneous graph still has one
    canonical user order, shared by :meth:`SocialGraph.stable_user_order`
    and the content-addressed cache fingerprints in :mod:`repro.cache.keys`.

    Raises:
        TypeError: for identifiers that are not int or str (bool included;
            ``True == 1`` would let distinct identifiers collide).
    """
    if isinstance(user, bool) or not isinstance(user, (int, str)):
        raise TypeError(
            f"user identifier {user!r} has no canonical order; "
            f"only int and str identifiers are supported"
        )
    if isinstance(user, int):
        return (0, user, "")
    return (1, 0, user)


class SocialGraph:
    """An undirected, unweighted graph over user nodes.

    Example:
        >>> g = SocialGraph()
        >>> g.add_edge("alice", "bob")
        >>> g.add_edge("bob", "carol")
        >>> sorted(g.neighbors("bob"))
        ['alice', 'carol']
        >>> g.degree("bob")
        2
    """

    __slots__ = ("_adjacency", "_num_edges", "_version", "_csr_cache")

    def __init__(self, edges: Iterable[Tuple[UserId, UserId]] = ()) -> None:
        self._adjacency: Dict[UserId, Set[UserId]] = {}
        self._num_edges = 0
        self._version = 0
        self._csr_cache: Optional[Tuple[int, object, List[UserId]]] = None
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_user(self, user: UserId) -> None:
        """Add an isolated user node; a no-op if the user already exists."""
        if user not in self._adjacency:
            self._adjacency[user] = set()
            self._version += 1

    def add_users(self, users: Iterable[UserId]) -> None:
        """Add many user nodes at once."""
        for user in users:
            self.add_user(user)

    def add_edge(self, u: UserId, v: UserId) -> None:
        """Add the undirected edge ``{u, v}``, creating nodes as needed.

        Raises:
            EdgeError: if ``u == v`` (self-loops carry no social meaning and
                would corrupt similarity measures such as Common Neighbors).
        """
        if u == v:
            raise EdgeError(f"self-loop on user {u!r} is not allowed")
        nbrs_u = self._adjacency.setdefault(u, set())
        nbrs_v = self._adjacency.setdefault(v, set())
        if v not in nbrs_u:
            nbrs_u.add(v)
            nbrs_v.add(u)
            self._num_edges += 1
        self._version += 1

    def remove_edge(self, u: UserId, v: UserId) -> None:
        """Remove the undirected edge ``{u, v}``.

        Raises:
            NodeNotFoundError: if either endpoint does not exist.
            EdgeError: if the edge does not exist.
        """
        if u not in self._adjacency:
            raise NodeNotFoundError(u)
        if v not in self._adjacency:
            raise NodeNotFoundError(v)
        if v not in self._adjacency[u]:
            raise EdgeError(f"edge ({u!r}, {v!r}) does not exist")
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._num_edges -= 1
        self._version += 1

    def remove_user(self, user: UserId) -> None:
        """Remove a user and all incident edges.

        Raises:
            NodeNotFoundError: if the user does not exist.
        """
        if user not in self._adjacency:
            raise NodeNotFoundError(user)
        for nbr in list(self._adjacency[user]):
            self.remove_edge(user, nbr)
        del self._adjacency[user]
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, user: UserId) -> bool:
        return user in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[UserId]:
        return iter(self._adjacency)

    @property
    def version(self) -> int:
        """A counter bumped on every structural mutation.

        Lets derived views (CSR exports, the :mod:`repro.compute` adjacency
        cache) detect staleness exactly, without hashing the edge set.
        """
        return self._version

    @property
    def num_users(self) -> int:
        """Number of user nodes, ``|U|``."""
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Number of undirected social edges, ``|E_s|``."""
        return self._num_edges

    def users(self) -> List[UserId]:
        """All user nodes, in insertion order."""
        return list(self._adjacency)

    def edges(self) -> Iterator[Tuple[UserId, UserId]]:
        """Iterate each undirected edge exactly once.

        Each edge is yielded as the pair ``(u, v)`` where ``u`` was inserted
        no later than ``v``; iteration order is deterministic for a given
        construction sequence.
        """
        seen: Set[UserId] = set()
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def has_edge(self, u: UserId, v: UserId) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        nbrs = self._adjacency.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, user: UserId) -> FrozenSet[UserId]:
        """``Gamma(u)``: the immediate neighbors of ``user``.

        Returns a frozen snapshot so callers cannot accidentally mutate the
        adjacency structure through the returned set.

        Raises:
            NodeNotFoundError: if the user does not exist.
        """
        try:
            return frozenset(self._adjacency[user])
        except KeyError:
            raise NodeNotFoundError(user) from None

    def degree(self, user: UserId) -> int:
        """``deg(u)``: number of immediate neighbors.

        Raises:
            NodeNotFoundError: if the user does not exist.
        """
        try:
            return len(self._adjacency[user])
        except KeyError:
            raise NodeNotFoundError(user) from None

    def degrees(self) -> Dict[UserId, int]:
        """Degree of every user, as a dict."""
        return {u: len(nbrs) for u, nbrs in self._adjacency.items()}

    def average_degree(self) -> float:
        """Mean degree over all users (0.0 for an empty graph)."""
        if not self._adjacency:
            return 0.0
        return 2.0 * self._num_edges / len(self._adjacency)

    def max_degree(self) -> int:
        """Maximum degree over all users (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency.values())

    # ------------------------------------------------------------------
    # vectorised views
    # ------------------------------------------------------------------
    def stable_user_order(self) -> List[UserId]:
        """All user nodes in a canonical order independent of insertion.

        Int and str identifiers sort via :func:`user_sort_key` — the same
        order the cache fingerprints use, so a CSR export and its
        content-addressed artifact always agree on row order.  Graphs with
        exotic identifier types fall back to insertion order (they are not
        cacheable anyway).
        """
        try:
            return sorted(self._adjacency, key=user_sort_key)
        except TypeError:
            return list(self._adjacency)

    def to_csr(self, users: Optional[List[UserId]] = None):
        """The 0/1 adjacency matrix as ``(scipy.sparse.csr_matrix, users)``.

        Args:
            users: row/column order (default: :meth:`stable_user_order`).
                Users absent from the graph raise ``NodeNotFoundError``;
                neighbors outside ``users`` are dropped, giving the induced
                subgraph's adjacency.

        Returns:
            The symmetric CSR adjacency (float64, sorted indices) and the
            user order its rows follow.  The default-order export is cached
            on the graph and invalidated by mutation — treat the returned
            matrix as read-only.
        """
        import numpy as np
        import scipy.sparse as sp

        default_order = users is None
        if default_order:
            cached = self._csr_cache
            if cached is not None and cached[0] == self._version:
                return cached[1], list(cached[2])
            users = self.stable_user_order()
        index = {user: i for i, user in enumerate(users)}
        n = len(users)
        adjacency = self._adjacency

        # Build straight into CSR buffers: degree prefix sums give each
        # row's extent, then every row fills its slice of one
        # preallocated index array.  No per-edge Python list appends, no
        # COO intermediate, no duplicate-summing pass.
        counts = np.empty(n, dtype=np.int64)
        for i, user in enumerate(users):
            try:
                nbrs = adjacency[user]
            except KeyError:
                raise NodeNotFoundError(user) from None
            if default_order:
                counts[i] = len(nbrs)
            else:
                counts[i] = sum(1 for nbr in nbrs if nbr in index)
        indptr64 = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr64[1:])
        nnz = int(indptr64[-1])
        limit = np.iinfo(np.int32).max
        idx_dtype = np.int64 if (nnz > limit or n > limit) else np.int32
        indices = np.empty(nnz, dtype=idx_dtype)
        for i, user in enumerate(users):
            nbrs = adjacency[user]
            if default_order:
                row = np.fromiter(
                    (index[nbr] for nbr in nbrs), np.int64, len(nbrs)
                )
            else:
                row = np.fromiter(
                    (index[nbr] for nbr in nbrs if nbr in index),
                    np.int64,
                    int(counts[i]),
                )
            row.sort()
            indices[indptr64[i] : indptr64[i + 1]] = row
        matrix = sp.csr_matrix(
            (np.ones(nnz), indices, indptr64.astype(idx_dtype)),
            shape=(n, n),
            copy=False,
        )
        # Rows were filled sorted and duplicate-free; skip scipy's O(nnz)
        # verification pass.
        matrix.has_sorted_indices = True
        matrix.has_canonical_format = True
        if default_order:
            self._csr_cache = (self._version, matrix, list(users))
        return matrix, users

    def degree_array(self, users: Optional[List[UserId]] = None):
        """Degrees as a float64 numpy vector aligned with ``users``.

        Degrees are taken in the *full* graph (incident edges to any
        neighbor), matching :meth:`degree`; pass the same ``users`` list
        handed to :meth:`to_csr` to keep positions aligned.
        """
        import numpy as np

        if users is None:
            users = self.stable_user_order()
        out = np.empty(len(users))
        for i, user in enumerate(users):
            try:
                out[i] = len(self._adjacency[user])
            except KeyError:
                raise NodeNotFoundError(user) from None
        return out

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def subgraph(self, users: Iterable[UserId]) -> "SocialGraph":
        """The induced subgraph on ``users``.

        Users not present in this graph are ignored silently, matching the
        semantics of set intersection.
        """
        keep = {u for u in users if u in self._adjacency}
        sub = SocialGraph()
        sub.add_users(keep)
        for u in keep:
            for v in self._adjacency[u]:
                if v in keep and u != v:
                    sub.add_edge(u, v)
        return sub

    def copy(self) -> "SocialGraph":
        """A deep structural copy (node identifiers are shared)."""
        clone = SocialGraph()
        clone._adjacency = {u: set(nbrs) for u, nbrs in self._adjacency.items()}
        clone._num_edges = self._num_edges
        return clone

    def adjacency(self) -> Dict[UserId, FrozenSet[UserId]]:
        """A read-only snapshot of the whole adjacency structure."""
        return {u: frozenset(nbrs) for u, nbrs in self._adjacency.items()}

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_users={self.num_users}, "
            f"num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SocialGraph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("SocialGraph is mutable and unhashable")
