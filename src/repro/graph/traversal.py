"""Breadth-first traversal primitives over :class:`SocialGraph`.

These are the building blocks for the Graph Distance similarity measure,
connected-component extraction, and the Sybil-attack construction.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph
from repro.types import UserId

__all__ = ["bfs_distances", "bfs_order", "shortest_path"]


def bfs_distances(
    graph: SocialGraph, source: UserId, max_depth: Optional[int] = None
) -> Dict[UserId, int]:
    """Hop distances from ``source`` to every reachable user.

    Args:
        graph: the social graph to traverse.
        source: the start node.
        max_depth: if given, stop expanding once this depth is reached; the
            result then contains only users within ``max_depth`` hops.  This
            is what lets Graph Distance and Katz honour the paper's d <= 2 /
            k <= 3 cutoffs without exploring the whole small-world graph.

    Returns:
        Mapping from user to hop count; includes ``source`` at distance 0.

    Raises:
        NodeNotFoundError: if ``source`` is not in the graph.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    distances: Dict[UserId, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for nbr in graph.neighbors(node):
            if nbr not in distances:
                distances[nbr] = depth + 1
                frontier.append(nbr)
    return distances


def bfs_order(graph: SocialGraph, source: UserId) -> Iterator[UserId]:
    """Yield users in breadth-first order starting at ``source``.

    Raises:
        NodeNotFoundError: if ``source`` is not in the graph.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        yield node
        for nbr in graph.neighbors(node):
            if nbr not in seen:
                seen.add(nbr)
                frontier.append(nbr)


def shortest_path(
    graph: SocialGraph, source: UserId, target: UserId
) -> Optional[List[UserId]]:
    """One shortest path from ``source`` to ``target``, or None if unreachable.

    The path includes both endpoints.  Ties between equal-length paths are
    broken by BFS discovery order, which is deterministic for a given graph
    construction sequence.

    Raises:
        NodeNotFoundError: if either endpoint is not in the graph.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parents: Dict[UserId, UserId] = {}
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nbr in graph.neighbors(node):
            if nbr in seen:
                continue
            parents[nbr] = node
            if nbr == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            seen.add(nbr)
            frontier.append(nbr)
    return None
