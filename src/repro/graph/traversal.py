"""Breadth-first traversal primitives over :class:`SocialGraph`.

These are the building blocks for the Graph Distance similarity measure,
connected-component extraction, and the Sybil-attack construction.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph
from repro.types import UserId

__all__ = ["bfs_layers", "bfs_distances", "bfs_order", "shortest_path"]


def bfs_layers(
    graph: SocialGraph, source: UserId, max_depth: Optional[int] = None
) -> Iterator[Tuple[int, List[UserId]]]:
    """Yield ``(depth, nodes)`` BFS layers outward from ``source``.

    The single traversal primitive behind :func:`bfs_distances` and
    :func:`bfs_order` (and the semantic twin of the blocked multi-source
    BFS in :mod:`repro.compute.kernels`).  Layer 0 is ``[source]``; nodes
    within each layer appear in discovery order — iterating the previous
    layer in order and appending unseen neighbors — which is exactly the
    FIFO-queue BFS order, so consumers preserve their historical
    tie-breaking.

    Args:
        graph: the social graph to traverse.
        source: the start node.
        max_depth: if given, stop after the layer at this depth; this is
            what lets Graph Distance honour the paper's d <= 2 cutoff
            without exploring the whole small-world graph.

    Raises:
        NodeNotFoundError: if ``source`` is not in the graph.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    seen = {source}
    layer = [source]
    depth = 0
    while layer:
        yield depth, layer
        if max_depth is not None and depth >= max_depth:
            return
        next_layer: List[UserId] = []
        for node in layer:
            for nbr in graph.neighbors(node):
                if nbr not in seen:
                    seen.add(nbr)
                    next_layer.append(nbr)
        layer = next_layer
        depth += 1


def bfs_distances(
    graph: SocialGraph, source: UserId, max_depth: Optional[int] = None
) -> Dict[UserId, int]:
    """Hop distances from ``source`` to every reachable user.

    Args:
        graph: the social graph to traverse.
        source: the start node.
        max_depth: if given, stop expanding once this depth is reached; the
            result then contains only users within ``max_depth`` hops.

    Returns:
        Mapping from user to hop count; includes ``source`` at distance 0.

    Raises:
        NodeNotFoundError: if ``source`` is not in the graph.
    """
    return {
        node: depth
        for depth, layer in bfs_layers(graph, source, max_depth)
        for node in layer
    }


def bfs_order(graph: SocialGraph, source: UserId) -> Iterator[UserId]:
    """Yield users in breadth-first order starting at ``source``.

    Raises:
        NodeNotFoundError: if ``source`` is not in the graph.
    """
    for _, layer in bfs_layers(graph, source):
        for node in layer:
            yield node


def shortest_path(
    graph: SocialGraph, source: UserId, target: UserId
) -> Optional[List[UserId]]:
    """One shortest path from ``source`` to ``target``, or None if unreachable.

    The path includes both endpoints.  Ties between equal-length paths are
    broken by BFS discovery order, which is deterministic for a given graph
    construction sequence.

    Raises:
        NodeNotFoundError: if either endpoint is not in the graph.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if target not in graph:
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parents: Dict[UserId, UserId] = {}
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nbr in graph.neighbors(node):
            if nbr in seen:
                continue
            parents[nbr] = node
            if nbr == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            seen.add(nbr)
            frontier.append(nbr)
    return None
