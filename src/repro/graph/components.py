"""Connected-component extraction for social graphs.

The paper's pre-processing keeps the main connected component of Flixster
and reports the component structure of Last.fm (one main component plus 19
small ones); these helpers reproduce that step.
"""

from __future__ import annotations

from typing import List, Set

from repro.graph.social_graph import SocialGraph
from repro.graph.traversal import bfs_order
from repro.types import UserId

__all__ = ["connected_components", "largest_component", "component_of"]


def connected_components(graph: SocialGraph) -> List[Set[UserId]]:
    """All connected components, largest first.

    Ties in component size are broken by first-discovered order so the
    result is deterministic for a given graph construction sequence.
    """
    seen: Set[UserId] = set()
    components: List[Set[UserId]] = []
    for user in graph.users():
        if user in seen:
            continue
        component = set(bfs_order(graph, user))
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: SocialGraph) -> SocialGraph:
    """The induced subgraph on the largest connected component.

    Returns an empty graph when the input is empty.
    """
    components = connected_components(graph)
    if not components:
        return SocialGraph()
    return graph.subgraph(components[0])


def component_of(graph: SocialGraph, user: UserId) -> Set[UserId]:
    """The set of users in the same component as ``user``.

    Raises:
        NodeNotFoundError: if ``user`` is not in the graph.
    """
    return set(bfs_order(graph, user))
