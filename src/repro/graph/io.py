"""Reading and writing graphs as plain-text edge lists.

Formats supported:

- social edge list: one ``u<TAB>v`` pair per line (HetRec's
  ``user_friends.dat`` style, with an optional header line),
- preference edge list: ``u<TAB>i`` or ``u<TAB>i<TAB>weight`` per line
  (HetRec's ``user_artists.dat`` style).

Lines starting with ``#`` and blank lines are ignored.  Identifiers are
kept as strings unless they parse as integers, in which case they are
converted — this keeps synthetic integer graphs round-trippable.
"""

from __future__ import annotations

import os
from typing import Iterator, List, TextIO, Union

from repro.exceptions import DatasetError
from repro.graph.preference_graph import PreferenceGraph
from repro.graph.social_graph import SocialGraph

__all__ = [
    "read_social_graph",
    "write_social_graph",
    "read_preference_graph",
    "write_preference_graph",
]

PathOrFile = Union[str, "os.PathLike[str]", TextIO]


def _coerce_id(token: str):
    """Parse an identifier token: int when possible, str otherwise."""
    try:
        return int(token)
    except ValueError:
        return token


def _iter_data_lines(handle: TextIO) -> Iterator[List[str]]:
    for raw in handle:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield line.split("\t") if "\t" in line else line.split()


def _open_for_read(source: PathOrFile):
    if hasattr(source, "read"):
        return source, False
    return open(source, "r", encoding="utf-8"), True


def _open_for_write(target: PathOrFile):
    if hasattr(target, "write"):
        return target, False
    return open(target, "w", encoding="utf-8"), True


def read_social_graph(source: PathOrFile, skip_header: bool = False) -> SocialGraph:
    """Load an undirected social graph from a two-column edge list.

    Args:
        source: path or open text handle.
        skip_header: drop the first non-comment line (HetRec files carry a
            ``userID\tfriendID`` header).

    Raises:
        DatasetError: on malformed lines.
    """
    handle, should_close = _open_for_read(source)
    try:
        graph = SocialGraph()
        rows = _iter_data_lines(handle)
        if skip_header:
            next(rows, None)
        for lineno, fields in enumerate(rows, start=1):
            if len(fields) == 1:
                # Single-column lines record isolated users.
                graph.add_user(_coerce_id(fields[0]))
                continue
            if len(fields) < 2:
                raise DatasetError(
                    f"social edge line {lineno} needs 2 columns, got {fields!r}"
                )
            u, v = _coerce_id(fields[0]), _coerce_id(fields[1])
            if u != v:
                graph.add_edge(u, v)
        return graph
    finally:
        if should_close:
            handle.close()


def write_social_graph(graph: SocialGraph, target: PathOrFile) -> None:
    """Write a social graph as a tab-separated edge list (one line per edge).

    Isolated users are recorded as single-column lines so a round trip
    preserves the node set.
    """
    handle, should_close = _open_for_write(target)
    try:
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")
        for u in graph.users():
            if graph.degree(u) == 0:
                handle.write(f"{u}\n")
    finally:
        if should_close:
            handle.close()


def read_preference_graph(
    source: PathOrFile, skip_header: bool = False
) -> PreferenceGraph:
    """Load a bipartite preference graph from a 2- or 3-column edge list.

    A missing third column means weight 1.0.

    Raises:
        DatasetError: on malformed lines or non-numeric weights.
    """
    handle, should_close = _open_for_read(source)
    try:
        graph = PreferenceGraph()
        rows = _iter_data_lines(handle)
        if skip_header:
            next(rows, None)
        for lineno, fields in enumerate(rows, start=1):
            if len(fields) < 2:
                raise DatasetError(
                    f"preference line {lineno} needs >= 2 columns, got {fields!r}"
                )
            user, item = _coerce_id(fields[0]), _coerce_id(fields[1])
            if len(fields) >= 3:
                try:
                    weight = float(fields[2])
                except ValueError as exc:
                    raise DatasetError(
                        f"preference line {lineno} has non-numeric weight "
                        f"{fields[2]!r}"
                    ) from exc
            else:
                weight = 1.0
            graph.add_edge(user, item, weight=weight)
        return graph
    finally:
        if should_close:
            handle.close()


def write_preference_graph(graph: PreferenceGraph, target: PathOrFile) -> None:
    """Write a preference graph as a tab-separated ``user item weight`` list."""
    handle, should_close = _open_for_write(target)
    try:
        for user, item, weight in graph.edges():
            handle.write(f"{user}\t{item}\t{weight:g}\n")
    finally:
        if should_close:
            handle.close()
