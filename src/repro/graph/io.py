"""Reading and writing graphs as plain-text edge lists.

Formats supported:

- social edge list: one ``u<TAB>v`` pair per line (HetRec's
  ``user_friends.dat`` style, with an optional header line),
- preference edge list: ``u<TAB>i`` or ``u<TAB>i<TAB>weight`` per line
  (HetRec's ``user_artists.dat`` style).

Lines starting with ``#`` and blank lines are ignored.  Identifiers are
kept as strings unless they parse as integers, in which case they are
converted — this keeps synthetic integer graphs round-trippable.
"""

from __future__ import annotations

import os
from typing import Iterator, List, Optional, TextIO, Tuple, Union

from repro.exceptions import DatasetError
from repro.graph.preference_graph import PreferenceGraph
from repro.graph.social_graph import SocialGraph
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy

__all__ = [
    "read_social_graph",
    "write_social_graph",
    "read_preference_graph",
    "write_preference_graph",
]

PathOrFile = Union[str, "os.PathLike[str]", TextIO]


def _coerce_id(token: str):
    """Parse an identifier token: int when possible, str otherwise."""
    try:
        return int(token)
    except ValueError:
        return token


def _iter_data_lines(handle: TextIO) -> Iterator[Tuple[int, List[str]]]:
    """Yield ``(file_line_number, fields)`` for every data line.

    Line numbers are 1-based positions in the *file* (comments and blank
    lines included), so error messages point at the real offending line.
    """
    for lineno, raw in enumerate(handle, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield lineno, (line.split("\t") if "\t" in line else line.split())


def _open_for_read(source: PathOrFile):
    if hasattr(source, "read"):
        return source, False
    return open(source, "r", encoding="utf-8"), True


def _source_path(source: PathOrFile) -> Optional[str]:
    """A display path for error context, when one exists."""
    if hasattr(source, "read"):
        name = getattr(source, "name", None)
        return name if isinstance(name, str) else None
    return os.fspath(source)


def _open_for_write(target: PathOrFile):
    if hasattr(target, "write"):
        return target, False
    return open(target, "w", encoding="utf-8"), True


def read_social_graph(
    source: PathOrFile,
    skip_header: bool = False,
    retry: Optional[RetryPolicy] = None,
) -> SocialGraph:
    """Load an undirected social graph from a two-column edge list.

    Args:
        source: path or open text handle.
        skip_header: drop the first non-comment line (HetRec files carry a
            ``userID\tfriendID`` header).
        retry: optional policy retrying transient ``OSError`` failures
            (path sources only — a consumed handle cannot be re-read).

    Raises:
        DatasetError: on malformed lines, carrying the source path and
            the 1-based file line number on ``.path`` / ``.line``.
        RetryExhaustedError: when ``retry`` was given and every attempt
            failed with a transient IO error.
    """
    if retry is not None and not hasattr(source, "read"):
        return retry.call(_read_social_graph_once, source, skip_header)
    return _read_social_graph_once(source, skip_header)


def _read_social_graph_once(source: PathOrFile, skip_header: bool) -> SocialGraph:
    path = _source_path(source)
    fault_point("io.read_social", path=path)
    handle, should_close = _open_for_read(source)
    try:
        graph = SocialGraph()
        rows = _iter_data_lines(handle)
        if skip_header:
            next(rows, None)
        for lineno, fields in rows:
            if len(fields) == 1:
                # Single-column lines record isolated users.
                graph.add_user(_coerce_id(fields[0]))
                continue
            if len(fields) < 2:
                raise DatasetError(
                    f"social edge line needs 2 columns, got {fields!r}",
                    path=path,
                    line=lineno,
                )
            u, v = _coerce_id(fields[0]), _coerce_id(fields[1])
            if u != v:
                graph.add_edge(u, v)
        return graph
    finally:
        if should_close:
            handle.close()


def write_social_graph(graph: SocialGraph, target: PathOrFile) -> None:
    """Write a social graph as a tab-separated edge list (one line per edge).

    Isolated users are recorded as single-column lines so a round trip
    preserves the node set.
    """
    handle, should_close = _open_for_write(target)
    try:
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")
        for u in graph.users():
            if graph.degree(u) == 0:
                handle.write(f"{u}\n")
    finally:
        if should_close:
            handle.close()


def read_preference_graph(
    source: PathOrFile,
    skip_header: bool = False,
    retry: Optional[RetryPolicy] = None,
) -> PreferenceGraph:
    """Load a bipartite preference graph from a 2- or 3-column edge list.

    A missing third column means weight 1.0.

    Args:
        source: path or open text handle.
        skip_header: drop the first non-comment line.
        retry: optional policy retrying transient ``OSError`` failures
            (path sources only).

    Raises:
        DatasetError: on malformed lines, non-numeric weights, or invalid
            edges, carrying the source path and 1-based file line number
            on ``.path`` / ``.line``.
        RetryExhaustedError: when ``retry`` was given and every attempt
            failed with a transient IO error.
    """
    if retry is not None and not hasattr(source, "read"):
        return retry.call(_read_preference_graph_once, source, skip_header)
    return _read_preference_graph_once(source, skip_header)


def _read_preference_graph_once(
    source: PathOrFile, skip_header: bool
) -> PreferenceGraph:
    from repro.exceptions import EdgeError

    path = _source_path(source)
    fault_point("io.read_preference", path=path)
    handle, should_close = _open_for_read(source)
    try:
        graph = PreferenceGraph()
        rows = _iter_data_lines(handle)
        if skip_header:
            next(rows, None)
        for lineno, fields in rows:
            if len(fields) < 2:
                raise DatasetError(
                    f"preference line needs >= 2 columns, got {fields!r}",
                    path=path,
                    line=lineno,
                )
            user, item = _coerce_id(fields[0]), _coerce_id(fields[1])
            if len(fields) >= 3:
                try:
                    weight = float(fields[2])
                except ValueError as exc:
                    raise DatasetError(
                        f"preference line has non-numeric weight {fields[2]!r}",
                        path=path,
                        line=lineno,
                    ) from exc
            else:
                weight = 1.0
            try:
                graph.add_edge(user, item, weight=weight)
            except EdgeError as exc:
                raise DatasetError(
                    f"preference line has an invalid edge: {exc}",
                    path=path,
                    line=lineno,
                ) from exc
        return graph
    finally:
        if should_close:
            handle.close()


def write_preference_graph(graph: PreferenceGraph, target: PathOrFile) -> None:
    """Write a preference graph as a tab-separated ``user item weight`` list."""
    handle, should_close = _open_for_write(target)
    try:
        for user, item, weight in graph.edges():
            handle.write(f"{user}\t{item}\t{weight:g}\n")
    finally:
        if should_close:
            handle.close()
