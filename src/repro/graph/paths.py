"""Bounded shortest-path lengths and bounded path counting.

Two similarity measures need non-local structure:

- Graph Distance needs shortest-path lengths up to a cutoff ``d``.
- Katz needs the number of paths of each length ``l <= k`` between pairs of
  users (paths in the walk sense — node repetition allowed except that a
  step never immediately returns along the edge it arrived on is *not*
  excluded; the standard Katz index counts *walks*, and with the small
  damping factors and cutoffs used in the paper the distinction between
  walks and simple paths at length <= 3 only differs by degenerate
  back-and-forth walks, which we exclude at l=3 to match "paths").

Both computations are per-source BFS/DP sweeps bounded by the cutoff, which
keeps the cost near-linear in practice thanks to the small cutoffs (2, 3)
the paper prescribes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph
from repro.graph.traversal import bfs_distances
from repro.types import UserId

__all__ = ["bounded_shortest_path_lengths", "count_paths_up_to"]


def bounded_shortest_path_lengths(
    graph: SocialGraph, source: UserId, max_distance: int
) -> Dict[UserId, int]:
    """Shortest-path lengths from ``source`` to users within ``max_distance``.

    The source itself is excluded (distance 0 is never a useful similarity).

    Raises:
        NodeNotFoundError: if ``source`` is not in the graph.
        ValueError: if ``max_distance`` < 1.
    """
    if max_distance < 1:
        raise ValueError(f"max_distance must be >= 1, got {max_distance}")
    distances = bfs_distances(graph, source, max_depth=max_distance)
    del distances[source]
    return distances


def count_paths_up_to(
    graph: SocialGraph, source: UserId, max_length: int
) -> Dict[UserId, List[int]]:
    """Count simple paths of each length ``1..max_length`` from ``source``.

    Returns a mapping ``target -> counts`` where ``counts[l-1]`` is the
    number of simple paths (no repeated nodes) of length exactly ``l`` from
    ``source`` to ``target``.  Targets with no path within the bound are
    absent.  The source never appears as a target.

    This is exponential in ``max_length`` in the worst case but the paper
    caps ``k`` at 3, which keeps the sweep proportional to the number of
    length-<=3 walks — fine for social graphs with modest degree.

    Raises:
        NodeNotFoundError: if ``source`` is not in the graph.
        ValueError: if ``max_length`` < 1.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if max_length < 1:
        raise ValueError(f"max_length must be >= 1, got {max_length}")

    counts: Dict[UserId, List[int]] = {}

    # Iterative DFS over simple paths of bounded length.  The stack holds
    # (node, depth, path-set); path-set membership enforces simplicity.
    # For max_length <= 3 the recursion depth is tiny, but an explicit stack
    # avoids Python recursion limits on pathological inputs.
    stack: List[tuple] = [(source, 0, frozenset([source]))]
    while stack:
        node, depth, on_path = stack.pop()
        if depth == max_length:
            continue
        for nbr in graph.neighbors(node):
            if nbr in on_path:
                continue
            tally = counts.setdefault(nbr, [0] * max_length)
            tally[depth] += 1
            if depth + 1 < max_length:
                stack.append((nbr, depth + 1, on_path | {nbr}))
    return counts
