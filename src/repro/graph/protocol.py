"""The ``GraphLike`` protocol: what every graph consumer may assume.

Two representations of a social graph coexist in the framework:

- :class:`~repro.graph.social_graph.SocialGraph` — an in-memory
  adjacency-set dictionary, mutable, ideal up to a few hundred thousand
  users;
- :class:`~repro.graph.bigcsr.BigCSRGraph` — an immutable, mmap-backed
  CSR artifact on disk, the canonical representation for million-user
  graphs that must never fully materialise as Python objects.

Every consumer — :func:`repro.compute.kernels.build_kernel`, Louvain,
:class:`~repro.similarity.base.SimilarityCache`, the sweep engine, the
serving tier — accepts either through this structural protocol, without
conversion.  The protocol is intentionally the *intersection* the
consumers actually use, not the full ``SocialGraph`` surface: mutation
(``add_edge`` and friends) is deliberately absent, because the on-disk
representation is immutable by design.

Checked structurally (``isinstance`` works via ``runtime_checkable``),
but consumers should simply call the methods — both implementations are
tested against the same contract in ``tests/graph``.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.types import UserId

__all__ = ["GraphLike"]


@runtime_checkable
class GraphLike(Protocol):
    """Structural interface shared by ``SocialGraph`` and ``BigCSRGraph``.

    Implementations guarantee:

    - ``stable_user_order`` is the canonical row order shared with the
      content-addressed caches (ints numerically, strs lexicographically);
    - ``to_csr()`` returns a symmetric 0/1 float64 CSR adjacency with
      sorted indices, aligned with the returned user order, that callers
      must treat as read-only;
    - ``version`` bumps on every structural mutation (immutable
      representations report a constant), so derived views can detect
      staleness exactly.
    """

    @property
    def version(self) -> int: ...

    @property
    def num_users(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def __contains__(self, user: UserId) -> bool: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[UserId]: ...

    def users(self) -> Sequence[UserId]: ...

    def edges(self) -> Iterator[Tuple[UserId, UserId]]: ...

    def has_edge(self, u: UserId, v: UserId) -> bool: ...

    def neighbors(self, user: UserId) -> FrozenSet[UserId]: ...

    def degree(self, user: UserId) -> int: ...

    def degrees(self) -> Dict[UserId, int]: ...

    def stable_user_order(self) -> Sequence[UserId]: ...

    def to_csr(self, users: Optional[Sequence[UserId]] = None): ...

    def degree_array(self, users: Optional[Sequence[UserId]] = None): ...
