"""Bipartite preference graph ``G_p = (U, I, E_p)`` (paper Definition 2).

A preference edge ``(u, i)`` records a positive preference of user ``u``
for item ``i``.  In the paper's model the graph is unweighted — every edge
has weight 1 and absent edges have weight 0 — but the substrate stores an
explicit weight per edge so ratings-style data can be loaded and then
binarised with :meth:`PreferenceGraph.thresholded` exactly as the paper
pre-processes Last.fm and Flixster (discard weight < 2, set the rest to 1).

This is the *private* input: every computation that reads edge weights must
go through a differentially private mechanism (see :mod:`repro.privacy`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.exceptions import EdgeError, ItemNotFoundError, NodeNotFoundError
from repro.types import ItemId, UserId, Weight

__all__ = ["PreferenceGraph"]


class PreferenceGraph:
    """A bipartite, directed user-to-item graph with non-negative weights.

    Example:
        >>> g = PreferenceGraph()
        >>> g.add_edge("alice", "song-1")
        >>> g.add_edge("bob", "song-1", weight=3.0)
        >>> g.weight("alice", "song-1")
        1.0
        >>> g.weight("alice", "song-2")   # absent edge -> weight 0
        0.0
        >>> g.item_degree("song-1")
        2
    """

    __slots__ = ("_user_items", "_item_users", "_num_edges")

    def __init__(
        self, edges: Iterable[Tuple[UserId, ItemId]] = (), default_weight: float = 1.0
    ) -> None:
        self._user_items: Dict[UserId, Dict[ItemId, Weight]] = {}
        self._item_users: Dict[ItemId, Set[UserId]] = {}
        self._num_edges = 0
        for u, i in edges:
            self.add_edge(u, i, weight=default_weight)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_user(self, user: UserId) -> None:
        """Register a user with no preferences yet; idempotent."""
        self._user_items.setdefault(user, {})

    def add_users(self, users: Iterable[UserId]) -> None:
        """Register many users at once."""
        for user in users:
            self.add_user(user)

    def add_item(self, item: ItemId) -> None:
        """Register an item with no preferences yet; idempotent."""
        self._item_users.setdefault(item, set())

    def add_edge(self, user: UserId, item: ItemId, weight: float = 1.0) -> None:
        """Add (or overwrite) the preference edge ``(user, item)``.

        Raises:
            EdgeError: if the weight is negative or zero.  A zero weight is
                indistinguishable from an absent edge in the paper's model;
                use :meth:`remove_edge` to delete a preference instead.
        """
        if weight <= 0:
            raise EdgeError(
                f"preference weight must be positive, got {weight!r} "
                f"for edge ({user!r}, {item!r})"
            )
        items = self._user_items.setdefault(user, {})
        if item not in items:
            self._num_edges += 1
        items[item] = float(weight)
        self._item_users.setdefault(item, set()).add(user)

    def remove_edge(self, user: UserId, item: ItemId) -> None:
        """Remove the preference edge ``(user, item)``.

        Raises:
            NodeNotFoundError / ItemNotFoundError: if an endpoint is unknown.
            EdgeError: if the edge does not exist.
        """
        if user not in self._user_items:
            raise NodeNotFoundError(user)
        if item not in self._item_users:
            raise ItemNotFoundError(item)
        if item not in self._user_items[user]:
            raise EdgeError(f"preference edge ({user!r}, {item!r}) does not exist")
        del self._user_items[user][item]
        self._item_users[item].discard(user)
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        """Number of registered users (including ones with no edges)."""
        return len(self._user_items)

    @property
    def num_items(self) -> int:
        """Number of registered items, ``|I|``."""
        return len(self._item_users)

    @property
    def num_edges(self) -> int:
        """Number of preference edges, ``|E_p|``."""
        return self._num_edges

    def users(self) -> List[UserId]:
        """All registered users, in insertion order."""
        return list(self._user_items)

    def items(self) -> List[ItemId]:
        """All registered items, in insertion order."""
        return list(self._item_users)

    def edges(self) -> Iterator[Tuple[UserId, ItemId, Weight]]:
        """Iterate every preference edge as ``(user, item, weight)``."""
        for user, items in self._user_items.items():
            for item, weight in items.items():
                yield (user, item, weight)

    def has_user(self, user: UserId) -> bool:
        return user in self._user_items

    def has_item(self, item: ItemId) -> bool:
        return item in self._item_users

    def has_edge(self, user: UserId, item: ItemId) -> bool:
        items = self._user_items.get(user)
        return items is not None and item in items

    def weight(self, user: UserId, item: ItemId) -> Weight:
        """``w(u, i)``: the edge weight, or 0.0 when the edge is absent.

        Unknown users/items also yield 0.0, matching the paper's convention
        ``w(u, i) = 0 for all (u, i) not in E_p``.
        """
        return self._user_items.get(user, {}).get(item, 0.0)

    def items_of(self, user: UserId) -> Dict[ItemId, Weight]:
        """The items user ``user`` prefers, mapped to edge weights.

        Raises:
            NodeNotFoundError: if the user was never registered.
        """
        try:
            return dict(self._user_items[user])
        except KeyError:
            raise NodeNotFoundError(user) from None

    def users_of(self, item: ItemId) -> FrozenSet[UserId]:
        """The users with a preference edge to ``item``.

        Raises:
            ItemNotFoundError: if the item was never registered.
        """
        try:
            return frozenset(self._item_users[item])
        except KeyError:
            raise ItemNotFoundError(item) from None

    def user_degree(self, user: UserId) -> int:
        """Number of items the user prefers."""
        try:
            return len(self._user_items[user])
        except KeyError:
            raise NodeNotFoundError(user) from None

    def item_degree(self, item: ItemId) -> int:
        """Number of users that prefer the item."""
        try:
            return len(self._item_users[item])
        except KeyError:
            raise ItemNotFoundError(item) from None

    def average_item_degree(self) -> float:
        """Mean preferences per item (0.0 when there are no items)."""
        if not self._item_users:
            return 0.0
        return self._num_edges / len(self._item_users)

    def average_user_degree(self) -> float:
        """Mean preferences per user (0.0 when there are no users)."""
        if not self._user_items:
            return 0.0
        return self._num_edges / len(self._user_items)

    def sparsity(self) -> float:
        """``1 - |E_p| / (|U| * |I|)``, as reported in the paper's Table 1."""
        cells = self.num_users * self.num_items
        if cells == 0:
            return 1.0
        return 1.0 - self._num_edges / cells

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def thresholded(self, min_weight: float) -> "PreferenceGraph":
        """Binarise the graph: drop edges below ``min_weight``, set rest to 1.

        This reproduces the paper's Section 6.1 pre-processing (discard
        listened-to / rating edges with weight < 2 and assign weight 1 to
        the remainder).  Users and items are carried over even if they lose
        all their edges, so ``|U|`` and ``|I|`` are unchanged.
        """
        out = PreferenceGraph()
        out.add_users(self._user_items)
        for item in self._item_users:
            out.add_item(item)
        for user, items in self._user_items.items():
            for item, weight in items.items():
                if weight >= min_weight:
                    out.add_edge(user, item, weight=1.0)
        return out

    def restricted_to_users(self, users: Iterable[UserId]) -> "PreferenceGraph":
        """Keep only edges whose user endpoint lies in ``users``.

        All items are preserved so item identifiers remain stable.
        """
        keep = set(users)
        out = PreferenceGraph()
        out.add_users(u for u in self._user_items if u in keep)
        for item in self._item_users:
            out.add_item(item)
        for user, items in self._user_items.items():
            if user not in keep:
                continue
            for item, weight in items.items():
                out.add_edge(user, item, weight=weight)
        return out

    def copy(self) -> "PreferenceGraph":
        """A deep structural copy (identifiers are shared)."""
        clone = PreferenceGraph()
        clone._user_items = {u: dict(d) for u, d in self._user_items.items()}
        clone._item_users = {i: set(s) for i, s in self._item_users.items()}
        clone._num_edges = self._num_edges
        return clone

    def with_edge(
        self, user: UserId, item: ItemId, weight: float = 1.0
    ) -> "PreferenceGraph":
        """A copy with one extra edge — handy for neighbouring-database tests."""
        clone = self.copy()
        clone.add_edge(user, item, weight=weight)
        return clone

    def without_edge(self, user: UserId, item: ItemId) -> "PreferenceGraph":
        """A copy with one edge removed — handy for neighbouring-database tests."""
        clone = self.copy()
        clone.remove_edge(user, item)
        return clone

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_users={self.num_users}, "
            f"num_items={self.num_items}, num_edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PreferenceGraph):
            return NotImplemented
        return (
            self._user_items == other._user_items
            and self._item_users == other._item_users
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("PreferenceGraph is mutable and unhashable")
