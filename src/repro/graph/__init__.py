"""Graph substrate: social graphs, bipartite preference graphs, algorithms.

This package implements the two input structures of the paper's model
(Definitions 1 and 2):

- :class:`SocialGraph` — the undirected user-to-user graph ``G_s``,
  considered *public* in the paper's threat model.
- :class:`PreferenceGraph` — the bipartite, directed user-to-item graph
  ``G_p`` whose edges are the *private* data protected by the framework.

plus the pure-graph algorithms the similarity measures and community
detection are built on (BFS, connected components, bounded path counting).

Two interchangeable representations of ``G_s`` exist — the in-memory
:class:`SocialGraph` and the mmap-backed, out-of-core
:class:`~repro.graph.bigcsr.BigCSRGraph` — unified by the structural
:class:`~repro.graph.protocol.GraphLike` protocol that every consumer
(kernels, Louvain, caches, sweeps, serving) accepts.
"""

from repro.graph.analysis import (
    average_clustering_coefficient,
    clustering_coefficient,
    community_size_profile,
    degree_histogram,
    sampled_path_length,
)
from repro.graph.bigcsr import (
    BigCSRGraph,
    BigCSRWriter,
    bigcsr_from_social_graph,
    open_bigcsr,
)
from repro.graph.components import connected_components, largest_component
from repro.graph.paths import bounded_shortest_path_lengths, count_paths_up_to
from repro.graph.preference_graph import PreferenceGraph
from repro.graph.protocol import GraphLike
from repro.graph.social_graph import SocialGraph
from repro.graph.traversal import bfs_distances, bfs_order

__all__ = [
    "SocialGraph",
    "PreferenceGraph",
    "BigCSRGraph",
    "BigCSRWriter",
    "GraphLike",
    "bigcsr_from_social_graph",
    "open_bigcsr",
    "connected_components",
    "largest_component",
    "bfs_distances",
    "bfs_order",
    "bounded_shortest_path_lengths",
    "count_paths_up_to",
    "degree_histogram",
    "clustering_coefficient",
    "average_clustering_coefficient",
    "sampled_path_length",
    "community_size_profile",
]
