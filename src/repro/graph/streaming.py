"""Streaming synthetic-graph generators for out-of-core construction.

The generators in :mod:`repro.graph.generators` build an in-memory
:class:`~repro.graph.social_graph.SocialGraph` — a dict-of-sets whose
Python-object overhead caps them around a few hundred thousand users.
This module re-expresses the same models as **seeded edge-chunk
iterators**: each yields ``(u, v)`` numpy int64 array pairs, holding
O(chunk) Python objects regardless of graph size, and feeds straight
into :class:`~repro.graph.bigcsr.BigCSRWriter`'s external sort.

**Bit-exactness contract.**  For the same parameters and the same seed,
each streamer emits *exactly* the edge set its in-memory counterpart
produces — not statistically equivalent, identical.  This holds because
numpy's ``Generator.random(k)`` consumes the underlying bit stream
exactly as ``k`` successive scalar ``.random()`` calls do, so the
streamers batch the very same draws the scalar loops make, in the same
order, and apply the same arithmetic to them (including floating-point
operation order in the Erdős–Rényi index inversion, and the
short-circuit in the planted-partition loop that skips the draw entirely
when a pair's probability is zero).  The property suite in
``tests/property`` pins this across parameter draws.

One caveat: a streamer may consume *more* of the bit stream than the
in-memory generator (batches overshoot the final edge), so the rng's
state after generation differs.  Derive per-phase generators from
independent seeds — as the experiment configs already do — rather than
reusing one rng across phases.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.graph.bigcsr import (
    DEFAULT_BUILD_BUDGET_BYTES,
    BigCSRGraph,
    BigCSRWriter,
)

__all__ = [
    "DEFAULT_CHUNK_EDGES",
    "stream_erdos_renyi_edges",
    "stream_barabasi_albert_edges",
    "stream_planted_partition_edges",
    "stream_to_bigcsr",
    "erdos_renyi_bigcsr",
    "barabasi_albert_bigcsr",
    "planted_partition_bigcsr",
]

#: Edges per yielded chunk — the unit of "in-flight" memory.
DEFAULT_CHUNK_EDGES = 1 << 17


EdgeBlocks = Iterable[Tuple[np.ndarray, np.ndarray]]


class _ChunkBuffer:
    """Accumulates scalar edges into fixed-size numpy chunks."""

    def __init__(self, chunk_edges: int) -> None:
        self._u = np.empty(chunk_edges, dtype=np.int64)
        self._v = np.empty(chunk_edges, dtype=np.int64)
        self._len = 0
        self._cap = chunk_edges

    def add(self, u: int, v: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        self._u[self._len] = u
        self._v[self._len] = v
        self._len += 1
        if self._len == self._cap:
            return self.drain()
        return None

    def drain(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        if self._len == 0:
            return None
        out = (self._u[: self._len].copy(), self._v[: self._len].copy())
        self._len = 0
        return out


def stream_erdos_renyi_edges(
    n: int,
    p: float,
    rng: np.random.Generator,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """G(n, p) as edge chunks — bit-exact vs :func:`erdos_renyi_graph`.

    Batches the geometric-skipping draws: a block of uniforms becomes a
    block of skips, a cumulative sum recovers the candidate edge indices,
    and the index→(u, v) inversion runs vectorised with the identical
    float64 arithmetic the scalar loop uses.  Cost is O(edges), memory
    O(chunk).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if p == 0.0 or n < 2:
        return
    if p == 1.0:
        # Complete graph: all pairs row by row, no randomness consumed —
        # exactly like the in-memory special case.
        for u in range(n - 1):
            v = np.arange(u + 1, n, dtype=np.int64)
            for start in range(0, v.size, chunk_edges):
                block = v[start : start + chunk_edges]
                yield np.full(block.size, u, dtype=np.int64), block
        return

    log_q = float(np.log1p(-p))
    total = n * (n - 1) // 2
    b = 2 * n - 1
    index = -1
    # Expected edges per batch ~ batch * p / (p ... ) — just size batches
    # near the chunk size; overshoot past `total` ends the stream.
    batch = max(1024, chunk_edges)
    while index < total:
        draws = rng.random(batch)
        # Same elementwise ops as the scalar loop:
        #   skip = floor(log(1 - u) / log_q)
        # For subnormal p the quotient can exceed int64 (the scalar loop
        # survives via Python's arbitrary-precision int()); any skip
        # >= total already ends the stream, so clamping there changes
        # nothing but keeps the cast defined.
        skips = np.minimum(
            np.floor(np.log(1.0 - draws) / log_q), float(total)
        ).astype(np.int64)
        indices = index + np.cumsum(skips + 1)
        valid = indices < total
        if not valid.all():
            indices = indices[: int(np.argmin(valid))]
            if indices.size == 0:
                return
            index = total
        else:
            index = int(indices[-1])
        # Invert the pairing (u, v), u < v, from the linear index — the
        # same float64 expression as the scalar generator.
        u = ((b - np.sqrt(b * b - 8.0 * indices)) // 2).astype(np.int64)
        v = indices - u * (2 * n - u - 1) // 2 + u + 1
        for start in range(0, u.size, chunk_edges):
            yield u[start : start + chunk_edges], v[start : start + chunk_edges]


def stream_barabasi_albert_edges(
    n: int,
    m: int,
    rng: np.random.Generator,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Barabási–Albert as edge chunks — bit-exact vs the in-memory model.

    Preferential attachment is inherently sequential (each arrival
    samples from the history of all previous endpoints), so the control
    flow stays a scalar loop; what changes is the storage: the endpoint
    multiset lives in one preallocated int64 array (16 bytes per
    directed endpoint) instead of a Python list, and edges leave as
    numpy chunks.  Python-object footprint is O(m + chunk), not O(n·m).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if m >= n:
        raise ValueError(f"m must be < n, got m={m}, n={n}")
    buffer = _ChunkBuffer(chunk_edges)
    # Exact endpoint count: the star contributes m edges, every later
    # arrival exactly m more -> 2 * m * (n - m) entries total.
    repeated = np.empty(2 * m * (n - m), dtype=np.int64)
    rlen = 0
    for v in range(1, m + 1):
        chunk = buffer.add(0, v)
        if chunk is not None:
            yield chunk
        repeated[rlen] = 0
        repeated[rlen + 1] = v
        rlen += 2
    integers = rng.integers  # bound method; the hot path
    for new in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(int(repeated[integers(rlen)]))
        for t in targets:
            chunk = buffer.add(new, t)
            if chunk is not None:
                yield chunk
            repeated[rlen] = new
            repeated[rlen + 1] = t
            rlen += 2
    tail = buffer.drain()
    if tail is not None:
        yield tail


def stream_planted_partition_edges(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Planted partition as edge chunks — bit-exact vs the in-memory model.

    The scalar generator draws one uniform per candidate pair in row
    order, **except** pairs whose probability is zero, which are skipped
    without consuming the rng (Python's ``and`` short-circuits).  The
    streamer reproduces both behaviours: with ``p_out > 0`` it
    batch-draws each full row suffix; with ``p_out == 0`` it draws only
    the intra-community suffix (communities are contiguous by
    construction, so that suffix is a single slice).

    Still Θ(n²) draws when ``p_out > 0`` — the model itself is dense in
    candidate pairs — but O(n) peak memory instead of O(n²) Python
    objects.
    """
    if not sizes:
        raise ValueError("sizes must be non-empty")
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise ValueError(
            f"expected 0 <= p_out <= p_in <= 1, got p_in={p_in}, p_out={p_out}"
        )
    n = int(sum(sizes))
    if p_in == 0.0:  # p_out <= p_in == 0: no pair ever draws
        return
    boundaries = np.cumsum([0, *sizes])
    community = np.empty(n, dtype=np.int64)
    for c in range(len(sizes)):
        community[boundaries[c] : boundaries[c + 1]] = c

    buffer_u: list = []
    buffer_v: list = []
    buffered = 0
    for u in range(n):
        if p_out > 0.0:
            stop = n
            probabilities = np.where(
                community[u + 1 :] == community[u], p_in, p_out
            )
        else:
            # Zero-probability pairs never touch the rng; only the rest
            # of u's own community block draws.
            stop = int(boundaries[community[u] + 1])
            probabilities = p_in
        count = stop - u - 1
        if count <= 0:
            continue
        draws = rng.random(count)
        hits = np.nonzero(draws < probabilities)[0]
        if hits.size:
            buffer_u.append(np.full(hits.size, u, dtype=np.int64))
            buffer_v.append(hits.astype(np.int64) + u + 1)
            buffered += hits.size
            if buffered >= chunk_edges:
                yield np.concatenate(buffer_u), np.concatenate(buffer_v)
                buffer_u, buffer_v, buffered = [], [], 0
    if buffered:
        yield np.concatenate(buffer_u), np.concatenate(buffer_v)


# ----------------------------------------------------------------------
# edge stream -> artifact
# ----------------------------------------------------------------------
def stream_to_bigcsr(
    num_users: int,
    edge_blocks: EdgeBlocks,
    *,
    directory: Optional[str] = None,
    path: Optional[str] = None,
    memory_budget_bytes: int = DEFAULT_BUILD_BUDGET_BYTES,
) -> BigCSRGraph:
    """Drain an edge-chunk iterator into a published BigCSR artifact.

    The glue between the streamers above and
    :class:`~repro.graph.bigcsr.BigCSRWriter`: chunks spill to disk as
    they arrive and the external sort publishes the artifact atomically.
    On any failure the writer's scratch space is cleaned up.
    """
    writer = BigCSRWriter(num_users, memory_budget_bytes=memory_budget_bytes)
    try:
        for u_block, v_block in edge_blocks:
            writer.add_edges(u_block, v_block)
        return writer.finalize(
            directory=directory, path=path
        )
    except BaseException:
        writer.abort()
        raise


def erdos_renyi_bigcsr(
    n: int,
    p: float,
    rng: np.random.Generator,
    *,
    directory: Optional[str] = None,
    path: Optional[str] = None,
    memory_budget_bytes: int = DEFAULT_BUILD_BUDGET_BYTES,
) -> BigCSRGraph:
    """G(n, p) built out-of-core; same edges as the in-memory generator."""
    return stream_to_bigcsr(
        n,
        stream_erdos_renyi_edges(n, p, rng),
        directory=directory,
        path=path,
        memory_budget_bytes=memory_budget_bytes,
    )


def barabasi_albert_bigcsr(
    n: int,
    m: int,
    rng: np.random.Generator,
    *,
    directory: Optional[str] = None,
    path: Optional[str] = None,
    memory_budget_bytes: int = DEFAULT_BUILD_BUDGET_BYTES,
) -> BigCSRGraph:
    """Barabási–Albert built out-of-core; bit-exact vs the in-memory model."""
    return stream_to_bigcsr(
        n,
        stream_barabasi_albert_edges(n, m, rng),
        directory=directory,
        path=path,
        memory_budget_bytes=memory_budget_bytes,
    )


def planted_partition_bigcsr(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator,
    *,
    directory: Optional[str] = None,
    path: Optional[str] = None,
    memory_budget_bytes: int = DEFAULT_BUILD_BUDGET_BYTES,
) -> BigCSRGraph:
    """Planted partition built out-of-core; bit-exact vs the in-memory model."""
    return stream_to_bigcsr(
        int(sum(sizes)),
        stream_planted_partition_edges(sizes, p_in, p_out, rng),
        directory=directory,
        path=path,
        memory_budget_bytes=memory_budget_bytes,
    )
