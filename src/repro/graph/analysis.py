"""Structural graph analysis: the statistics behind the dataset matching.

DESIGN.md §4 argues the synthetic stand-ins preserve the crawls'
*structure*; this module computes the quantities that argument rests on,
so the claim is measurable rather than asserted:

- degree distribution summaries (:func:`degree_histogram`,
  :func:`degree_assortativity` is deliberately omitted — the paper never
  uses it),
- local clustering coefficient (:func:`clustering_coefficient`,
  :func:`average_clustering_coefficient`) — the small-world signature,
- sampled average shortest-path length (:func:`sampled_path_length`) —
  the other small-world signature,
- community-size profile under Louvain
  (:func:`community_size_profile`) — what the paper reports in §6.2
  (e.g. "the largest cluster contained 28.5% of the users").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import GraphError
from repro.graph.social_graph import SocialGraph
from repro.graph.traversal import bfs_distances
from repro.types import UserId

__all__ = [
    "degree_histogram",
    "clustering_coefficient",
    "average_clustering_coefficient",
    "sampled_path_length",
    "community_size_profile",
    "CommunityProfile",
]


def degree_histogram(graph: SocialGraph) -> Dict[int, int]:
    """degree -> number of users with that degree."""
    histogram: Dict[int, int] = {}
    for degree in graph.degrees().values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def clustering_coefficient(graph: SocialGraph, user: UserId) -> float:
    """The local clustering coefficient of one user.

    Fraction of the user's neighbor pairs that are themselves connected;
    0.0 for degree < 2.

    Raises:
        NodeNotFoundError: if the user is not in the graph.
    """
    neighbors = list(graph.neighbors(user))
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links = 0
    for i, a in enumerate(neighbors):
        adjacency = graph.neighbors(a)
        for b in neighbors[i + 1 :]:
            if b in adjacency:
                links += 1
    return 2.0 * links / (degree * (degree - 1))


def average_clustering_coefficient(graph: SocialGraph) -> float:
    """Mean local clustering coefficient over all users (0.0 if empty)."""
    users = graph.users()
    if not users:
        return 0.0
    return sum(clustering_coefficient(graph, u) for u in users) / len(users)


def sampled_path_length(
    graph: SocialGraph,
    samples: int = 50,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Mean shortest-path length from a sample of sources.

    Averages BFS distances from ``samples`` random sources to every node
    they can reach.  Returns NaN for a graph with no reachable pairs.

    Raises:
        GraphError: for an empty graph.
        ValueError: for a non-positive sample count.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    users = graph.users()
    if not users:
        raise GraphError("cannot sample path lengths on an empty graph")
    if rng is None:
        rng = np.random.default_rng(0)
    if len(users) <= samples:
        sources = users
    else:
        chosen = rng.choice(len(users), size=samples, replace=False)
        sources = [users[int(i)] for i in chosen]
    total = 0.0
    count = 0
    for source in sources:
        for target, distance in bfs_distances(graph, source).items():
            if target != source:
                total += distance
                count += 1
    return total / count if count else float("nan")


@dataclass(frozen=True)
class CommunityProfile:
    """Summary of a Louvain clustering, as the paper reports in §6.2.

    Attributes:
        num_clusters: number of communities.
        sizes: community sizes, descending.
        largest_fraction: share of users in the largest community.
        modularity: Q of the clustering.
    """

    num_clusters: int
    sizes: Tuple[int, ...]
    largest_fraction: float
    modularity: float


def community_size_profile(
    graph: SocialGraph, runs: int = 10, seed: int = 0
) -> CommunityProfile:
    """The paper's §6.2 community summary under best-of-``runs`` Louvain.

    Raises:
        GraphError: for an empty graph.
    """
    from repro.community.louvain import best_louvain_clustering

    if graph.num_users == 0:
        raise GraphError("cannot profile communities of an empty graph")
    result = best_louvain_clustering(graph, runs=runs, seed=seed)
    sizes: List[int] = sorted(result.clustering.sizes(), reverse=True)
    return CommunityProfile(
        num_clusters=len(sizes),
        sizes=tuple(sizes),
        largest_fraction=sizes[0] / graph.num_users,
        modularity=result.modularity,
    )
