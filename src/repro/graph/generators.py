"""Random graph generators used to synthesise evaluation datasets.

The paper evaluates on crawls of Last.fm and Flixster.  Those crawls are
not redistributable here, so the benchmark harness instead generates
synthetic social graphs whose relevant structure matches the crawls:

- pronounced community structure (the framework's clustering phase exploits
  it) — provided by :func:`planted_partition_graph`,
- heavy-tailed degree distributions — provided by
  :func:`barabasi_albert_graph` and the intra-community attachment used by
  the dataset builders,
- small-world shortcuts between communities — random inter-community edges.

All generators take an explicit :class:`numpy.random.Generator` so every
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.graph.social_graph import SocialGraph

__all__ = [
    "erdos_renyi_graph",
    "watts_strogatz_graph",
    "barabasi_albert_graph",
    "planted_partition_graph",
    "community_attachment_graph",
]


def _require_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def erdos_renyi_graph(n: int, p: float, rng: np.random.Generator) -> SocialGraph:
    """G(n, p): each of the n-choose-2 edges present independently w.p. ``p``.

    Uses the geometric skipping trick so the cost is proportional to the
    number of generated edges rather than to ``n**2`` when ``p`` is small.
    """
    _require_positive("n", n)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    graph = SocialGraph()
    graph.add_users(range(n))
    if p == 0.0 or n < 2:
        return graph
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph
    # Iterate candidate edge indices 0..C(n,2)-1 with geometric jumps.
    log_q = np.log1p(-p)
    total = n * (n - 1) // 2
    index = -1
    while True:
        # For subnormal p the quotient can overflow to inf; any skip
        # >= total ends the loop, so clamping there changes nothing.
        skip = int(min(np.floor(np.log(1.0 - rng.random()) / log_q), float(total)))
        index += skip + 1
        if index >= total:
            break
        # Invert the pairing (u, v), u < v, from the linear index.
        u = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * index)) // 2)
        v = index - u * (2 * n - u - 1) // 2 + u + 1
        graph.add_edge(u, int(v))
    return graph


def watts_strogatz_graph(
    n: int, k: int, beta: float, rng: np.random.Generator
) -> SocialGraph:
    """Watts–Strogatz small world: ring lattice with rewiring probability beta.

    Args:
        n: number of nodes.
        k: each node connects to its ``k`` nearest ring neighbors
            (``k`` must be even and < n).
        beta: probability of rewiring each lattice edge to a random target.
        rng: random source.
    """
    _require_positive("n", n)
    if k % 2 != 0 or k >= n:
        raise ValueError(f"k must be even and < n, got k={k}, n={n}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    graph = SocialGraph()
    graph.add_users(range(n))
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(u, (u + offset) % n)
    if beta == 0.0:
        return graph
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() >= beta or not graph.has_edge(u, v):
                continue
            candidates = [w for w in range(n) if w != u and not graph.has_edge(u, w)]
            if not candidates:
                continue
            graph.remove_edge(u, v)
            graph.add_edge(u, candidates[rng.integers(len(candidates))])
    return graph


def barabasi_albert_graph(n: int, m: int, rng: np.random.Generator) -> SocialGraph:
    """Barabási–Albert preferential attachment: each new node adds m edges.

    Produces the heavy-tailed degree distribution characteristic of the
    social crawls in the paper's Table 1 (std of the degree greatly exceeds
    the mean).
    """
    _require_positive("n", n)
    _require_positive("m", m)
    if m >= n:
        raise ValueError(f"m must be < n, got m={m}, n={n}")
    graph = SocialGraph()
    graph.add_users(range(n))
    # Seed with a star over the first m+1 nodes so every node has degree >= 1.
    repeated: List[int] = []
    for v in range(1, m + 1):
        graph.add_edge(0, v)
        repeated.extend((0, v))
    for new in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(repeated[rng.integers(len(repeated))])
        for t in targets:
            graph.add_edge(new, t)
            repeated.extend((new, t))
    return graph


def heterogeneous_ba_graph(
    n: int, mean_m: float, rng: np.random.Generator
) -> SocialGraph:
    """Preferential attachment with geometric per-node edge counts.

    Classic Barabási–Albert floors every degree at ``m``, but real social
    crawls have many degree-1 users (the paper's Figure 3 analysis lives on
    them).  Here each arriving node draws its edge count from a geometric
    distribution with mean ``mean_m`` (so ~``1/mean_m`` of users attach a
    single edge), preserving the heavy tail of hub degrees.

    Args:
        n: number of nodes.
        mean_m: mean number of edges each new node attaches (>= 1).
        rng: random source.
    """
    _require_positive("n", n)
    if mean_m < 1.0:
        raise ValueError(f"mean_m must be >= 1, got {mean_m}")
    graph = SocialGraph()
    graph.add_users(range(n))
    if n == 1:
        return graph
    repeated: List[int] = [0, 1]
    graph.add_edge(0, 1)
    for new in range(2, n):
        m_node = min(int(rng.geometric(1.0 / mean_m)), new)
        targets: set = set()
        attempts = 0
        while len(targets) < m_node and attempts < 20 * m_node:
            targets.add(repeated[rng.integers(len(repeated))])
            attempts += 1
        for t in targets:
            graph.add_edge(new, t)
            repeated.extend((new, t))
    return graph


def planted_partition_graph(
    sizes: Sequence[int],
    p_in: float,
    p_out: float,
    rng: np.random.Generator,
) -> SocialGraph:
    """Planted-partition model: dense blocks joined by sparse random edges.

    Args:
        sizes: community sizes; node ids are assigned contiguously so
            community ``c`` holds nodes ``sum(sizes[:c]) .. sum(sizes[:c+1])-1``.
        p_in: intra-community edge probability.
        p_out: inter-community edge probability.
        rng: random source.
    """
    if not sizes:
        raise ValueError("sizes must be non-empty")
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise ValueError(
            f"expected 0 <= p_out <= p_in <= 1, got p_in={p_in}, p_out={p_out}"
        )
    n = int(sum(sizes))
    boundaries = np.cumsum([0, *sizes])
    community = np.empty(n, dtype=np.int64)
    for c in range(len(sizes)):
        community[boundaries[c] : boundaries[c + 1]] = c

    graph = SocialGraph()
    graph.add_users(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if community[u] == community[v] else p_out
            if p > 0.0 and rng.random() < p:
                graph.add_edge(u, v)
    return graph


def community_attachment_graph(
    sizes: Sequence[int],
    m_in: int,
    inter_edges: int,
    rng: np.random.Generator,
) -> SocialGraph:
    """Communities with internal preferential attachment plus random bridges.

    Each community is an independent heterogeneous preferential-attachment
    graph (heavy-tailed internal degrees *including* degree-1 users, via
    :func:`heterogeneous_ba_graph`), and ``inter_edges`` random user pairs
    from different communities are connected.  This matches the qualitative
    structure of the Last.fm/Flixster social graphs better than the plain
    planted partition: strong communities, hub users, and a long low-degree
    tail.

    Args:
        sizes: community sizes (each must exceed ``m_in``).
        m_in: mean attachment count within each community (the average
            social degree comes out near ``2 * m_in``).
        inter_edges: number of random bridges between communities.
        rng: random source.
    """
    if not sizes:
        raise ValueError("sizes must be non-empty")
    if inter_edges < 0:
        raise ValueError(f"inter_edges must be >= 0, got {inter_edges}")
    graph = SocialGraph()
    offset = 0
    blocks: List[range] = []
    for size in sizes:
        if size <= m_in:
            raise ValueError(
                f"every community size must exceed m_in={m_in}, got {size}"
            )
        block = heterogeneous_ba_graph(size, float(m_in), rng)
        for u, v in block.edges():
            graph.add_edge(u + offset, v + offset)
        blocks.append(range(offset, offset + size))
        offset += size
    graph.add_users(range(offset))

    if len(sizes) < 2:
        return graph
    added = 0
    attempts = 0
    max_attempts = 50 * max(inter_edges, 1)
    while added < inter_edges and attempts < max_attempts:
        attempts += 1
        c1, c2 = rng.choice(len(blocks), size=2, replace=False)
        u = int(rng.choice(blocks[c1]))
        v = int(rng.choice(blocks[c2]))
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph
