"""Out-of-core social graphs: a checksummed, mmap-backed CSR artifact.

``SocialGraph`` is a dict-of-sets — ideal for mutation and for the
hundreds-of-thousands-of-users scale of the paper's crawls, hopeless at
ten million: every user id, neighbor set, and set entry is a Python
object.  This module inverts the architecture for large graphs:
**CSR-on-disk is the primary representation**, and Python objects exist
only for the rows a caller actually touches.

An artifact is a *directory* of three flat numpy buffers plus metadata::

    <fingerprint>.bigcsr/
        meta.json      format version, counts, dtypes, per-file SHA-256
                       digests, the graph content fingerprint, and a
                       checksum over the metadata itself
        indptr.npy     CSR row pointers   (int32 when they fit, else int64)
        indices.npy    CSR column ids, sorted per row (same dtype)
        data.npy       float64 ones, so ``to_csr`` is a zero-copy wrap

The discipline is the same as :mod:`repro.cache.store` and
:mod:`repro.core.persistence`:

- **content-addressed** — the canonical directory name is the graph's
  :func:`~repro.cache.keys.graph_fingerprint`, computed *during* the
  build from the sorted edge stream, bit-identical to the fingerprint of
  the equivalent in-memory graph — so both representations share one
  similarity-kernel cache;
- **checksummed** — every buffer file carries a SHA-256 digest, verified
  on open (:exc:`~repro.exceptions.GraphArtifactError` on mismatch);
- **atomic** — built in a sibling temp directory, fsynced, then renamed
  into place, so a crash leaves either the old artifact or none;
- **memory-mapped** — :meth:`BigCSRGraph.to_csr` wraps the on-disk
  buffers without copying; index dtypes are chosen exactly as scipy
  would choose them, so ``csr_matrix(..., copy=False)`` keeps the maps.

:class:`BigCSRWriter` builds artifacts from *streamed* edges with an
external bucket sort: edge chunks spill to disk as they arrive, degrees
accumulate in one int64 array, and ``finalize`` scatters the spill into
row-range buckets sized to a memory budget, sorts each bucket, and
writes the CSR buffers straight through a write-mode memmap — so peak
Python-object memory is O(edges-in-flight), never O(edges).

:class:`BigCSRGraph` then satisfies the
:class:`~repro.graph.protocol.GraphLike` protocol, so ``build_kernel``,
Louvain, ``SimilarityCache``, the sweep engine, and the serving tier all
accept it in place of a ``SocialGraph`` without conversion.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import uuid
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import EdgeError, GraphArtifactError, NodeNotFoundError
from repro.types import UserId

__all__ = [
    "BIGCSR_FORMAT_VERSION",
    "BigCSRGraph",
    "BigCSRWriter",
    "bigcsr_from_social_graph",
    "content_path",
    "open_bigcsr",
]

#: Bump to invalidate every persisted graph artifact when the on-disk
#: layout changes incompatibly.
BIGCSR_FORMAT_VERSION = 1

_META_NAME = "meta.json"
_BUFFER_NAMES = ("indptr.npy", "indices.npy", "data.npy")

#: Default budget for the external sort's in-memory working set.  One
#: bucket of directed edge pairs is at most this many bytes before the
#: per-bucket sort; a single row's adjacency can exceed it (rows cannot
#: be split), so it is a target, not a hard cap.
DEFAULT_BUILD_BUDGET_BYTES = 128 * 2**20

#: Edge pairs buffered in Python before they are flushed as one spill
#: chunk (``add_edge`` path; ``add_edges`` flushes per call).
_EDGE_BUFFER_LEN = 1 << 18

_DIGEST_CHUNK = 8 * 2**20


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_DIGEST_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _meta_checksum(meta: dict) -> str:
    """SHA-256 over the canonical JSON of ``meta`` minus its checksum."""
    payload = {k: v for k, v in meta.items() if k != "checksum"}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _index_dtype(num_users: int, nnz: int) -> np.dtype:
    """The index dtype scipy would pick for this shape and content.

    Matching scipy's own choice matters: ``csr_matrix(..., copy=False)``
    keeps the given buffers only when their dtype is the one scipy's
    ``get_index_dtype`` resolves, so storing the *same* dtype on disk is
    what makes ``to_csr`` zero-copy.
    """
    limit = np.iinfo(np.int32).max
    if num_users <= limit and nnz <= limit:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


def content_path(directory: str, fingerprint: str) -> str:
    """Where the artifact for a graph ``fingerprint`` lives in a store dir."""
    return os.path.join(directory, f"{fingerprint}.bigcsr")


class BigCSRGraph:
    """An immutable social graph backed by on-disk CSR buffers.

    Users are the contiguous ints ``0 .. num_users-1`` — exactly the
    canonical ``stable_user_order`` — so row position and user id
    coincide and no id↔row dictionaries are ever materialised.

    Satisfies :class:`~repro.graph.protocol.GraphLike`; per-user queries
    (``neighbors``, ``degree``, ``has_edge``) read only the touched rows
    from the memory map, and :meth:`to_csr` wraps the buffers without
    copying.  Structural mutation is not supported: :attr:`version` is
    the constant 0.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        num_edges: int,
        fingerprint: str,
        path: Optional[str] = None,
        meta: Optional[dict] = None,
    ) -> None:
        self._indptr = indptr
        self._indices = indices
        self._data = data
        self._num_users = int(indptr.shape[0]) - 1
        self._num_edges = int(num_edges)
        #: The graph's canonical content fingerprint
        #: (:func:`repro.cache.keys.graph_fingerprint` short-circuits to it).
        self.fingerprint = fingerprint
        #: The artifact directory backing the buffers (None: in-memory).
        self.path = path
        self.meta = dict(meta) if meta else {}
        self._matrix: Optional[sp.csr_matrix] = None

    # ------------------------------------------------------------------
    # GraphLike: scalars and membership
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Constant 0 — the representation is immutable."""
        return 0

    @property
    def num_users(self) -> int:
        return self._num_users

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def nnz(self) -> int:
        """Stored directed entries (``2 * num_edges``)."""
        return int(self._indptr[-1])

    def __contains__(self, user: UserId) -> bool:
        return (
            isinstance(user, (int, np.integer))
            and not isinstance(user, bool)
            and 0 <= int(user) < self._num_users
        )

    def __len__(self) -> int:
        return self._num_users

    def __iter__(self) -> Iterator[UserId]:
        return iter(range(self._num_users))

    def users(self) -> range:
        """All user nodes — a ``range``, never a materialised list."""
        return range(self._num_users)

    def stable_user_order(self) -> range:
        """Canonical order; ints ascending is exactly ``user_sort_key``."""
        return range(self._num_users)

    # ------------------------------------------------------------------
    # GraphLike: per-user queries
    # ------------------------------------------------------------------
    def _row_bounds(self, user: UserId) -> Tuple[int, int]:
        if user not in self:
            raise NodeNotFoundError(user)
        u = int(user)
        return int(self._indptr[u]), int(self._indptr[u + 1])

    def neighbors(self, user: UserId) -> FrozenSet[UserId]:
        """``Gamma(u)`` as a frozen set of Python ints."""
        start, stop = self._row_bounds(user)
        return frozenset(self._indices[start:stop].tolist())

    def neighbor_array(self, user: UserId) -> np.ndarray:
        """``Gamma(u)`` as a sorted numpy view — no Python objects."""
        start, stop = self._row_bounds(user)
        return self._indices[start:stop]

    def degree(self, user: UserId) -> int:
        start, stop = self._row_bounds(user)
        return stop - start

    def degrees(self) -> Dict[UserId, int]:
        """Degree of every user (materialises one dict; prefer
        :meth:`degree_array` at scale)."""
        return dict(enumerate(np.diff(self._indptr).tolist()))

    def has_edge(self, u: UserId, v: UserId) -> bool:
        if u not in self or v not in self:
            return False
        start, stop = self._row_bounds(u)
        position = int(np.searchsorted(self._indices[start:stop], int(v)))
        return (
            position < stop - start
            and int(self._indices[start + position]) == int(v)
        )

    def average_degree(self) -> float:
        if self._num_users == 0:
            return 0.0
        return 2.0 * self._num_edges / self._num_users

    def max_degree(self) -> int:
        if self._num_users == 0:
            return 0
        return int(np.diff(self._indptr).max())

    # ------------------------------------------------------------------
    # GraphLike: edge iteration
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[Tuple[UserId, UserId]]:
        """Each undirected edge once, as ``(u, v)`` with ``u < v``,
        ascending — the canonical fingerprint order."""
        for u_block, v_block in self.iter_edge_blocks():
            yield from zip(u_block.tolist(), v_block.tolist())

    def iter_edge_blocks(
        self, block_rows: int = 65536
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Undirected edges as numpy ``(u, v)`` array blocks, ``u < v``,
        globally sorted — O(block) memory regardless of graph size."""
        indptr = self._indptr
        indices = self._indices
        for start in range(0, self._num_users, block_rows):
            stop = min(start + block_rows, self._num_users)
            lo, hi = int(indptr[start]), int(indptr[stop])
            if lo == hi:
                continue
            block = np.asarray(indices[lo:hi], dtype=np.int64)
            counts = np.diff(indptr[start : stop + 1]).astype(np.int64)
            sources = np.repeat(np.arange(start, stop, dtype=np.int64), counts)
            keep = block > sources
            if keep.any():
                yield sources[keep], block[keep]

    # ------------------------------------------------------------------
    # GraphLike: vectorised views
    # ------------------------------------------------------------------
    def to_csr(self, users: Optional[Iterable[UserId]] = None):
        """The 0/1 adjacency as ``(scipy.sparse.csr_matrix, users)``.

        With the default order this wraps the mmap'd buffers in place —
        zero copies, shared page cache across processes — and returns
        ``range(num_users)`` as the user order.  Treat the matrix as
        strictly read-only.  With an explicit ``users`` list the induced
        submatrix is materialised (small-subset use only).
        """
        if users is None:
            return self._adjacency_matrix(), range(self._num_users)
        users = list(users)
        for user in users:
            if user not in self:
                raise NodeNotFoundError(user)
        rows = np.asarray([int(u) for u in users], dtype=np.int64)
        sub = self._adjacency_matrix()[rows, :][:, rows]
        return sp.csr_matrix(sub), users

    def _adjacency_matrix(self) -> sp.csr_matrix:
        if self._matrix is None:
            matrix = sp.csr_matrix(
                (self._data, self._indices, self._indptr),
                shape=(self._num_users, self._num_users),
                copy=False,
            )
            # Rows are sorted and duplicate-free by construction; telling
            # scipy avoids a full O(nnz) verification touching every page.
            matrix.has_sorted_indices = True
            matrix.has_canonical_format = True
            self._matrix = matrix
        return self._matrix

    def degree_array(self, users: Optional[Iterable[UserId]] = None):
        """Degrees as a float64 vector aligned with ``users``."""
        if users is None:
            return np.diff(self._indptr).astype(np.float64)
        users = list(users)
        out = np.empty(len(users))
        for i, user in enumerate(users):
            start, stop = self._row_bounds(user)
            out[i] = stop - start
        return out

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_social_graph(self):
        """Materialise as an in-memory :class:`SocialGraph` (small graphs)."""
        from repro.graph.social_graph import SocialGraph

        graph = SocialGraph()
        graph.add_users(range(self._num_users))
        for u, v in self.edges():
            graph.add_edge(u, v)
        return graph

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_users={self._num_users}, "
            f"num_edges={self._num_edges}, path={self.path!r})"
        )


# ----------------------------------------------------------------------
# opening artifacts
# ----------------------------------------------------------------------
def _load_meta(directory: str) -> dict:
    meta_path = os.path.join(directory, _META_NAME)
    try:
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)
    except OSError as exc:
        raise GraphArtifactError(
            f"graph artifact {directory!r} has no readable metadata: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise GraphArtifactError(
            f"graph artifact {directory!r} carries unparseable metadata: {exc}"
        ) from exc
    if not isinstance(meta, dict):
        raise GraphArtifactError(
            f"graph artifact {directory!r} metadata is not an object"
        )
    version = meta.get("version")
    if version != BIGCSR_FORMAT_VERSION:
        raise GraphArtifactError(
            f"graph artifact {directory!r} has format {version!r}; "
            f"this build reads format {BIGCSR_FORMAT_VERSION}"
        )
    if meta.get("checksum") != _meta_checksum(meta):
        raise GraphArtifactError(
            f"graph artifact {directory!r} failed its metadata checksum; "
            f"the artifact is corrupt"
        )
    return meta


def open_bigcsr(path: str, verify: bool = True) -> BigCSRGraph:
    """Open an artifact directory, memory-mapping the CSR buffers.

    Args:
        path: the ``*.bigcsr`` directory.
        verify: stream every buffer once and compare SHA-256 digests
            against the metadata (one sequential read; it also warms the
            page cache).  Pass False when a parent process already
            verified the artifact — pool workers and the serving tier's
            reload path do.

    Raises:
        GraphArtifactError: corrupt or truncated artifacts, checksum
            mismatches, unsupported versions, CSR invariant violations.
    """
    meta = _load_meta(path)
    if verify:
        for name in _BUFFER_NAMES:
            expected = meta["files"].get(name)
            buffer_path = os.path.join(path, name)
            try:
                actual = _file_sha256(buffer_path)
            except OSError as exc:
                raise GraphArtifactError(
                    f"graph artifact {path!r} is missing buffer {name}: {exc}"
                ) from exc
            if actual != expected:
                raise GraphArtifactError(
                    f"graph artifact {path!r} buffer {name} failed its "
                    f"checksum (stored {str(expected)[:12]}..., computed "
                    f"{actual[:12]}...); the artifact is corrupt"
                )
    try:
        indptr = np.load(os.path.join(path, "indptr.npy"), mmap_mode="r")
        indices = np.load(os.path.join(path, "indices.npy"), mmap_mode="r")
        data = np.load(os.path.join(path, "data.npy"), mmap_mode="r")
    except (OSError, ValueError) as exc:
        raise GraphArtifactError(
            f"graph artifact {path!r} has unreadable buffers: {exc}"
        ) from exc
    num_users = int(meta.get("num_users", -1))
    nnz = int(meta.get("nnz", -1))
    if (
        indptr.ndim != 1
        or indices.ndim != 1
        or data.ndim != 1
        or indptr.shape[0] != num_users + 1
        or indices.shape[0] != nnz
        or data.shape[0] != nnz
        or (num_users >= 0 and int(indptr[0]) != 0)
        or (nnz >= 0 and num_users >= 0 and int(indptr[-1]) != nnz)
    ):
        raise GraphArtifactError(
            f"graph artifact {path!r} violates CSR shape invariants "
            f"(num_users={num_users}, nnz={nnz}, "
            f"indptr={indptr.shape}, indices={indices.shape})"
        )
    return BigCSRGraph(
        indptr,
        indices,
        data,
        num_edges=int(meta["num_edges"]),
        fingerprint=str(meta["fingerprint"]),
        path=path,
        meta=meta,
    )


# ----------------------------------------------------------------------
# building artifacts from streamed edges
# ----------------------------------------------------------------------
class BigCSRWriter:
    """Stream edges into a :class:`BigCSRGraph` artifact via external sort.

    Usage::

        writer = BigCSRWriter(num_users=10_000_000)
        for u_chunk, v_chunk in edge_stream:      # numpy arrays
            writer.add_edges(u_chunk, v_chunk)
        graph = writer.finalize(directory="graphs/")   # content-addressed

    The writer holds O(chunk) Python-side memory plus one int64 degree
    vector (8 bytes/user); edges spill to a scratch directory as they
    arrive.  ``finalize`` runs a two-pass external bucket sort governed
    by ``memory_budget_bytes`` and writes the artifact atomically.

    Edges must be duplicate-free (each undirected pair at most once, in
    either orientation) and self-loop-free — both are verified, the
    first during the sort, so a violating stream fails the build instead
    of corrupting the artifact.

    Args:
        num_users: the graph's user count; ids are ``0 .. num_users-1``.
        memory_budget_bytes: target bound on the external sort's working
            set (a single oversized row can exceed it — rows can't split).
        spill_dir: scratch directory for edge spill chunks (default: a
            fresh ``tempfile.mkdtemp``, removed on finalize/abort).
    """

    def __init__(
        self,
        num_users: int,
        *,
        memory_budget_bytes: int = DEFAULT_BUILD_BUDGET_BYTES,
        spill_dir: Optional[str] = None,
    ) -> None:
        if num_users < 0:
            raise ValueError(f"num_users must be >= 0, got {num_users}")
        if memory_budget_bytes < 1:
            raise ValueError(
                f"memory_budget_bytes must be >= 1, got {memory_budget_bytes}"
            )
        self.num_users = num_users
        self.memory_budget_bytes = memory_budget_bytes
        self._own_spill = spill_dir is None
        self._spill_dir = (
            tempfile.mkdtemp(prefix="bigcsr-spill-")
            if spill_dir is None
            else spill_dir
        )
        os.makedirs(self._spill_dir, exist_ok=True)
        self._degrees = np.zeros(num_users, dtype=np.int64)
        self._chunks: List[str] = []
        self._num_edges = 0
        self._pending_u: List[int] = []
        self._pending_v: List[int] = []
        self._finalized = False

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int) -> None:
        """Add one undirected edge (buffered; flushed in chunks)."""
        self._pending_u.append(u)
        self._pending_v.append(v)
        if len(self._pending_u) >= _EDGE_BUFFER_LEN:
            self._flush_pending()

    def add_edges(self, u, v) -> None:
        """Add a chunk of undirected edges from two aligned arrays."""
        self._flush_pending()
        u = np.asarray(u)
        v = np.asarray(v)
        if u.shape != v.shape or u.ndim != 1:
            raise ValueError(
                f"edge arrays must be aligned 1-d, got {u.shape} and {v.shape}"
            )
        if u.size == 0:
            return
        if not (
            np.issubdtype(u.dtype, np.integer)
            and np.issubdtype(v.dtype, np.integer)
        ):
            raise TypeError(
                f"edge arrays must be integer, got {u.dtype} and {v.dtype}"
            )
        u = u.astype(np.int64, copy=False)
        v = v.astype(np.int64, copy=False)
        self._ingest(u, v)

    def _flush_pending(self) -> None:
        if not self._pending_u:
            return
        u = np.asarray(self._pending_u, dtype=np.int64)
        v = np.asarray(self._pending_v, dtype=np.int64)
        self._pending_u = []
        self._pending_v = []
        self._ingest(u, v)

    def _ingest(self, u: np.ndarray, v: np.ndarray) -> None:
        if self._finalized:
            raise ValueError("writer already finalized")
        if (u == v).any():
            loop = int(u[(u == v).argmax()])
            raise EdgeError(f"self-loop on user {loop!r} is not allowed")
        n = self.num_users
        if u.size and (
            int(u.min()) < 0
            or int(v.min()) < 0
            or int(u.max()) >= n
            or int(v.max()) >= n
        ):
            raise NodeNotFoundError(
                int(np.concatenate([u[(u < 0) | (u >= n)], v[(v < 0) | (v >= n)]])[0])
            )
        self._degrees += np.bincount(u, minlength=n)
        self._degrees += np.bincount(v, minlength=n)
        self._num_edges += int(u.size)
        chunk_path = os.path.join(
            self._spill_dir, f"chunk-{len(self._chunks):06d}.npy"
        )
        np.save(chunk_path, np.stack([u, v], axis=1))
        self._chunks.append(chunk_path)

    # ------------------------------------------------------------------
    # finalize: external bucket sort -> artifact
    # ------------------------------------------------------------------
    def _bucket_starts(self, indptr: np.ndarray) -> np.ndarray:
        """Row-range bucket boundaries whose directed entries fit the
        budget (16 bytes per directed pair, sorted in memory)."""
        budget_entries = max(1, self.memory_budget_bytes // 16)
        starts = [0]
        taken = 0
        # Walk cumulative directed counts; a bucket closes when adding the
        # next row would cross the budget (single oversized rows stand alone).
        for row in range(self.num_users):
            row_entries = int(self._degrees[row])
            if taken and taken + row_entries > budget_entries:
                starts.append(row)
                taken = 0
            taken += row_entries
        return np.asarray(starts, dtype=np.int64)

    def finalize(
        self,
        *,
        directory: Optional[str] = None,
        path: Optional[str] = None,
        verify: bool = False,
    ) -> BigCSRGraph:
        """Sort, write, checksum, and atomically publish the artifact.

        Exactly one of ``directory`` (content-addressed placement:
        ``<directory>/<fingerprint>.bigcsr``) or ``path`` (explicit
        location) must be given.  If a content-addressed artifact for
        the same fingerprint already exists it is reused as-is.

        Returns the opened :class:`BigCSRGraph` (buffers mmap'd from the
        published location).

        Raises:
            GraphArtifactError: duplicate edges in the stream, or IO-level
                corruption detected while publishing.
        """
        if (directory is None) == (path is None):
            raise ValueError("pass exactly one of directory= or path=")
        if self._finalized:
            raise ValueError("writer already finalized")
        self._flush_pending()
        self._finalized = True

        from repro.cache.keys import GraphFingerprintHasher

        parent = directory if directory is not None else os.path.dirname(path) or "."
        os.makedirs(parent, exist_ok=True)
        tmp_dir = os.path.join(
            parent, f".bigcsr-tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        os.makedirs(tmp_dir)
        try:
            n = self.num_users
            indptr64 = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(self._degrees, out=indptr64[1:])
            nnz = int(indptr64[-1])
            idx_dtype = _index_dtype(n, nnz)

            np.save(os.path.join(tmp_dir, "indptr.npy"), indptr64.astype(idx_dtype))
            indices_mm = np.lib.format.open_memmap(
                os.path.join(tmp_dir, "indices.npy"),
                mode="w+",
                dtype=idx_dtype,
                shape=(nnz,),
            )
            hasher = GraphFingerprintHasher()
            hasher.add_int_users(n)
            self._scatter_and_sort(indptr64, indices_mm, hasher)
            indices_mm.flush()
            del indices_mm

            data_mm = np.lib.format.open_memmap(
                os.path.join(tmp_dir, "data.npy"),
                mode="w+",
                dtype=np.float64,
                shape=(nnz,),
            )
            for start in range(0, nnz, 4 * 2**20):
                data_mm[start : start + 4 * 2**20] = 1.0
            data_mm.flush()
            del data_mm

            fingerprint = hasher.hexdigest()
            meta = {
                "version": BIGCSR_FORMAT_VERSION,
                "kind": "bigcsr-graph",
                "num_users": n,
                "num_edges": self._num_edges,
                "nnz": nnz,
                "index_dtype": idx_dtype.name,
                "fingerprint": fingerprint,
                "files": {
                    name: _file_sha256(os.path.join(tmp_dir, name))
                    for name in _BUFFER_NAMES
                },
            }
            meta["checksum"] = _meta_checksum(meta)
            meta_path = os.path.join(tmp_dir, _META_NAME)
            with open(meta_path, "w", encoding="utf-8") as handle:
                json.dump(meta, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            for name in _BUFFER_NAMES:
                _fsync_file(os.path.join(tmp_dir, name))
            _fsync_dir(tmp_dir)

            final = (
                content_path(directory, fingerprint)
                if directory is not None
                else path
            )
            if os.path.isdir(final):
                # Content-addressed: an existing artifact with this name is
                # the same graph.  For an explicit path, the caller asked
                # to replace whatever was there.
                if directory is not None:
                    shutil.rmtree(tmp_dir)
                    return open_bigcsr(final, verify=verify)
                shutil.rmtree(final)
            os.rename(tmp_dir, final)
            _fsync_dir(parent)
            return open_bigcsr(final, verify=verify)
        finally:
            if os.path.isdir(tmp_dir):
                shutil.rmtree(tmp_dir, ignore_errors=True)
            self._cleanup_spill()

    def abort(self) -> None:
        """Drop spilled chunks without building (idempotent)."""
        self._finalized = True
        self._cleanup_spill()

    def _cleanup_spill(self) -> None:
        for chunk in self._chunks:
            try:
                os.remove(chunk)
            except OSError:
                pass
        self._chunks = []
        if self._own_spill and os.path.isdir(self._spill_dir):
            shutil.rmtree(self._spill_dir, ignore_errors=True)

    def _scatter_and_sort(
        self,
        indptr: np.ndarray,
        indices_out: np.ndarray,
        hasher,
    ) -> None:
        """Two-pass external sort: scatter directed pairs into row-range
        buckets, then sort each bucket and write its CSR slice."""
        starts = self._bucket_starts(indptr)
        num_buckets = len(starts)
        bounds = np.append(starts, self.num_users)

        if num_buckets <= 1:
            pairs = self._load_all_directed()
            self._emit_bucket(0, self.num_users, pairs, indptr, indices_out, hasher)
            return

        bucket_files = [
            open(os.path.join(self._spill_dir, f"bucket-{b:06d}.bin"), "wb")
            for b in range(num_buckets)
        ]
        try:
            for chunk_path in self._chunks:
                chunk = np.load(chunk_path)
                src = np.concatenate([chunk[:, 0], chunk[:, 1]])
                dst = np.concatenate([chunk[:, 1], chunk[:, 0]])
                which = np.searchsorted(bounds[1:], src, side="right")
                order = np.argsort(which, kind="stable")
                src, dst, which = src[order], dst[order], which[order]
                present, first = np.unique(which, return_index=True)
                cuts = np.append(first, src.size)
                for bucket, lo, hi in zip(present, cuts[:-1], cuts[1:]):
                    block = np.empty((hi - lo, 2), dtype=np.int64)
                    block[:, 0] = src[lo:hi]
                    block[:, 1] = dst[lo:hi]
                    block.tofile(bucket_files[bucket])
        finally:
            for handle in bucket_files:
                handle.close()

        for b in range(num_buckets):
            bucket_path = os.path.join(self._spill_dir, f"bucket-{b:06d}.bin")
            pairs = np.fromfile(bucket_path, dtype=np.int64).reshape(-1, 2)
            os.remove(bucket_path)
            self._emit_bucket(
                int(bounds[b]), int(bounds[b + 1]), pairs, indptr, indices_out, hasher
            )

    def _load_all_directed(self) -> np.ndarray:
        blocks = []
        for chunk_path in self._chunks:
            chunk = np.load(chunk_path)
            directed = np.empty((chunk.shape[0] * 2, 2), dtype=np.int64)
            directed[: chunk.shape[0], 0] = chunk[:, 0]
            directed[: chunk.shape[0], 1] = chunk[:, 1]
            directed[chunk.shape[0] :, 0] = chunk[:, 1]
            directed[chunk.shape[0] :, 1] = chunk[:, 0]
            blocks.append(directed)
        if not blocks:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(blocks)

    def _emit_bucket(
        self,
        row_start: int,
        row_stop: int,
        pairs: np.ndarray,
        indptr: np.ndarray,
        indices_out: np.ndarray,
        hasher,
    ) -> None:
        src = pairs[:, 0]
        dst = pairs[:, 1]
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        if src.size:
            dup = (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
            if dup.any():
                at = int(dup.argmax())
                raise GraphArtifactError(
                    f"duplicate edge ({int(src[at])}, {int(dst[at])}) in the "
                    f"streamed input; edges must be unique"
                )
        lo = int(indptr[row_start])
        hi = int(indptr[row_stop])
        if src.size != hi - lo:  # pragma: no cover - internal invariant
            raise GraphArtifactError(
                f"bucket rows [{row_start}, {row_stop}) expected {hi - lo} "
                f"entries, got {src.size}"
            )
        indices_out[lo:hi] = dst.astype(indices_out.dtype)
        forward = dst > src
        if forward.any():
            hasher.add_sorted_int_edges(src[forward], dst[forward])


# ----------------------------------------------------------------------
# conversion from the in-memory representation
# ----------------------------------------------------------------------
def bigcsr_from_social_graph(
    graph,
    *,
    directory: Optional[str] = None,
    path: Optional[str] = None,
    memory_budget_bytes: int = DEFAULT_BUILD_BUDGET_BYTES,
) -> BigCSRGraph:
    """Persist an in-memory ``SocialGraph`` as a BigCSR artifact.

    The graph's users must be exactly the contiguous ints
    ``0 .. num_users-1`` (the canonical form every synthetic generator
    produces); arbitrary identifiers have no canonical dense row mapping
    and must be relabelled by the caller first.

    Raises:
        ValueError: when the user set is not contiguous ints from 0.
    """
    n = graph.num_users
    users = graph.stable_user_order()
    if list(users) != list(range(n)):
        raise ValueError(
            "bigcsr_from_social_graph requires users to be exactly the "
            f"ints 0..{n - 1}; relabel the graph first"
        )
    writer = BigCSRWriter(n, memory_budget_bytes=memory_budget_bytes)
    try:
        for u, v in graph.edges():
            writer.add_edge(int(u), int(v))
        return writer.finalize(directory=directory, path=path)
    except BaseException:
        writer.abort()
        raise
