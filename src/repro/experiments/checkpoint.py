"""Checkpoint/resume for long experiment sweeps.

A Figure 1/2-style sweep is a grid of independent cells, each seeded
from the master seed alone — so a killed run loses nothing but time *if*
completed cells were persisted.  :class:`SweepCheckpoint` is that
persistence: an append-only JSON-lines file, one record per completed
cell, fsynced per append so a kill between cells never loses a finished
cell and never records a half-finished one.

Because every cell re-derives its RNG stream from ``(master seed, cell
key)`` and not from how many cells ran before it, a resumed sweep
produces results *identical* to an uninterrupted run — the property the
resume tests assert.

Usage::

    cells = run_tradeoff(dataset, measures, checkpoint="sweep.jsonl", ...)
    # kill it partway; re-running the same call completes the grid,
    # recomputing nothing that already finished.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, Iterable, Optional, Tuple

from repro.exceptions import ExperimentError
from repro.obs.registry import incr

__all__ = ["SweepCheckpoint", "encode_epsilon", "decode_epsilon", "fsync_directory"]


def fsync_directory(path: str) -> None:
    """Fsync a directory so a freshly-created entry survives power loss.

    Filesystems that do not support opening directories (or fsyncing
    them) are tolerated silently — durability degrades to the platform's
    guarantee, which is the pre-existing behaviour.
    """
    try:
        fd = os.open(path if path else ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def encode_epsilon(epsilon: float) -> str:
    """JSON-safe epsilon label (``math.inf`` round-trips as ``"inf"``)."""
    return "inf" if math.isinf(epsilon) else repr(float(epsilon))


def decode_epsilon(label: str) -> float:
    return math.inf if label == "inf" else float(label)


class SweepCheckpoint:
    """Append-only cell store for resumable sweeps.

    Args:
        path: the JSON-lines file; created on first record.  Existing
            records are loaded eagerly, so construction doubles as
            resume.

    Raises:
        ExperimentError: for an unreadable or syntactically broken
            checkpoint file (a truncated final line — the signature of a
            kill mid-append — is tolerated and dropped).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._cells: Dict[Tuple[str, ...], dict] = {}
        #: duplicate cell keys seen while loading (last record wins; the
        #: count is also published as ``checkpoint.duplicate_cells``).
        self.duplicate_cells = 0
        self._load()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            raise ExperimentError(
                f"cannot read checkpoint {self.path!r}: {exc}"
            ) from exc
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key = tuple(record["key"])
                payload = record["payload"]
            except (ValueError, KeyError, TypeError) as exc:
                if index == len(lines) - 1:
                    # A torn final line is exactly what a kill mid-append
                    # leaves behind; the cell simply reruns.
                    continue
                raise ExperimentError(
                    f"checkpoint {self.path!r} line {index + 1} is corrupt: {exc}"
                ) from exc
            if key in self._cells:
                # Concurrent workers can legitimately both finish a cell
                # (lease reclaim race); the records are bit-identical, but
                # a duplicate is still worth surfacing to telemetry.
                incr("checkpoint.duplicate_cells")
                self.duplicate_cells += 1
            self._cells[key] = payload

    def record(self, key: Iterable[str], payload: dict) -> None:
        """Durably append one completed cell.

        The record is flushed and fsynced; on the append that *creates*
        the file the parent directory is fsynced too, so a brand-new
        checkpoint cannot vanish wholesale on power loss (an fsynced file
        whose directory entry was never persisted is gone just the same).
        """
        key = tuple(str(part) for part in key)
        line = json.dumps({"key": list(key), "payload": payload})
        created = not os.path.exists(self.path)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if created:
            fsync_directory(os.path.dirname(os.path.abspath(self.path)))
        self._cells[key] = payload

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, key: Iterable[str]) -> Optional[dict]:
        """The stored payload for ``key``, or None if not yet completed."""
        return self._cells.get(tuple(str(part) for part in key))

    def __contains__(self, key: Iterable[str]) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self._cells)

    def clear(self) -> None:
        """Delete the checkpoint file and forget all cells."""
        self._cells.clear()
        if os.path.exists(self.path):
            os.remove(self.path)
