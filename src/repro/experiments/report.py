"""One-shot reproduction report: every table and figure in one run.

:func:`generate_report` executes the Table 1 summary, the Figure 1/2
trade-off sweeps, the Figure 3 degree analysis, and the Figure 4 mechanism
comparison on the two synthetic stand-ins, and renders everything as a
single markdown document.  The CLI exposes it as ``repro report``.

This is the programmatic twin of running the whole ``benchmarks/`` suite
with ``-s``; it exists so a downstream user can regenerate the
EXPERIMENTS.md evidence with one command and a choice of scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.datasets.dataset import SocialRecDataset
from repro.datasets.stats import dataset_stats, format_stats_table
from repro.datasets.synthetic import SyntheticDatasetSpec
from repro.experiments.comparison import format_comparison_table, run_comparison
from repro.experiments.degree_effect import run_degree_effect
from repro.experiments.tradeoff import format_tradeoff_table, run_tradeoff
from repro.similarity.adamic_adar import AdamicAdar
from repro.similarity.common_neighbors import CommonNeighbors
from repro.similarity.graph_distance import GraphDistance
from repro.similarity.katz import Katz

__all__ = ["ReportConfig", "generate_report"]


@dataclass(frozen=True)
class ReportConfig:
    """Knobs for the one-shot reproduction report.

    Attributes:
        lastfm_scale / flixster_scale: synthetic dataset sizes.
        epsilons: the privacy sweep (Figures 1/2).
        ns: recommendation-list lengths (Figures 1/2).
        repeats: noise draws per cell.
        flixster_sample: evaluation-user sample on the denser dataset.
        seed: master seed.
    """

    lastfm_scale: float = 0.15
    flixster_scale: float = 0.008
    epsilons: Sequence[float] = (math.inf, 1.0, 0.6, 0.1, 0.05, 0.01)
    ns: Sequence[int] = (10, 50)
    repeats: int = 3
    flixster_sample: Optional[int] = 250
    seed: int = 0


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def _epsilon_label(value: float) -> str:
    return "inf" if math.isinf(value) else f"{value:g}"


def _figure_section(
    dataset: SocialRecDataset,
    config: ReportConfig,
    sample: Optional[int],
    title: str,
) -> str:
    from repro.experiments.ascii_plot import line_chart

    measures = [AdamicAdar(), CommonNeighbors(), GraphDistance(), Katz()]
    cells = run_tradeoff(
        dataset,
        measures=measures,
        epsilons=config.epsilons,
        ns=config.ns,
        repeats=config.repeats,
        sample_size=sample,
        seed=config.seed,
    )
    tables = "\n\n".join(format_tradeoff_table(cells, n) for n in config.ns)
    # ASCII rendering of the figure's line chart at the middle N.
    chart_n = config.ns[min(1, len(config.ns) - 1)]
    by_measure = {}
    for measure in measures:
        by_measure[measure.name] = [
            next(
                c.ndcg_mean
                for c in cells
                if c.measure == measure.name and c.epsilon == e and c.n == chart_n
            )
            for e in config.epsilons
        ]
    chart = line_chart(
        by_measure, [_epsilon_label(e) for e in config.epsilons]
    )
    return _section(title, f"{tables}\n\nNDCG@{chart_n} vs epsilon:\n{chart}")


def generate_report(config: ReportConfig = ReportConfig()) -> str:
    """Run the full evaluation and return it as a markdown document."""
    lastfm = SyntheticDatasetSpec.lastfm_like(scale=config.lastfm_scale).generate(
        seed=config.seed + 1001
    )
    flixster = SyntheticDatasetSpec.flixster_like(
        scale=config.flixster_scale
    ).generate(seed=config.seed + 1002)

    parts: List[str] = [
        "# Reproduction report\n",
        "Privacy-Preserving Framework for Personalized, Social "
        "Recommendations (EDBT 2014) — synthetic stand-in datasets; see "
        "DESIGN.md §4 for the substitution argument.\n",
    ]

    # Table 1.
    parts.append(
        _section(
            "Table 1: dataset summary",
            format_stats_table([dataset_stats(lastfm), dataset_stats(flixster)]),
        )
    )

    # Figures 1 and 2.
    parts.append(
        _figure_section(
            lastfm, config, None, "Figure 1: NDCG@N vs epsilon (Last.fm-like)"
        )
    )
    parts.append(
        _figure_section(
            flixster,
            config,
            config.flixster_sample,
            "Figure 2: NDCG@N vs epsilon (Flixster-like)",
        )
    )

    # Figure 3.
    lines = []
    for name, dataset, sample in (
        ("Last.fm-like", lastfm, None),
        ("Flixster-like", flixster, config.flixster_sample),
    ):
        result = run_degree_effect(
            dataset,
            CommonNeighbors(),
            n=50,
            sample_size=sample,
            seed=config.seed,
        )
        lines.append(
            f"{name}: NDCG@50 at eps=inf — degree <= 10: "
            f"{result.low_degree_mean:.3f}, degree > 10: "
            f"{result.high_degree_mean:.3f}"
        )
    parts.append(_section("Figure 3: degree vs accuracy (eps = inf, CN)",
                          "\n".join(lines)))

    # Figure 4.
    comparison = run_comparison(
        lastfm,
        measures=[CommonNeighbors()],
        epsilons=(1.0, 0.1),
        n=50,
        repeats=config.repeats,
        seed=config.seed,
    )
    parts.append(
        _section(
            "Figure 4: mechanism comparison (Last.fm-like)",
            format_comparison_table(comparison),
        )
    )
    return "\n".join(parts)
