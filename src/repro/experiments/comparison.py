"""The mechanism comparison of paper Figure 4.

Scores the cluster-based framework against the four alternatives — NOU,
NOE (Section 5.1.1), LRM and GS (Section 6.4) — at the paper's settings
(epsilon in {1.0, 0.1}, N = 50), for each similarity measure.  The
expected shape: cluster framework >> NOE > {GS, LRM} > NOU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cache.store import SimilarityStore
from repro.community.clustering import Clustering
from repro.competitors.gs import GroupAndSmooth
from repro.competitors.lrm import LowRankMechanism
from repro.core.baselines import NoiseOnEdges, NoiseOnUtility
from repro.core.private import PrivateSocialRecommender, louvain_strategy
from repro.datasets.dataset import SocialRecDataset
from repro.exceptions import ExperimentError
from repro.experiments.engine import SweepEngine, validate_engine
from repro.experiments.evaluation import EvaluationContext, evaluate_factory
from repro.graph.social_graph import SocialGraph
from repro.similarity.base import SimilarityMeasure

__all__ = ["ComparisonCell", "run_comparison", "MECHANISM_NAMES"]

MECHANISM_NAMES = ("cluster", "noe", "nou", "lrm", "gs")


@dataclass(frozen=True)
class ComparisonCell:
    """One bar of Figure 4: a (mechanism, measure, epsilon) NDCG score."""

    dataset: str
    mechanism: str
    measure: str
    epsilon: float
    n: int
    ndcg_mean: float
    ndcg_std: float


def _mechanism_factory(
    name: str,
    measure: SimilarityMeasure,
    epsilon: float,
    n: int,
    clustering: Clustering,
    gs_group_size: int,
):
    """A repeat-seed -> unfitted-recommender factory for one mechanism."""

    def fixed_clustering(_graph: SocialGraph) -> Clustering:
        return clustering

    if name == "cluster":
        return lambda seed: PrivateSocialRecommender(
            measure, epsilon=epsilon, n=n,
            clustering_strategy=fixed_clustering, seed=seed,
        )
    if name == "noe":
        return lambda seed: NoiseOnEdges(measure, epsilon=epsilon, n=n, seed=seed)
    if name == "nou":
        return lambda seed: NoiseOnUtility(measure, epsilon=epsilon, n=n, seed=seed)
    if name == "lrm":
        return lambda seed: LowRankMechanism(measure, epsilon=epsilon, n=n, seed=seed)
    if name == "gs":
        return lambda seed: GroupAndSmooth(
            measure, epsilon=epsilon, n=n, group_size=gs_group_size, seed=seed
        )
    raise ExperimentError(
        f"unknown mechanism {name!r}; choose from {MECHANISM_NAMES}"
    )


def run_comparison(
    dataset: SocialRecDataset,
    measures: Sequence[SimilarityMeasure],
    epsilons: Sequence[float] = (1.0, 0.1),
    n: int = 50,
    mechanisms: Sequence[str] = MECHANISM_NAMES,
    repeats: int = 5,
    sample_size: Optional[int] = None,
    gs_group_size: int = 8,
    louvain_runs: int = 10,
    seed: int = 0,
    engine: str = "vectorized",
    store: Optional[SimilarityStore] = None,
    backend: str = "auto",
) -> List[ComparisonCell]:
    """Run the Figure 4 comparison on one dataset.

    Args:
        dataset: the evaluation dataset (the paper uses Last.fm here).
        measures: similarity measures to test.
        epsilons: privacy settings (paper: 1.0 and 0.1).
        n: NDCG cutoff (paper: 50).
        mechanisms: which mechanisms to include.
        repeats: independent noise draws per cell.
        sample_size: optional evaluation-user sample.
        gs_group_size: the m parameter for GS (the paper tuned it per
            dataset; see :func:`repro.competitors.gs.select_group_size`).
        louvain_runs: restarts for the cluster framework's clustering.
        seed: master seed.
        engine: ``"vectorized"`` (default) scores the ``cluster``
            mechanism's cells with the batched sweep engine (the other
            mechanisms have no batched factorisation and always take the
            reference path); ``"reference"`` scores everything per user.
        store: optional persistent similarity cache (vectorized engine).
        backend: kernel construction backend (vectorized engine).
    """
    validate_engine(engine)
    if not measures:
        raise ExperimentError("measures must be non-empty")
    clustering = louvain_strategy(runs=louvain_runs, seed=seed)(dataset.social)
    sweep_engine: Optional[SweepEngine] = None
    if engine == "vectorized" and "cluster" in mechanisms:
        sweep_engine = SweepEngine(dataset, store=store, backend=backend)
    cells: List[ComparisonCell] = []
    try:
        for measure in measures:
            context = EvaluationContext.build(
                dataset, measure, max_n=n, sample_size=sample_size, seed=seed
            )
            for mechanism in mechanisms:
                for epsilon in epsilons:
                    factory = _mechanism_factory(
                        mechanism, measure, epsilon, n, clustering, gs_group_size
                    )
                    scored = None
                    if sweep_engine is not None and mechanism == "cluster":
                        scored = sweep_engine.evaluate(
                            context,
                            clustering,
                            epsilon,
                            [n],
                            repeats,
                            base_seed=seed * 1000 + 7,
                        ).get(n)
                    if scored is not None:
                        mean, std = scored
                    else:
                        mean, std = evaluate_factory(
                            context,
                            factory,
                            n,
                            repeats=repeats,
                            base_seed=seed * 1000 + 7,
                        )
                    cells.append(
                        ComparisonCell(
                            dataset=dataset.name,
                            mechanism=mechanism,
                            measure=measure.name,
                            epsilon=epsilon,
                            n=n,
                            ndcg_mean=mean,
                            ndcg_std=std,
                        )
                    )
    finally:
        if sweep_engine is not None:
            sweep_engine.close()
    return cells


def format_comparison_table(cells: Sequence[ComparisonCell]) -> str:
    """Render the comparison as a text table: mechanisms x (measure, eps)."""
    if not cells:
        raise ExperimentError("no comparison cells to format")
    mechanisms = []
    for c in cells:
        if c.mechanism not in mechanisms:
            mechanisms.append(c.mechanism)
    columns = sorted({(c.measure, c.epsilon) for c in cells})
    by_key: Dict[tuple, ComparisonCell] = {
        (c.mechanism, c.measure, c.epsilon): c for c in cells
    }
    header = ["mechanism"] + [f"{m.upper()}@eps={e:g}" for m, e in columns]
    rows = [header]
    for mech in mechanisms:
        row = [mech]
        for m, e in columns:
            cell = by_key.get((mech, m, e))
            row.append("-" if cell is None else f"{cell.ndcg_mean:.3f}")
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    ]
    return "\n".join([f"NDCG@{cells[0].n} mechanism comparison "
                      f"({cells[0].dataset})", *lines])
