"""Ablations of the framework's design choices (DESIGN.md Section 6).

1. :func:`run_clustering_ablation` — replace Louvain with the alternative
   strategies (random-k, singleton, single-cluster, degree buckets, label
   propagation) and measure the NDCG impact at fixed epsilon.  This
   isolates the paper's central hypothesis: *community* structure, not
   clustering per se, balances approximation and perturbation error.
2. :func:`run_error_decomposition` — measure the Eq. 5/6 error components
   per clustering, showing the perturbation/approximation trade directly.
3. :func:`run_refinement_ablation` — Louvain with vs without multi-level
   refinement: modularity and stability across restarts.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.community.clustering import Clustering
from repro.community.label_propagation import label_propagation_clustering
from repro.community.louvain import louvain
from repro.community.modularity import modularity
from repro.community.strategies import (
    degree_bucket_clustering,
    random_clustering,
    single_cluster_clustering,
    singleton_clustering,
)
from repro.core.private import PrivateSocialRecommender, louvain_strategy
from repro.datasets.dataset import SocialRecDataset
from repro.exceptions import ExperimentError
from repro.experiments.engine import SweepEngine, validate_engine
from repro.experiments.evaluation import EvaluationContext, evaluate_factory
from repro.graph.social_graph import SocialGraph
from repro.metrics.errors import approximation_error, expected_perturbation_error
from repro.similarity.base import SimilarityCache, SimilarityMeasure

__all__ = [
    "ClusteringAblationCell",
    "run_clustering_ablation",
    "ErrorDecompositionRow",
    "run_error_decomposition",
    "RefinementAblationResult",
    "run_refinement_ablation",
    "build_strategy_clusterings",
]


def build_strategy_clusterings(
    social: SocialGraph,
    num_random_clusters: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, Clustering]:
    """All ablation clusterings for one social graph, keyed by name.

    The random and degree-bucket strategies use the Louvain cluster count
    so every strategy is compared at (roughly) the same granularity.
    """
    rng = np.random.default_rng(np.random.SeedSequence((seed, 31)))
    users = social.users()
    if not users:
        raise ExperimentError("cannot build clusterings for an empty graph")
    louvain_clustering = louvain_strategy(runs=10, seed=seed)(social)
    k = (
        num_random_clusters
        if num_random_clusters is not None
        else max(1, louvain_clustering.num_clusters)
    )
    return {
        "louvain": louvain_clustering,
        "label-propagation": label_propagation_clustering(social, rng=rng),
        "random-k": random_clustering(users, min(k, len(users)), rng=rng),
        "degree-buckets": degree_bucket_clustering(social, min(k, len(users))),
        "single-cluster": single_cluster_clustering(users),
        "singleton": singleton_clustering(users),
    }


@dataclass(frozen=True)
class ClusteringAblationCell:
    """NDCG of the framework under one alternative clustering."""

    dataset: str
    strategy: str
    measure: str
    epsilon: float
    n: int
    ndcg_mean: float
    ndcg_std: float
    num_clusters: int
    modularity: float


def run_clustering_ablation(
    dataset: SocialRecDataset,
    measure: SimilarityMeasure,
    epsilon: float = 0.1,
    n: int = 50,
    repeats: int = 5,
    sample_size: Optional[int] = None,
    strategies: Optional[Dict[str, Clustering]] = None,
    seed: int = 0,
    engine: str = "vectorized",
    backend: str = "auto",
) -> List[ClusteringAblationCell]:
    """Compare clustering strategies at fixed epsilon (ablation 1).

    With ``engine="vectorized"`` (default) one
    :class:`~repro.experiments.engine.SweepEngine` scores every strategy:
    the similarity kernel and reference arrays are built once and only
    the per-strategy cluster release changes.  ``engine="reference"``
    refits the recommender per (strategy, repeat); the numbers match.
    """
    validate_engine(engine)
    if strategies is None:
        strategies = build_strategy_clusterings(dataset.social, seed=seed)
    context = EvaluationContext.build(
        dataset, measure, max_n=n, sample_size=sample_size, seed=seed
    )
    sweep_engine: Optional[SweepEngine] = None
    if engine == "vectorized":
        sweep_engine = SweepEngine(dataset, backend=backend)
    cells: List[ClusteringAblationCell] = []
    try:
        for name, clustering in strategies.items():

            def fixed(_graph: SocialGraph, c=clustering) -> Clustering:
                return c

            factory = lambda s, c=fixed: PrivateSocialRecommender(  # noqa: E731
                measure, epsilon=epsilon, n=n, clustering_strategy=c, seed=s
            )
            scored = None
            if sweep_engine is not None:
                scored = sweep_engine.evaluate(
                    context,
                    clustering,
                    epsilon,
                    [n],
                    repeats,
                    base_seed=seed * 1000 + 13,
                ).get(n)
            if scored is not None:
                mean, std = scored
            else:
                mean, std = evaluate_factory(
                    context, factory, n, repeats=repeats, base_seed=seed * 1000 + 13
                )
            cells.append(
                ClusteringAblationCell(
                    dataset=dataset.name,
                    strategy=name,
                    measure=measure.name,
                    epsilon=epsilon,
                    n=n,
                    ndcg_mean=mean,
                    ndcg_std=std,
                    num_clusters=clustering.num_clusters,
                    modularity=modularity(dataset.social, clustering),
                )
            )
    finally:
        if sweep_engine is not None:
            sweep_engine.close()
    return cells


@dataclass(frozen=True)
class ErrorDecompositionRow:
    """Average Eq. 5/6 error components under one clustering."""

    strategy: str
    epsilon: float
    mean_abs_approximation: float
    mean_expected_perturbation: float
    num_clusters: int


def run_error_decomposition(
    dataset: SocialRecDataset,
    measure: SimilarityMeasure,
    epsilon: float = 0.1,
    max_users: int = 50,
    max_items: int = 20,
    strategies: Optional[Dict[str, Clustering]] = None,
    seed: int = 0,
) -> List[ErrorDecompositionRow]:
    """Measure approximation vs perturbation error per clustering (ablation 2).

    Errors are averaged over a deterministic sample of (user, item) pairs;
    items are sampled among each user's non-trivial candidates so the
    approximation error is measured where it matters.
    """
    if strategies is None:
        strategies = build_strategy_clusterings(dataset.social, seed=seed)
    rng = np.random.default_rng(np.random.SeedSequence((seed, 37)))
    cache = SimilarityCache(measure, dataset.social)
    users = dataset.social.users()
    if len(users) > max_users:
        chosen = rng.choice(len(users), size=max_users, replace=False)
        users = [users[int(i)] for i in sorted(chosen)]
    items = dataset.preferences.items()
    if len(items) > max_items:
        chosen = rng.choice(len(items), size=max_items, replace=False)
        items = [items[int(i)] for i in sorted(chosen)]

    rows: List[ErrorDecompositionRow] = []
    for name, clustering in strategies.items():
        approx: List[float] = []
        perturb: List[float] = []
        for user in users:
            row = cache.row(user)
            if not row:
                continue
            perturb.append(expected_perturbation_error(row, clustering, epsilon))
            for item in items:
                approx.append(
                    abs(
                        approximation_error(
                            row, dataset.preferences, clustering, item
                        )
                    )
                )
        rows.append(
            ErrorDecompositionRow(
                strategy=name,
                epsilon=epsilon,
                mean_abs_approximation=(
                    statistics.fmean(approx) if approx else 0.0
                ),
                mean_expected_perturbation=(
                    statistics.fmean(perturb) if perturb else 0.0
                ),
                num_clusters=clustering.num_clusters,
            )
        )
    return rows


@dataclass(frozen=True)
class RefinementAblationResult:
    """Louvain with vs without multi-level refinement (ablation 3)."""

    refined_mean_modularity: float
    refined_std_modularity: float
    unrefined_mean_modularity: float
    unrefined_std_modularity: float
    runs: int


def run_refinement_ablation(
    social: SocialGraph, runs: int = 10, seed: int = 0
) -> RefinementAblationResult:
    """Compare modularity mean/std across restarts with refinement on/off."""
    if runs < 2:
        raise ExperimentError(f"runs must be >= 2, got {runs}")
    seeds = np.random.SeedSequence((seed, 41)).spawn(runs)
    refined = [
        louvain(social, rng=np.random.default_rng(s), refine=True).modularity
        for s in seeds
    ]
    unrefined = [
        louvain(social, rng=np.random.default_rng(s), refine=False).modularity
        for s in seeds
    ]
    return RefinementAblationResult(
        refined_mean_modularity=statistics.fmean(refined),
        refined_std_modularity=statistics.pstdev(refined),
        unrefined_mean_modularity=statistics.fmean(unrefined),
        unrefined_std_modularity=statistics.pstdev(unrefined),
        runs=runs,
    )
