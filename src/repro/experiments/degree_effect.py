"""The degree-vs-accuracy analysis of paper Figure 3.

At ``epsilon = inf`` the private recommender's only error source is the
approximation error of cluster averaging.  The paper shows that this error
concentrates on *low-degree* users: their similarity sets are small
fractions of the clusters containing them, so non-similar cluster members
dominate their utility estimates.  The driver reproduces the scatter
(per-user degree vs NDCG@50) and the paper's headline split at degree 10.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache.store import SimilarityStore
from repro.community.clustering import Clustering
from repro.core.private import PrivateSocialRecommender, louvain_strategy
from repro.datasets.dataset import SocialRecDataset
from repro.experiments.engine import SweepEngine, validate_engine
from repro.experiments.evaluation import EvaluationContext
from repro.graph.social_graph import SocialGraph
from repro.similarity.base import SimilarityMeasure
from repro.types import UserId

__all__ = ["DegreeEffectResult", "run_degree_effect"]


@dataclass(frozen=True)
class DegreeEffectResult:
    """Per-user degree/NDCG pairs plus the paper's degree-10 split.

    Attributes:
        dataset: dataset label.
        measure: similarity measure name.
        n: NDCG cutoff (the paper uses 50).
        points: ``(user, degree, ndcg)`` per evaluation user.
        low_degree_mean: mean NDCG of users with degree <= threshold.
        high_degree_mean: mean NDCG of users with degree > threshold.
        threshold: the degree split (paper: 10).
    """

    dataset: str
    measure: str
    n: int
    points: Tuple[Tuple[UserId, int, float], ...]
    low_degree_mean: float
    high_degree_mean: float
    threshold: int


def run_degree_effect(
    dataset: SocialRecDataset,
    measure: SimilarityMeasure,
    n: int = 50,
    threshold: int = 10,
    sample_size: Optional[int] = None,
    clustering: Optional[Clustering] = None,
    louvain_runs: int = 10,
    seed: int = 0,
    engine: str = "vectorized",
    store: Optional[SimilarityStore] = None,
    backend: str = "auto",
) -> DegreeEffectResult:
    """Run the Figure 3 analysis: approximation error only (eps = inf).

    Args:
        dataset: the evaluation dataset.
        measure: similarity measure (the paper shows CN).
        n: NDCG cutoff.
        threshold: degree split for the summary means.
        sample_size: optional evaluation-user sample.
        clustering: reuse a precomputed clustering.
        louvain_runs: restarts for the default clustering protocol.
        seed: master seed.
        engine: ``"vectorized"`` (default) scores every user in one
            batched pass; ``"reference"`` fits the recommender and ranks
            per user.  Identical per-user scores either way.
        store: optional persistent similarity cache (vectorized engine).
        backend: kernel construction backend (vectorized engine).
    """
    validate_engine(engine)
    if clustering is None:
        clustering = louvain_strategy(runs=louvain_runs, seed=seed)(dataset.social)

    def fixed_clustering(_graph: SocialGraph) -> Clustering:
        return clustering

    context = EvaluationContext.build(
        dataset, measure, max_n=n, sample_size=sample_size, seed=seed
    )
    per_user: Optional[Dict[UserId, float]] = None
    if engine == "vectorized":
        sweep_engine = SweepEngine(dataset, store=store, backend=backend)
        try:
            per_user = sweep_engine.per_user_scores(
                context, clustering, math.inf, seed, n
            )
        except Exception:
            # Anything that breaks the batched path degrades to the
            # reference per-user loop below — same scores, slower.
            per_user = None
        finally:
            sweep_engine.close()
    if per_user is None:
        recommender = PrivateSocialRecommender(
            measure,
            epsilon=math.inf,
            n=n,
            clustering_strategy=fixed_clustering,
            seed=seed,
        )
        recommender.fit(dataset.social, dataset.preferences)
        rankings = {
            u: recommender.recommend(u, n=n).item_ids() for u in context.users
        }
        per_user = context.per_user_ndcg_of_rankings(rankings, n)

    points: List[Tuple[UserId, int, float]] = []
    low: List[float] = []
    high: List[float] = []
    for user in context.users:
        degree = dataset.social.degree(user)
        score = per_user[user]
        points.append((user, degree, score))
        (low if degree <= threshold else high).append(score)
    return DegreeEffectResult(
        dataset=dataset.name,
        measure=measure.name,
        n=n,
        points=tuple(points),
        low_degree_mean=statistics.fmean(low) if low else float("nan"),
        high_degree_mean=statistics.fmean(high) if high else float("nan"),
        threshold=threshold,
    )
