"""The privacy–accuracy trade-off sweep (paper Figures 1 and 2).

For every (similarity measure, epsilon, N) combination the driver scores
the cluster-based private recommender against the non-private reference,
averaged over repeated noise draws.  Epsilon = inf isolates the
approximation error, exactly as in the leftmost points of the paper's
figures.

Two sweep engines produce identical numbers: ``engine="vectorized"`` (the
default) factors the whole sweep onto the batch kernel via
:class:`~repro.experiments.engine.SweepEngine` — one kernel, one cluster
release, and one reference pass per measure, then one noise tensor + one
matmul per repeat; ``engine="reference"`` is the original per-user
``evaluate_factory`` loop.  Checkpoint keys and cell values do not depend
on the engine, so a sweep checkpointed under one engine resumes under the
other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cache.store import SimilarityStore
from repro.community.clustering import Clustering
from repro.core.private import PrivateSocialRecommender, louvain_strategy
from repro.datasets.dataset import SocialRecDataset
from repro.exceptions import ExperimentError
from repro.experiments.checkpoint import SweepCheckpoint, encode_epsilon
from repro.experiments.engine import EngineStats, SweepEngine, validate_engine
from repro.experiments.evaluation import EvaluationContext, evaluate_factory
from repro.graph.social_graph import SocialGraph
from repro.resilience.faults import fault_point
from repro.similarity.base import SimilarityMeasure

__all__ = [
    "TradeoffCell",
    "TradeoffResult",
    "cell_key",
    "run_tradeoff",
    "format_tradeoff_table",
]


@dataclass(frozen=True)
class TradeoffCell:
    """One point of Figure 1/2: a (measure, epsilon, N) NDCG score.

    Attributes:
        dataset: dataset label.
        measure: similarity measure name.
        epsilon: privacy parameter (``math.inf`` = approximation error only).
        n: recommendation-list length.
        ndcg_mean / ndcg_std: across the repeated noise draws.
    """

    dataset: str
    measure: str
    epsilon: float
    n: int
    ndcg_mean: float
    ndcg_std: float


def cell_key(
    dataset_name: str,
    measure_name: str,
    epsilon: float,
    n: int,
    repeats: int,
    seed: int,
    sample_size: Optional[int],
) -> tuple:
    """Checkpoint identity of one sweep cell.

    Includes every input that changes the cell's value, so a checkpoint
    written by one configuration is never silently reused by another.
    Public because the distributed sweep layer (:mod:`repro.dist`) uses
    the same keys to decide which cells a shared checkpoint already
    covers.
    """
    return (
        "tradeoff",
        dataset_name,
        measure_name,
        encode_epsilon(epsilon),
        str(n),
        str(repeats),
        str(seed),
        str(sample_size),
    )


def _cell_key(
    dataset: SocialRecDataset,
    measure: SimilarityMeasure,
    epsilon: float,
    n: int,
    repeats: int,
    seed: int,
    sample_size: Optional[int],
) -> tuple:
    return cell_key(
        dataset.name, measure.name, epsilon, n, repeats, seed, sample_size
    )


class TradeoffResult(List[TradeoffCell]):
    """A list of :class:`TradeoffCell` with a ``stats`` attribute.

    Behaves exactly like the plain list previous versions returned;
    ``stats`` carries the vectorized engine's
    :class:`~repro.experiments.engine.EngineStats` counters (None when the
    reference engine ran).
    """

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.stats: Optional[EngineStats] = None


def run_tradeoff(
    dataset: SocialRecDataset,
    measures: Sequence[SimilarityMeasure],
    epsilons: Sequence[float] = (math.inf, 1.0, 0.6, 0.1, 0.05, 0.01),
    ns: Sequence[int] = (10, 50, 100),
    repeats: int = 10,
    sample_size: Optional[int] = None,
    clustering: Optional[Clustering] = None,
    louvain_runs: int = 10,
    seed: int = 0,
    checkpoint: Optional[Union[str, SweepCheckpoint]] = None,
    engine: str = "vectorized",
    workers: Optional[int] = None,
    store: Optional[SimilarityStore] = None,
    backend: str = "auto",
) -> TradeoffResult:
    """Run the Figure 1/2 sweep on one dataset.

    Args:
        dataset: the evaluation dataset.
        measures: similarity measures to instantiate the framework with
            (the paper uses AA, CN, GD, KZ).
        epsilons: privacy settings, including ``math.inf``.
        ns: recommendation-list lengths.
        repeats: independent noise draws per cell (paper: 10).
        sample_size: evaluate a random user subset (paper: 10K on Flixster).
        clustering: reuse a precomputed clustering; by default the paper's
            best-of-``louvain_runs`` Louvain protocol runs once and is
            shared across all cells (the clustering is data-independent of
            epsilon and the measure).
        louvain_runs: restarts for the default clustering protocol.
        seed: master seed.
        checkpoint: a :class:`SweepCheckpoint` (or a path to one) making
            the sweep resumable: completed cells are durably appended and
            skipped on rerun.  Each cell's noise streams derive from the
            master seed alone, so a resumed sweep is bit-identical to an
            uninterrupted one.
        engine: ``"vectorized"`` (default) scores cells with the batched
            :class:`~repro.experiments.engine.SweepEngine`;
            ``"reference"`` keeps the original per-user loop.  Both
            produce the same numbers and checkpoint keys.
        workers: with ``workers >= 2`` the vectorized engine fans epsilon
            cells out over a process pool (ignored by the reference
            engine).
        store: optional persistent similarity cache for the vectorized
            engine's kernels.
        backend: kernel construction backend for the vectorized engine
            (``auto | vectorized | python``).

    Returns:
        A :class:`TradeoffResult` — one :class:`TradeoffCell` per
        (measure, epsilon, n), engine counters on ``.stats``.
    """
    validate_engine(engine)
    if not measures:
        raise ExperimentError("measures must be non-empty")
    if not epsilons or not ns:
        raise ExperimentError("epsilons and ns must be non-empty")
    if isinstance(checkpoint, str):
        checkpoint = SweepCheckpoint(checkpoint)

    def cached(measure, epsilon, n):
        if checkpoint is None:
            return None
        return checkpoint.get(
            _cell_key(dataset, measure, epsilon, n, repeats, seed, sample_size)
        )

    # The expensive shared preprocessing (Louvain, reference rankings) is
    # skipped entirely when the checkpoint already covers the cells that
    # need it — a fully-checkpointed rerun costs only file reads.
    if clustering is None and not all(
        cached(m, e, n) is not None for m in measures for e in epsilons for n in ns
    ):
        clustering = louvain_strategy(runs=louvain_runs, seed=seed)(dataset.social)

    def fixed_clustering(_graph: SocialGraph) -> Clustering:
        return clustering

    sweep_engine: Optional[SweepEngine] = None
    if engine == "vectorized":
        sweep_engine = SweepEngine(
            dataset, store=store, workers=workers, backend=backend
        )

    max_n = max(ns)
    cells = TradeoffResult()
    if sweep_engine is not None:
        cells.stats = sweep_engine.stats
    try:
        for measure in measures:
            context: Optional[EvaluationContext] = None
            if any(cached(measure, e, n) is None for e in epsilons for n in ns):
                context = EvaluationContext.build(
                    dataset, measure, max_n=max_n, sample_size=sample_size, seed=seed
                )
            # The vectorized engine scores every uncached (epsilon, n) of
            # this measure in one batch; cells it abandons (or everything,
            # under engine="reference") fall through to the per-user path.
            engine_results: Dict[Tuple[float, int], Tuple[float, float]] = {}
            if sweep_engine is not None and context is not None:
                cell_specs = []
                for epsilon in epsilons:
                    needed = tuple(
                        n for n in ns if cached(measure, epsilon, n) is None
                    )
                    if needed:
                        cell_specs.append(
                            (
                                epsilon,
                                needed,
                                1 if math.isinf(epsilon) else repeats,
                            )
                        )
                if cell_specs:
                    engine_results = sweep_engine.evaluate_many(
                        context,
                        clustering,
                        cell_specs,
                        base_seed=seed * 1000 + 1,
                    )
            for epsilon in epsilons:
                factory: Callable[[int], PrivateSocialRecommender] = (
                    lambda repeat_seed, m=measure, e=epsilon: PrivateSocialRecommender(
                        m,
                        epsilon=e,
                        n=max_n,
                        clustering_strategy=fixed_clustering,
                        seed=repeat_seed,
                    )
                )
                # With eps = inf the recommender is deterministic; one repeat
                # suffices and keeps the sweep fast.
                effective_repeats = 1 if math.isinf(epsilon) else repeats
                for n in ns:
                    key = _cell_key(
                        dataset, measure, epsilon, n, repeats, seed, sample_size
                    )
                    stored = cached(measure, epsilon, n)
                    if stored is not None:
                        mean = float(stored["ndcg_mean"])
                        std = float(stored["ndcg_std"])
                    else:
                        fault_point("tradeoff.cell")
                        assert context is not None
                        scored = engine_results.get((epsilon, n))
                        if scored is not None:
                            mean, std = scored
                        else:
                            mean, std = evaluate_factory(
                                context,
                                factory,
                                n,
                                repeats=effective_repeats,
                                base_seed=seed * 1000 + 1,
                            )
                        if checkpoint is not None:
                            checkpoint.record(
                                key, {"ndcg_mean": mean, "ndcg_std": std}
                            )
                    cells.append(
                        TradeoffCell(
                            dataset=dataset.name,
                            measure=measure.name,
                            epsilon=epsilon,
                            n=n,
                            ndcg_mean=mean,
                            ndcg_std=std,
                        )
                    )
    finally:
        if sweep_engine is not None:
            sweep_engine.close()
    return cells


def format_tradeoff_table(cells: Sequence[TradeoffCell], n: int) -> str:
    """Render one N-slice of the sweep as a text table (measures x epsilons).

    Raises:
        ExperimentError: if no cell matches the requested ``n``.
    """
    selected = [c for c in cells if c.n == n]
    if not selected:
        raise ExperimentError(f"no tradeoff cells with n={n}")
    epsilons = sorted({c.epsilon for c in selected}, reverse=True)
    measures = sorted({c.measure for c in selected})
    by_key: Dict[tuple, TradeoffCell] = {
        (c.measure, c.epsilon): c for c in selected
    }

    def eps_label(e: float) -> str:
        return "inf" if math.isinf(e) else f"{e:g}"

    header = ["measure"] + [f"eps={eps_label(e)}" for e in epsilons]
    rows = [header]
    for m in measures:
        row = [m.upper()]
        for e in epsilons:
            cell = by_key.get((m, e))
            row.append("-" if cell is None else f"{cell.ndcg_mean:.3f}")
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    ]
    title = f"NDCG@{n} for dataset {selected[0].dataset}"
    return "\n".join([title, *lines])
