"""Shared evaluation machinery for the paper's experiments.

Every experiment follows the same recipe (paper Section 6.2):

1. Fit the *non-private* recommender once and record, per evaluation user,
   the ideal utilities and the reference top-N ranking.
2. Fit the candidate (private) recommender, produce its rankings for the
   same users, and score them with NDCG@N against the reference.
3. Repeat step 2 over independent noise draws and average (the paper
   repeats 10 times).

:class:`EvaluationContext` caches step 1 so sweeping epsilon, N, or the
mechanism never re-pays the exact-recommender cost.  For large datasets it
supports the paper's Flixster protocol: evaluate a random user subset while
every user still participates in clustering and utility computation.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import BaseRecommender
from repro.core.recommender import SocialRecommender
from repro.datasets.dataset import SocialRecDataset
from repro.exceptions import ExperimentError
from repro.metrics.ndcg import average_ndcg
from repro.similarity.base import SimilarityMeasure
from repro.types import ItemId, UserId

__all__ = ["EvaluationContext", "evaluate_recommender", "evaluate_factory"]

# A factory builds an unfitted recommender for one repeat; it receives the
# repeat's noise seed so each repeat draws independent noise.
RecommenderFactory = Callable[[int], BaseRecommender]


@dataclass
class EvaluationContext:
    """The cached non-private reference for one (dataset, measure) pair.

    Attributes:
        dataset: the evaluation dataset.
        measure: the similarity measure under test.
        users: the evaluation users (possibly a sample).
        max_n: the largest N any caller will request.
        reference_rankings: per-user non-private top-``max_n`` rankings.
        ideal_utilities: per-user true utility maps.
    """

    dataset: SocialRecDataset
    measure: SimilarityMeasure
    users: List[UserId]
    max_n: int
    reference_rankings: Dict[UserId, List[ItemId]] = field(repr=False)
    ideal_utilities: Dict[UserId, Dict[ItemId, float]] = field(repr=False)

    @classmethod
    def build(
        cls,
        dataset: SocialRecDataset,
        measure: SimilarityMeasure,
        max_n: int = 100,
        sample_size: Optional[int] = None,
        seed: int = 0,
    ) -> "EvaluationContext":
        """Fit the exact recommender and snapshot the reference answers.

        Args:
            dataset: the evaluation dataset.
            measure: similarity measure.
            max_n: largest recommendation-list length to support.
            sample_size: evaluate only this many randomly chosen users
                (None = all users).  Matches the paper's 10K-user Flixster
                sample; the full graph still drives clustering/similarity.
            seed: sampling seed.

        Raises:
            ExperimentError: if the dataset has no users, or the sample
                size is not positive.
        """
        all_users = dataset.social.users()
        if not all_users:
            raise ExperimentError("cannot evaluate an empty dataset")
        if sample_size is not None:
            if sample_size < 1:
                raise ExperimentError(
                    f"sample_size must be >= 1, got {sample_size}"
                )
            if sample_size < len(all_users):
                rng = np.random.default_rng(np.random.SeedSequence((seed, 23)))
                chosen = rng.choice(len(all_users), size=sample_size, replace=False)
                all_users = [all_users[int(i)] for i in sorted(chosen)]
        reference = SocialRecommender(measure, n=max_n)
        reference.fit(dataset.social, dataset.preferences)
        ideal = {u: reference.utilities(u) for u in all_users}
        rankings = {
            u: reference.recommend(u, n=max_n).item_ids() for u in all_users
        }
        return cls(
            dataset=dataset,
            measure=measure,
            users=list(all_users),
            max_n=max_n,
            reference_rankings=rankings,
            ideal_utilities=ideal,
        )

    def ndcg_of_rankings(
        self, rankings: Dict[UserId, Sequence[ItemId]], n: int
    ) -> float:
        """Average NDCG@n of candidate rankings against the reference.

        Raises:
            ExperimentError: when ``n`` exceeds ``max_n`` (the reference
                rankings would be silently truncated short).
        """
        if n > self.max_n:
            raise ExperimentError(
                f"requested n={n} exceeds the context's max_n={self.max_n}"
            )
        return average_ndcg(
            rankings,
            self.reference_rankings,
            self.ideal_utilities,
            n,
            users=self.users,
        )

    def per_user_ndcg_of_rankings(
        self, rankings: Dict[UserId, Sequence[ItemId]], n: int
    ) -> Dict[UserId, float]:
        """NDCG@n per evaluation user (used by the Figure 3 analysis)."""
        from repro.metrics.ndcg import ndcg_at_n

        if n > self.max_n:
            raise ExperimentError(
                f"requested n={n} exceeds the context's max_n={self.max_n}"
            )
        return {
            u: ndcg_at_n(
                rankings[u], self.reference_rankings[u], self.ideal_utilities[u], n
            )
            for u in self.users
        }


def evaluate_recommender(
    context: EvaluationContext, recommender: BaseRecommender, n: int
) -> float:
    """Fit ``recommender`` on the context's dataset and score NDCG@n."""
    recommender.fit(context.dataset.social, context.dataset.preferences)
    rankings = {
        u: recommender.recommend(u, n=n).item_ids() for u in context.users
    }
    return context.ndcg_of_rankings(rankings, n)


def evaluate_factory(
    context: EvaluationContext,
    factory: RecommenderFactory,
    n: int,
    repeats: int = 10,
    base_seed: int = 0,
) -> tuple:
    """Mean and std of NDCG@n over ``repeats`` independent noise draws.

    Args:
        context: the cached reference.
        factory: builds an unfitted recommender from a repeat seed.
        n: NDCG cutoff.
        repeats: number of noise draws (the paper uses 10).
        base_seed: repeat seeds are ``base_seed + repeat_index``.

    Returns:
        ``(mean, std)``; std is 0.0 for a single repeat.

    Raises:
        ExperimentError: if ``repeats`` < 1.
    """
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    scores = [
        evaluate_recommender(context, factory(base_seed + r), n)
        for r in range(repeats)
    ]
    mean = statistics.fmean(scores)
    std = statistics.pstdev(scores) if len(scores) > 1 else 0.0
    return (mean, std)
