"""Experiment harness: the drivers that regenerate every table and figure.

- :mod:`repro.experiments.evaluation` — shared machinery: build the
  non-private reference once, evaluate any recommender factory against it,
  average over repeated noise draws.
- :mod:`repro.experiments.engine` — the vectorised sweep engine: hoists
  every epsilon/repeat-invariant quantity out of the sweep loops and
  scores each noise draw as one matmul + one vectorised ranking/NDCG
  pass.  The drivers use it by default (``engine="vectorized"``) and
  fall back per cell to the per-user reference path.
- :mod:`repro.experiments.tradeoff` — Figures 1 and 2 (NDCG@N vs epsilon
  for the four similarity measures).
- :mod:`repro.experiments.degree_effect` — Figure 3 (per-user NDCG@50 at
  epsilon = inf as a function of social degree).
- :mod:`repro.experiments.comparison` — Figure 4 (NOU / NOE / LRM / GS vs
  the cluster framework).
- :mod:`repro.experiments.ablation` — clustering-strategy and error-
  decomposition ablations (DESIGN.md Section 6).
"""

from repro.experiments.checkpoint import SweepCheckpoint
from repro.experiments.comparison import ComparisonCell, run_comparison
from repro.experiments.degree_effect import DegreeEffectResult, run_degree_effect
from repro.experiments.engine import (
    ENGINES,
    EngineStats,
    SweepEngine,
    validate_engine,
)
from repro.experiments.evaluation import (
    EvaluationContext,
    evaluate_factory,
    evaluate_recommender,
)
from repro.experiments.tradeoff import (
    TradeoffCell,
    TradeoffResult,
    format_tradeoff_table,
    run_tradeoff,
)

__all__ = [
    "SweepCheckpoint",
    "EvaluationContext",
    "evaluate_recommender",
    "evaluate_factory",
    "ENGINES",
    "EngineStats",
    "SweepEngine",
    "validate_engine",
    "TradeoffCell",
    "TradeoffResult",
    "run_tradeoff",
    "format_tradeoff_table",
    "DegreeEffectResult",
    "run_degree_effect",
    "ComparisonCell",
    "run_comparison",
]
