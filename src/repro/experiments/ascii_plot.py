"""Terminal line charts for the report and CLI output.

matplotlib is not a dependency of this library, so the report renders its
figures as compact ASCII charts: one row per series, one column per x
value, glyph height proportional to the y value.  Good enough to *see* the
Figure 1/2 degradation curves and the Figure 4 bars in a terminal or a
markdown code block.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_chart", "bar_chart"]

_LEVELS = " .:-=+*#%@"


def _glyph(value: float, lo: float, hi: float) -> str:
    if math.isnan(value):
        return "?"
    if hi <= lo:
        return _LEVELS[-1]
    fraction = (value - lo) / (hi - lo)
    index = min(len(_LEVELS) - 1, max(0, int(round(fraction * (len(_LEVELS) - 1)))))
    return _LEVELS[index]


def line_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    height: int = 8,
    y_min: float = 0.0,
    y_max: float = 1.0,
) -> str:
    """Render several aligned series as an ASCII chart.

    Args:
        series: name -> y values, all the same length as ``x_labels``.
        x_labels: tick labels, printed under the chart.
        height: chart rows.
        y_min / y_max: fixed y range (defaults fit NDCG).

    Returns:
        The chart as a multi-line string.

    Raises:
        ValueError: on mismatched lengths or an empty chart.
    """
    if not series or not x_labels:
        raise ValueError("series and x_labels must be non-empty")
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(x_labels)} x labels"
            )
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")

    markers = "ox+*sdv^"
    names = list(series)
    col_width = max(3, max(len(label) for label in x_labels) + 1)
    rows = []
    for level in range(height, 0, -1):
        threshold = y_min + (y_max - y_min) * level / height
        prev_threshold = y_min + (y_max - y_min) * (level - 1) / height
        axis = f"{threshold:5.2f} |"
        cells = []
        for col in range(len(x_labels)):
            glyphs = [
                markers[s % len(markers)]
                for s, name in enumerate(names)
                if prev_threshold < series[name][col] <= threshold
            ]
            cell = "".join(glyphs)[: col_width - 1]
            cells.append(cell.center(col_width))
        rows.append(axis + "".join(cells))
    axis_line = "      +" + "-" * (col_width * len(x_labels))
    label_line = "       " + "".join(label.center(col_width) for label in x_labels)
    legend = "   ".join(
        f"{markers[s % len(markers)]}={name}" for s, name in enumerate(names)
    )
    return "\n".join([*rows, axis_line, label_line, f"       {legend}"])


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    y_max: float = 1.0,
) -> str:
    """Render name -> value pairs as horizontal ASCII bars.

    Raises:
        ValueError: for an empty mapping or non-positive width.
    """
    if not values:
        raise ValueError("values must be non-empty")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    label_width = max(len(name) for name in values)
    lines = []
    for name, value in values.items():
        filled = 0 if y_max <= 0 else int(round(min(value, y_max) / y_max * width))
        bar = "#" * filled
        lines.append(f"{name.rjust(label_width)} |{bar:<{width}}| {value:.3f}")
    return "\n".join(lines)
