"""The vectorised sweep engine behind the Figure 1–4 experiment drivers.

The reference sweep (``evaluate_factory``) refits a recommender per
(epsilon, N, repeat) cell: every repeat re-runs clustering bookkeeping,
re-averages the preference edges, recomputes every user's similarity row
in Python, and rescores rankings one user at a time.  Almost all of that
work is invariant across the sweep.  This engine hoists each invariant to
the outermost loop that still needs it:

- per dataset: the exact cluster-item averages ``A``
  (:func:`~repro.core.cluster_weights.cluster_item_averages`), the
  covering clustering, the cluster indicator ``C``, and the cluster-size
  vector of the degradation ladder;
- per (dataset, measure): the similarity kernel ``S``
  (:func:`~repro.compute.build_kernel`, optionally through a persistent
  :class:`~repro.cache.store.SimilarityStore`), the evaluation users'
  cluster profile ``P = S @ C``, the dense ideal-utility matrix, and the
  cumulative reference DCG at every cutoff;
- per (epsilon, repeat): *only* one Laplace tensor, one matmul
  ``E = P @ (A + L)^T``, one vectorised ranking, and one cumulative-DCG
  pass scoring every N at once.

Equivalence with the per-user reference path is structural, not
approximate: the noise stream reuses the recommender's exact generator
discipline (one ``default_rng(SeedSequence(seed))`` laplace draw over the
full matrix), the ranking reproduces ``top_n_from_vector``'s
argpartition/stable-sort tie-breaking, the zero-signal users are served
by the same degradation ladder, and the NDCG accumulation follows the
scalar summation order.  The test suite pins rankings and scores against
the reference engine.

With ``workers >= 2`` the (epsilon) cells of one measure fan out over a
process pool; workers memory-map the cached kernel artifact and the
spilled evaluation arrays instead of receiving them pickled.  Failures
degrade per cell: pooled cell -> in-parent sequential scoring -> the cell
is abandoned to the caller's per-user reference path (fault sites
``engine.cell`` and ``engine.repeat``).
"""

from __future__ import annotations

import os
import statistics
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.cache.store import SimilarityStore, open_kernel_csr, save_kernel_artifact
from repro.community.clustering import Clustering
from repro.compute.kernels import build_kernel, supports_vectorized_kernel
from repro.compute.stats import ComputeStats, validate_backend
from repro.core.cluster_weights import ClusterItemAverages, cluster_item_averages
from repro.core.private import covering_clustering
from repro.datasets.dataset import SocialRecDataset
from repro.exceptions import ExperimentError
from repro.experiments.evaluation import EvaluationContext
from repro.metrics.ndcg import dcg_array
from repro.obs.adapters import publish_engine_stats
from repro.obs.ledger import record_laplace_release
from repro.obs.spans import span
from repro.privacy.mechanisms import validate_epsilon
from repro.resilience.faults import fault_point
from repro.similarity.matrix import SimilarityMatrix
from repro.types import ItemId, UserId

__all__ = ["ENGINES", "EngineStats", "SweepEngine", "validate_engine"]

# The sweep engines the experiment drivers accept: "vectorized" is this
# module; "reference" is the original per-user evaluate_factory loop.
ENGINES = ("vectorized", "reference")

# One cell of work: (epsilon, cutoffs, repeats).
CellSpec = Tuple[float, Sequence[int], int]


def validate_engine(engine: str) -> str:
    """Validate an engine name, returning it unchanged.

    Raises:
        ValueError: for anything outside :data:`ENGINES`.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return engine


@dataclass
class EngineStats:
    """Perf counters for one :class:`SweepEngine` instance.

    Attributes:
        mode: ``"parallel"`` or ``"sequential"`` (last evaluate call).
        workers: configured pool width (1 = in-process).
        measures: distinct similarity kernels built or loaded.
        cells: (epsilon) cells scored by the engine.
        repeats: noise repeats scored across all cells.
        fallback_cells: pooled cells rescored sequentially in-parent.
        legacy_cells: cells abandoned entirely (the caller should rescore
            them with the per-user reference path).
        cache_hits / cache_misses: similarity-store lookups (zero without
            a store).
        kernel_seconds: time spent obtaining similarity kernels.
        wall_seconds: total time inside ``evaluate_many``.
        compute: the :class:`~repro.compute.stats.ComputeStats` of the
            most recent kernel construction (None on a warm cache).
        tier_transitions: degradation-ladder transitions, keyed by edge
            (``"pool->parent"``, ``"parent->legacy"``,
            ``"sequential->legacy"``).  ``fallback_cells`` /
            ``legacy_cells`` count *cells*; this counts *transitions*, so
            mid-run ladder drops are visible even when a cell later
            succeeds on a lower rung.
    """

    mode: str = ""
    workers: int = 1
    measures: int = 0
    cells: int = 0
    repeats: int = 0
    fallback_cells: int = 0
    legacy_cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    kernel_seconds: float = 0.0
    wall_seconds: float = 0.0
    compute: Optional[ComputeStats] = None
    tier_transitions: Dict[str, int] = field(default_factory=dict)

    def record_transition(self, edge: str) -> None:
        """Count one degradation-ladder transition (e.g. ``"pool->parent"``)."""
        self.tier_transitions[edge] = self.tier_transitions.get(edge, 0) + 1


@dataclass
class _KernelBundle:
    """One measure's kernel plus the on-disk artifact workers can map."""

    kernel: SimilarityMatrix
    artifact_path: Optional[str]


@dataclass
class _EvalArrays:
    """Dense per-context arrays shared across every epsilon and repeat."""

    context: EvaluationContext
    positions: np.ndarray  # kernel row of each evaluation user
    utilities: np.ndarray  # (users x items) ideal utilities
    reference_cum: np.ndarray  # (users x max_n) cumulative reference DCG


@dataclass
class _ClusterArrays:
    """Per-clustering arrays shared across measures, epsilons, repeats."""

    clustering: Clustering  # as passed by the caller (keeps id() stable)
    covering: Clustering  # extended to cover preference-only users
    users: List[UserId]  # kernel row order the indicator was built over
    averages: ClusterItemAverages
    indicator: sp.csr_matrix  # (kernel users x clusters)
    sizes: np.ndarray  # cluster sizes, for the degradation ladder


def _noised(matrix: np.ndarray, scales: Optional[np.ndarray], seed: int) -> np.ndarray:
    """One repeat's released matrix, bit-identical to the recommender's.

    Reproduces ``PrivateSocialRecommender._prepare``'s noise discipline:
    a fresh ``default_rng(SeedSequence(seed))`` whose single ``laplace``
    call covers the whole matrix (``scales`` broadcast over items).  At
    ``scales is None`` (epsilon = inf, or an empty release) the generator
    is still constructed — the reference builds it unconditionally — but
    nothing is drawn.
    """
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    if scales is None:
        return matrix
    return matrix + rng.laplace(
        loc=0.0, scale=scales[np.newaxis, :], size=matrix.shape
    )


def _rank_rows(estimates: np.ndarray, limit: int) -> np.ndarray:
    """Top-``limit`` item positions per row of a dense estimate block.

    Reproduces ``BaseRecommender.top_n_from_vector`` exactly: argpartition
    selects each row's top set, then a stable sort on (-estimate, item
    position) orders it.  The reference's lexsort keys make the final
    ranking a function of the selected *set* alone, so sorting the
    candidate positions ascending before the stable value sort yields the
    identical ranking.
    """
    num_rows, num_items = estimates.shape
    limit = min(limit, num_items)
    if limit == 0:
        return np.empty((num_rows, 0), dtype=np.intp)
    negated = -estimates
    if limit < num_items:
        candidates = np.argpartition(negated, limit - 1, axis=1)[:, :limit]
        candidates = np.sort(candidates, axis=1)
    else:
        candidates = np.tile(np.arange(num_items, dtype=np.intp), (num_rows, 1))
    values = np.take_along_axis(negated, candidates, axis=1)
    order = np.argsort(values, axis=1, kind="stable")
    return np.take_along_axis(candidates, order, axis=1)


def _degraded_estimates(
    noised: np.ndarray, sizes: np.ndarray, column: int
) -> Optional[np.ndarray]:
    """The degradation-ladder estimates for one zero-signal user.

    Mirrors :func:`repro.resilience.degradation.degradation_estimates`
    tier for tier (``column`` is the user's cluster, -1 when the user is
    outside the clustering); None means the empty tier (empty ranking).
    """
    if noised.size == 0:
        return None
    if column >= 0:
        return np.asarray(noised[:, column], dtype=float)
    total = sizes.sum()
    if total <= 0:
        return None
    return np.asarray(noised @ (sizes / total), dtype=float)


def _profile_rows(
    kernel: sp.csr_matrix, positions: Sequence[int], indicator: sp.csr_matrix
) -> np.ndarray:
    """``P = S @ C`` restricted to the evaluation users' kernel rows."""
    rows = kernel[list(positions), :] @ indicator
    return np.asarray(rows.todense())


def _rank_repeat(
    profile: np.ndarray,
    noised: np.ndarray,
    sizes: np.ndarray,
    columns: np.ndarray,
    ns: Sequence[int],
    chunk_size: int,
) -> Dict[int, Tuple[np.ndarray, Dict[int, np.ndarray]]]:
    """Rankings for one noise draw at every cutoff.

    Returns, per cutoff ``n``, the ``(users x limit)`` matrix of ranked
    item positions plus a per-row override map for the zero-signal users
    served by the degradation ladder (an empty override array means the
    empty tier's empty ranking).  ``E = P @ (A + L)^T`` is materialised in
    row chunks so peak memory stays ``chunk_size * num_items`` floats.
    """
    num_users = profile.shape[0]
    num_items = noised.shape[0]
    release_t = np.ascontiguousarray(noised.T)
    limits = {int(n): min(int(n), num_items) for n in ns}
    ranked = {
        n: np.empty((num_users, limit), dtype=np.intp)
        for n, limit in limits.items()
    }
    for start in range(0, num_users, chunk_size):
        stop = min(start + chunk_size, num_users)
        estimates = profile[start:stop] @ release_t
        for n, limit in limits.items():
            ranked[n][start:stop] = _rank_rows(estimates, limit)
    overrides: Dict[int, Dict[int, np.ndarray]] = {n: {} for n in limits}
    for row in np.flatnonzero(~profile.any(axis=1)):
        estimates = _degraded_estimates(noised, sizes, int(columns[row]))
        for n, limit in limits.items():
            if estimates is None:
                overrides[n][int(row)] = np.empty(0, dtype=np.intp)
            else:
                overrides[n][int(row)] = _rank_rows(
                    estimates[np.newaxis, :], limit
                )[0]
    return {n: (ranked[n], overrides[n]) for n in limits}


def _private_dcg(
    utilities: np.ndarray,
    ranked: np.ndarray,
    overrides: Dict[int, np.ndarray],
) -> np.ndarray:
    """Per-user DCG of the private rankings under the ideal utilities."""
    utilities = np.asarray(utilities)
    num_users = ranked.shape[0]
    if ranked.shape[1]:
        gains = np.take_along_axis(utilities, ranked, axis=1)
        private = dcg_array(gains)[:, -1].copy()
    else:
        private = np.zeros(num_users)
    for row, positions in overrides.items():
        if positions.size:
            gains = utilities[row, positions][np.newaxis, :]
            private[row] = dcg_array(gains)[0, -1]
        else:
            private[row] = 0.0
    return private


def _cell_scores(
    profile: np.ndarray,
    utilities: np.ndarray,
    reference_cum: np.ndarray,
    averages_matrix: np.ndarray,
    sizes: np.ndarray,
    columns: np.ndarray,
    ns: Sequence[int],
    seeds: Sequence[int],
    scales: Optional[np.ndarray],
    chunk_size: int,
    fault_site: Optional[str] = None,
) -> Dict[int, List[float]]:
    """Average NDCG@n per repeat for one (measure, epsilon) cell.

    The scoring accumulation mirrors the scalar chain exactly:
    ``ndcg_at_n``'s reference-DCG-positive division (1.0 otherwise),
    ``average_ndcg``'s sequential per-user summation (``np.cumsum``), and
    the division by the user count.
    """
    num_users = profile.shape[0]
    if num_users == 0:
        raise ExperimentError("cannot score a cell with no evaluation users")
    averages_matrix = np.asarray(averages_matrix)
    ref_width = reference_cum.shape[1]
    reference_at = {
        int(n): (
            np.asarray(reference_cum[:, min(int(n), ref_width) - 1])
            if ref_width
            else np.zeros(num_users)
        )
        for n in ns
    }
    results: Dict[int, List[float]] = {int(n): [] for n in ns}
    for seed in seeds:
        with span("engine.repeat"):
            if fault_site is not None:
                fault_point(fault_site)
            noised = _noised(averages_matrix, scales, int(seed))
            per_n = _rank_repeat(
                profile, noised, sizes, columns, ns, chunk_size
            )
            for n, (ranked, overrides) in per_n.items():
                private = _private_dcg(utilities, ranked, overrides)
                reference = reference_at[n]
                scores = np.ones(num_users)
                positive = reference > 0.0
                scores[positive] = private[positive] / reference[positive]
                results[n].append(float(np.cumsum(scores)[-1]) / num_users)
    return results


def _score_cell_worker(
    artifact_path: str,
    positions: List[int],
    indicator_parts: Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]],
    utilities_path: str,
    reference_path: str,
    averages_path: str,
    sizes: np.ndarray,
    columns: np.ndarray,
    ns: Sequence[int],
    seeds: Sequence[int],
    scales: Optional[np.ndarray],
    chunk_size: int,
) -> Dict[int, List[float]]:
    """Pool-worker entry point: score one (measure, epsilon) cell.

    The kernel CSR buffers are memory-mapped straight out of the cached
    artifact and the dense evaluation arrays out of their ``.npy`` spills,
    so workers share one page-cache copy of every large input instead of
    receiving them pickled.  Module-level so it pickles under every start
    method.
    """
    kernel = open_kernel_csr(artifact_path)
    data, indices, indptr, shape = indicator_parts
    indicator = sp.csr_matrix((data, indices, indptr), shape=shape)
    profile = _profile_rows(kernel, positions, indicator)
    utilities = np.load(utilities_path, mmap_mode="r")
    reference_cum = np.load(reference_path, mmap_mode="r")
    averages_matrix = np.load(averages_path, mmap_mode="r")
    return _cell_scores(
        profile,
        utilities,
        reference_cum,
        averages_matrix,
        sizes,
        columns,
        ns,
        seeds,
        scales,
        chunk_size,
    )


class SweepEngine:
    """Shared vectorised scoring for every experiment driver.

    One engine instance amortises kernels, cluster releases, and
    evaluation arrays across measures, clusterings, epsilons, cutoffs,
    and repeats; the drivers construct one per run and close it when the
    sweep finishes (it is also a context manager).

    Args:
        dataset: the evaluation dataset.
        store: optional persistent similarity cache for the kernels;
            hit/miss counters land on :attr:`stats`.
        workers: with ``workers >= 2``, the epsilon cells of each
            ``evaluate_many`` call fan out over a process pool whose
            workers memory-map the kernel artifact.  Default: in-process.
        backend: kernel construction backend
            (``auto | vectorized | python``); measures without a
            vectorised kernel transparently use the per-user reference
            builder either way.
        chunk_size: evaluation users per dense scoring chunk; bounds peak
            memory at roughly ``chunk_size * num_items`` floats.
        max_weight / protection / user_clamp: release parameters,
            matching :class:`~repro.core.private.PrivateSocialRecommender`
            defaults.
    """

    def __init__(
        self,
        dataset: SocialRecDataset,
        *,
        store: Optional[SimilarityStore] = None,
        workers: Optional[int] = None,
        backend: str = "auto",
        chunk_size: int = 1024,
        max_weight: float = 1.0,
        protection: str = "edge",
        user_clamp: int = 50,
    ) -> None:
        validate_backend(backend)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.dataset = dataset
        self.store = store
        self.workers = workers
        self.backend = backend
        self.chunk_size = chunk_size
        self.max_weight = max_weight
        self.protection = protection
        self.user_clamp = user_clamp
        self.stats = EngineStats(workers=workers if workers else 1)
        self._kernels: Dict[str, _KernelBundle] = {}
        self._evals: Dict[int, _EvalArrays] = {}
        self._clusters: Dict[int, _ClusterArrays] = {}
        self._columns: Dict[Tuple[int, int], np.ndarray] = {}
        self._profiles: Dict[Tuple[str, int, int], np.ndarray] = {}
        self._item_index: Optional[Dict[ItemId, int]] = None
        self._items_list: List[ItemId] = []
        self._spill_dir: Optional[tempfile.TemporaryDirectory] = None
        self._spill_paths: Dict[tuple, str] = {}
        self._spill_count = 0
        self._stats_published = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the spill directory (cached arrays stay usable).

        Also publishes :attr:`stats` into the active telemetry registry
        (once per engine, no-op when observability is disabled), so a
        profiled run's summary carries the engine counters.
        """
        if not self._stats_published:
            self._stats_published = True
            publish_engine_stats(self.stats)
        if self._spill_dir is not None:
            self._spill_dir.cleanup()
            self._spill_dir = None
            self._spill_paths.clear()
            # Ephemeral artifacts lived in the spill dir; forget them so a
            # later parallel call re-spills instead of mapping a dead path.
            for bundle in self._kernels.values():
                if bundle.artifact_path and not os.path.exists(
                    bundle.artifact_path
                ):
                    bundle.artifact_path = None

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # cached preprocessing layers
    # ------------------------------------------------------------------
    def _kernel_for(self, measure) -> _KernelBundle:
        bundle = self._kernels.get(measure.name)
        if bundle is not None:
            return bundle
        started = time.perf_counter()
        compute_stats = ComputeStats(requested=self.backend)
        artifact_path: Optional[str] = None
        if self.store is not None and supports_vectorized_kernel(measure):
            before = self.store.stats.snapshot()
            lookup = self.store.get_or_compute(
                self.dataset.social,
                measure,
                lambda: build_kernel(
                    self.dataset.social,
                    measure,
                    backend=self.backend,
                    stats=compute_stats,
                ),
            )
            kernel = lookup.matrix
            artifact_path = lookup.path
            self.stats.cache_hits += self.store.stats.hits - before.hits
            self.stats.cache_misses += self.store.stats.misses - before.misses
        else:
            kernel = build_kernel(
                self.dataset.social,
                measure,
                backend=self.backend,
                stats=compute_stats,
            )
        bundle = _KernelBundle(kernel=kernel, artifact_path=artifact_path)
        self._kernels[measure.name] = bundle
        self.stats.measures += 1
        self.stats.kernel_seconds += time.perf_counter() - started
        if compute_stats.backend:  # a construction actually ran
            self.stats.compute = compute_stats
        return bundle

    def _items(self) -> Tuple[List[ItemId], Dict[ItemId, int]]:
        if self._item_index is None:
            items = list(self.dataset.preferences.items())
            self._item_index = {item: i for i, item in enumerate(items)}
            self._items_list = items
        return self._items_list, self._item_index

    def _eval_for(self, context: EvaluationContext, bundle: _KernelBundle) -> _EvalArrays:
        arrays = self._evals.get(id(context))
        if arrays is not None:
            return arrays
        index = bundle.kernel.index
        missing = [u for u in context.users if u not in index]
        if missing:
            raise ExperimentError(
                f"evaluation users missing from the similarity kernel: "
                f"{missing[:5]!r}"
            )
        positions = np.array([index[u] for u in context.users], dtype=np.intp)
        _, item_index = self._items()
        utilities = np.zeros((len(context.users), len(item_index)))
        for row, user in enumerate(context.users):
            for item, value in context.ideal_utilities[user].items():
                column = item_index.get(item)
                if column is not None:
                    utilities[row, column] = value
        reference_gains = np.zeros((len(context.users), context.max_n))
        for row, user in enumerate(context.users):
            ideal = context.ideal_utilities[user]
            ranking = context.reference_rankings[user]
            for position, item in enumerate(ranking[: context.max_n]):
                reference_gains[row, position] = ideal.get(item, 0.0)
        arrays = _EvalArrays(
            context=context,
            positions=positions,
            utilities=utilities,
            reference_cum=dcg_array(reference_gains),
        )
        self._evals[id(context)] = arrays
        return arrays

    def _cluster_for(
        self, clustering: Clustering, bundle: _KernelBundle
    ) -> _ClusterArrays:
        arrays = self._clusters.get(id(clustering))
        users = bundle.kernel.users
        if arrays is not None and (
            arrays.users is users or arrays.users == users
        ):
            return arrays
        covering = covering_clustering(clustering, self.dataset.preferences)
        averages = cluster_item_averages(
            self.dataset.preferences,
            covering,
            max_weight=self.max_weight,
            protection=self.protection,
            user_clamp=self.user_clamp,
            backend=self.backend,
        )
        rows, cols = [], []
        for position, user in enumerate(users):
            if user in covering:
                rows.append(position)
                cols.append(covering.cluster_of(user))
        indicator = sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)),
            shape=(len(users), covering.num_clusters),
        )
        arrays = _ClusterArrays(
            clustering=clustering,
            covering=covering,
            users=list(users),
            averages=averages,
            indicator=indicator,
            sizes=np.asarray(covering.sizes(), dtype=float),
        )
        self._clusters[id(clustering)] = arrays
        return arrays

    def _columns_for(
        self, context: EvaluationContext, cluster_arrays: _ClusterArrays
    ) -> np.ndarray:
        key = (id(context), id(cluster_arrays.covering))
        columns = self._columns.get(key)
        if columns is None:
            covering = cluster_arrays.covering
            columns = np.array(
                [
                    covering.cluster_of(u) if u in covering else -1
                    for u in context.users
                ],
                dtype=np.intp,
            )
            self._columns[key] = columns
        return columns

    def _profile_for(
        self,
        measure_name: str,
        bundle: _KernelBundle,
        evals: _EvalArrays,
        cluster_arrays: _ClusterArrays,
    ) -> np.ndarray:
        key = (measure_name, id(evals.context), id(cluster_arrays.covering))
        profile = self._profiles.get(key)
        if profile is None:
            profile = _profile_rows(
                bundle.kernel.matrix, evals.positions, cluster_arrays.indicator
            )
            self._profiles[key] = profile
        return profile

    # ------------------------------------------------------------------
    # spill management (parallel mode)
    # ------------------------------------------------------------------
    def _spill_root(self) -> str:
        if self._spill_dir is None:
            self._spill_dir = tempfile.TemporaryDirectory(prefix="repro-engine-")
        return self._spill_dir.name

    def _spill_array(self, tag: tuple, array: np.ndarray) -> str:
        path = self._spill_paths.get(tag)
        if path is None:
            self._spill_count += 1
            path = os.path.join(self._spill_root(), f"spill-{self._spill_count}.npy")
            np.save(path, np.ascontiguousarray(array))
            self._spill_paths[tag] = path
        return path

    def _artifact_for(self, measure, bundle: _KernelBundle) -> str:
        if bundle.artifact_path is None or not os.path.exists(bundle.artifact_path):
            self._spill_count += 1
            path = os.path.join(
                self._spill_root(), f"kernel-{self._spill_count}.npz"
            )
            save_kernel_artifact(path, bundle.kernel, "ephemeral", measure)
            bundle.artifact_path = path
        return bundle.artifact_path

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate_many(
        self,
        context: EvaluationContext,
        clustering: Clustering,
        cells: Sequence[CellSpec],
        base_seed: int = 0,
    ) -> Dict[Tuple[float, int], Tuple[float, float]]:
        """Mean/std NDCG for a batch of (epsilon, ns, repeats) cells.

        Repeat ``r`` of every cell draws its noise from seed
        ``base_seed + r`` — the same stream ``evaluate_factory`` hands the
        recommender factory, so results are interchangeable with the
        reference engine.  Cells that fail even the in-parent sequential
        rung are *omitted* from the result (and counted in
        ``stats.legacy_cells``); callers rescore them with the per-user
        reference path.

        Args:
            context: the cached non-private reference for this measure.
            clustering: the (social) clustering shared by the sweep.
            cells: ``(epsilon, ns, repeats)`` work items.
            base_seed: repeat seed origin.

        Returns:
            ``{(epsilon, n): (mean, std)}`` for every cell that scored.

        Raises:
            ExperimentError: for invalid cutoffs/repeats (mirrors the
                reference path's validation).
        """
        with span("engine.evaluate_many"):
            return self._evaluate_many(context, clustering, cells, base_seed)

    def _evaluate_many(
        self,
        context: EvaluationContext,
        clustering: Clustering,
        cells: Sequence[CellSpec],
        base_seed: int = 0,
    ) -> Dict[Tuple[float, int], Tuple[float, float]]:
        started = time.perf_counter()
        normalised: List[Tuple[float, Tuple[int, ...], int]] = []
        for epsilon, ns, repeats in cells:
            epsilon = validate_epsilon(float(epsilon))
            ns = tuple(int(n) for n in ns)
            if not ns:
                raise ExperimentError("each cell needs at least one n")
            if min(ns) < 1:
                raise ExperimentError(f"n must be >= 1, got {min(ns)}")
            if max(ns) > context.max_n:
                raise ExperimentError(
                    f"requested n={max(ns)} exceeds the context's "
                    f"max_n={context.max_n}"
                )
            if repeats < 1:
                raise ExperimentError(f"repeats must be >= 1, got {repeats}")
            normalised.append((epsilon, ns, int(repeats)))
        results: Dict[Tuple[float, int], Tuple[float, float]] = {}
        if not normalised:
            return results

        measure = context.measure
        bundle = self._kernel_for(measure)
        evals = self._eval_for(context, bundle)
        cluster_arrays = self._cluster_for(clustering, bundle)
        columns = self._columns_for(context, cluster_arrays)
        averages = cluster_arrays.averages

        pending = [
            (
                epsilon,
                ns,
                [base_seed + r for r in range(repeats)],
                averages.laplace_scales(epsilon),
            )
            for epsilon, ns, repeats in normalised
        ]
        scored: Dict[int, Dict[int, List[float]]] = {}

        def score_sequential(cell_index: int) -> None:
            epsilon, ns, seeds, scales = pending[cell_index]
            profile = self._profile_for(
                measure.name, bundle, evals, cluster_arrays
            )
            with span("engine.cell"):
                scored[cell_index] = _cell_scores(
                    profile,
                    evals.utilities,
                    evals.reference_cum,
                    averages.matrix,
                    cluster_arrays.sizes,
                    columns,
                    ns,
                    seeds,
                    scales,
                    self.chunk_size,
                    fault_site="engine.repeat",
                )

        use_pool = (
            self.workers is not None
            and self.workers > 1
            and len(pending) > 1
        )
        if use_pool:
            self.stats.mode = "parallel"
            artifact_path = self._artifact_for(measure, bundle)
            utilities_path = self._spill_array(
                ("utilities", id(context)), evals.utilities
            )
            reference_path = self._spill_array(
                ("reference", id(context)), evals.reference_cum
            )
            averages_path = self._spill_array(
                ("averages", id(cluster_arrays.covering)), averages.matrix
            )
            positions = [int(p) for p in evals.positions]
            indicator = cluster_arrays.indicator
            indicator_parts = (
                indicator.data,
                indicator.indices,
                indicator.indptr,
                indicator.shape,
            )
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))
            ) as pool:
                futures = [
                    pool.submit(
                        _score_cell_worker,
                        artifact_path,
                        positions,
                        indicator_parts,
                        utilities_path,
                        reference_path,
                        averages_path,
                        cluster_arrays.sizes,
                        columns,
                        ns,
                        seeds,
                        scales,
                        self.chunk_size,
                    )
                    for (_, ns, seeds, scales) in pending
                ]
                for cell_index, future in enumerate(futures):
                    try:
                        fault_point("engine.cell")
                        scored[cell_index] = future.result()
                    except Exception:
                        # Worker died or was told to fail: rescore this
                        # cell with the in-parent kernel (same math, same
                        # result), then abandon it to the reference path
                        # if even that fails.
                        self.stats.fallback_cells += 1
                        self.stats.record_transition("pool->parent")
                        try:
                            score_sequential(cell_index)
                        except Exception:
                            scored.pop(cell_index, None)
                            self.stats.legacy_cells += 1
                            self.stats.record_transition("parent->legacy")
        else:
            self.stats.mode = "sequential"
            for cell_index in range(len(pending)):
                try:
                    fault_point("engine.cell")
                    score_sequential(cell_index)
                except Exception:
                    scored.pop(cell_index, None)
                    self.stats.legacy_cells += 1
                    self.stats.record_transition("sequential->legacy")

        for cell_index, (epsilon, ns, seeds, _) in enumerate(pending):
            per_cell = scored.get(cell_index)
            if per_cell is None:
                continue
            self.stats.cells += 1
            self.stats.repeats += len(seeds)
            # Ledger each scored repeat's Laplace release in-parent (pool
            # workers have no active registry); no-op when telemetry is
            # disabled or no noise was drawn (epsilon = inf).
            for _ in seeds:
                record_laplace_release(
                    epsilon,
                    cluster_arrays.sizes,
                    averages.sensitivity,
                    items=len(averages.items),
                )
            for n in ns:
                per_repeat = per_cell[int(n)]
                mean = statistics.fmean(per_repeat)
                std = (
                    statistics.pstdev(per_repeat)
                    if len(per_repeat) > 1
                    else 0.0
                )
                results[(epsilon, int(n))] = (mean, std)
        self.stats.wall_seconds += time.perf_counter() - started
        return results

    def evaluate(
        self,
        context: EvaluationContext,
        clustering: Clustering,
        epsilon: float,
        ns: Sequence[int],
        repeats: int,
        base_seed: int = 0,
    ) -> Dict[int, Tuple[float, float]]:
        """Mean/std NDCG@n for one epsilon at several cutoffs.

        A convenience wrapper over :meth:`evaluate_many`; the result maps
        each cutoff to ``(mean, std)`` and omits cutoffs whose cell was
        abandoned to the reference path.
        """
        results = self.evaluate_many(
            context, clustering, [(epsilon, tuple(ns), repeats)], base_seed
        )
        epsilon = validate_epsilon(float(epsilon))
        return {
            int(n): results[(epsilon, int(n))]
            for n in ns
            if (epsilon, int(n)) in results
        }

    # ------------------------------------------------------------------
    # single-repeat introspection (degree-effect driver, equivalence tests)
    # ------------------------------------------------------------------
    def _repeat_state(self, context, clustering, epsilon, repeat_seed, ns):
        epsilon = validate_epsilon(float(epsilon))
        measure = context.measure
        bundle = self._kernel_for(measure)
        evals = self._eval_for(context, bundle)
        cluster_arrays = self._cluster_for(clustering, bundle)
        columns = self._columns_for(context, cluster_arrays)
        profile = self._profile_for(measure.name, bundle, evals, cluster_arrays)
        averages = cluster_arrays.averages
        scales = averages.laplace_scales(epsilon)
        noised = _noised(averages.matrix, scales, int(repeat_seed))
        if scales is not None:
            record_laplace_release(
                epsilon,
                cluster_arrays.sizes,
                averages.sensitivity,
                items=len(averages.items),
            )
        per_n = _rank_repeat(
            profile,
            noised,
            cluster_arrays.sizes,
            columns,
            [int(n) for n in ns],
            self.chunk_size,
        )
        return evals, cluster_arrays, per_n

    def repeat_rankings(
        self,
        context: EvaluationContext,
        clustering: Clustering,
        epsilon: float,
        repeat_seed: int,
        ns: Sequence[int],
    ) -> Dict[int, Dict[UserId, List[ItemId]]]:
        """The exact per-user rankings of one noise repeat, per cutoff.

        Equivalent to fitting ``PrivateSocialRecommender(measure,
        epsilon, seed=repeat_seed, ...)`` and calling ``recommend(u, n)``
        for every evaluation user — the equivalence tests pin this item
        for item.
        """
        evals, cluster_arrays, per_n = self._repeat_state(
            context, clustering, epsilon, repeat_seed, ns
        )
        items = cluster_arrays.averages.items
        out: Dict[int, Dict[UserId, List[ItemId]]] = {}
        for n, (ranked, overrides) in per_n.items():
            rankings: Dict[UserId, List[ItemId]] = {}
            for row, user in enumerate(context.users):
                positions = overrides.get(row)
                if positions is None:
                    positions = ranked[row]
                rankings[user] = [items[int(p)] for p in positions]
            out[n] = rankings
        return out

    def per_user_scores(
        self,
        context: EvaluationContext,
        clustering: Clustering,
        epsilon: float,
        repeat_seed: int,
        n: int,
    ) -> Dict[UserId, float]:
        """NDCG@n per evaluation user for one noise repeat.

        Matches ``context.per_user_ndcg_of_rankings`` on the same
        rankings (used by the Figure 3 degree-effect driver).

        Raises:
            ExperimentError: when ``n`` exceeds the context's ``max_n``.
        """
        if n > context.max_n:
            raise ExperimentError(
                f"requested n={n} exceeds the context's max_n={context.max_n}"
            )
        evals, _, per_n = self._repeat_state(
            context, clustering, epsilon, repeat_seed, [n]
        )
        ranked, overrides = per_n[int(n)]
        private = _private_dcg(evals.utilities, ranked, overrides)
        ref_width = evals.reference_cum.shape[1]
        if ref_width:
            reference = np.asarray(
                evals.reference_cum[:, min(int(n), ref_width) - 1]
            )
        else:
            reference = np.zeros(len(context.users))
        scores = np.ones(len(context.users))
        positive = reference > 0.0
        scores[positive] = private[positive] / reference[positive]
        return {
            user: float(scores[row]) for row, user in enumerate(context.users)
        }
