"""Hot release swap: load vN+1 in the background, flip, drain vN.

The release artifact is the unit of privacy accounting — a new release
(a re-publication with fresh noise, a different epsilon, an updated
clustering) arrives as a new ``.npz`` file.  The serving tier must pick
it up **without dropping a single in-flight request**:

1. **load** — the new artifact is read and checksum-verified off the
   request path (``serve.swap`` is a fault site: a corrupt or torn
   vN+1 fails the swap and vN keeps serving untouched);
2. **flip** — the current-generation reference changes under the
   swapper's lock, the same lock every request acquires its engine
   under, so after the flip no new request can start against vN;
3. **drain** — the swapper waits for vN's in-flight count to reach
   zero.  Requests that started on vN finish on vN (they hold a
   reference), so the drain is a bounded wait, not a cancellation.

Counters: ``serve.swap.started`` / ``completed`` / ``failed``, the
``serve.swap.inflight_at_flip`` gauge, and ``serve.swap.drain_seconds``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.persistence import PublishedRelease
from repro.graph.social_graph import SocialGraph
from repro.obs.registry import incr as obs_incr
from repro.obs.registry import set_gauge as obs_set_gauge
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy
from repro.serve.engine import ServingEngine
from repro.similarity.base import SimilarityMeasure

__all__ = ["HotSwapper", "SwapResult"]


@dataclass(frozen=True)
class SwapResult:
    """What one completed hot swap reports.

    Attributes:
        old_generation / new_generation: the flip edge.
        path: artifact the new generation was loaded from.
        inflight_at_flip: vN requests still executing at the instant of
            the flip (they all completed on vN if ``drained`` is True).
        drained: whether vN reached zero in-flight within the timeout.
        drain_seconds: how long the drain wait took.
    """

    old_generation: int
    new_generation: int
    path: str
    inflight_at_flip: int
    drained: bool
    drain_seconds: float


class HotSwapper:
    """Owns the current :class:`ServingEngine` and swaps it atomically.

    ``acquire_current()`` takes the in-flight reference *under the same
    lock* the flip runs under, closing the race where a request reads
    the old engine, the flip completes and drains, and only then the
    request registers itself.
    """

    def __init__(self, engine: ServingEngine) -> None:
        self._lock = threading.Lock()
        self._current = engine
        self._swapping = threading.Lock()

    @property
    def current(self) -> ServingEngine:
        """The engine serving new requests right now."""
        with self._lock:
            return self._current

    @property
    def generation(self) -> int:
        return self.current.generation

    def acquire_current(self) -> ServingEngine:
        """Atomically pick the current engine and count a request on it.

        The caller must pair this with ``engine.release_ref()``.
        """
        with self._lock:
            return self._current.acquire()

    def swap(
        self,
        path: str,
        social: SocialGraph,
        measure: Optional[SimilarityMeasure] = None,
        mmap_dir: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        drain_timeout_s: float = 30.0,
        store=None,
    ) -> SwapResult:
        """Load the release at ``path``, flip to it, and drain the old one.

        Swaps serialise: a second concurrent swap blocks until the first
        finishes.  A failed load (corrupt artifact, injected fault at
        the ``serve.swap`` site) leaves the old generation serving and
        counts ``serve.swap.failed``.

        Raises:
            ReleaseIntegrityError / DatasetError: from the artifact load;
                the current generation is untouched.
        """
        with self._swapping:
            obs_incr("serve.swap.started")
            old = self.current
            try:
                release = PublishedRelease.load(
                    path, retry=retry, mmap_dir=mmap_dir
                )
                fault_point("serve.swap", path=path)
                new_engine = ServingEngine(
                    release,
                    social,
                    measure=measure,
                    generation=old.generation + 1,
                    path=path,
                    store=store,
                )
            except BaseException:
                obs_incr("serve.swap.failed")
                raise
            with self._lock:
                old = self._current
                self._current = new_engine
            inflight_at_flip = old.inflight
            obs_set_gauge("serve.swap.inflight_at_flip", float(inflight_at_flip))
            drain_start = time.perf_counter()
            drained = old.wait_drained(timeout_s=drain_timeout_s)
            drain_seconds = time.perf_counter() - drain_start
            obs_set_gauge("serve.swap.drain_seconds", drain_seconds)
            obs_incr("serve.swap.completed")
            return SwapResult(
                old_generation=old.generation,
                new_generation=new_engine.generation,
                path=path,
                inflight_at_flip=inflight_at_flip,
                drained=drained,
                drain_seconds=drain_seconds,
            )
