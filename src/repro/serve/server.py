"""The asyncio HTTP front end of the serving tier.

Stdlib only: ``asyncio`` streams accept connections and parse a minimal
HTTP/1.1 request; scoring runs on a bounded thread pool (numpy releases
the GIL in the matrix products, so threads scale on the hot path and
the pool's backlog is exactly the queue depth admission control reads).

Endpoints:

- ``GET /recommend?user=U&n=N`` — top-N recommendations.  Admission
  control picks the best degradation-ladder rung for the current queue
  depth; overload answers from cheaper rungs (and ultimately sheds to
  the empty rung) instead of erroring.  The response reports ``tier``,
  ``degraded``, and the serving ``generation``.
- ``GET /health`` — liveness plus the current generation's provenance.
- ``GET /stats`` — request totals, tier counts, queue depth/peak,
  uptime, generation, response-cache counters, and (when telemetry is
  active) the ``serve.*`` counters; ``?snapshot=1`` embeds the full
  :class:`~repro.obs.registry.TelemetrySnapshot` in JSON form so a
  supervisor can merge per-worker registries.
- ``POST /admin/swap?path=P`` — hot-swap to the release artifact at
  ``P``: load + verify in the background, atomically flip, drain the
  old generation (:mod:`repro.serve.swap`).
- ``POST /admin/shutdown`` — graceful shutdown: stop accepting, drain
  in-flight requests, exit cleanly.

A server may listen on two sockets at once: the *data* listener (the
bound host/port, or an inherited/SO_REUSEPORT socket handed to
:meth:`RecommendationServer.start`) and an optional loopback *control*
listener (:meth:`RecommendationServer.start_control`) used by the
prefork supervisor (:mod:`repro.serve.supervisor`).  A *managed* worker
(one constructed with ``supervisor_notify``) serves ``/admin/*``
differently per listener: on the control listener admin actions apply
to this process (that is how the supervisor fans out), while on the
shared data listener ``/admin/shutdown`` is forwarded to the supervisor
(so ``repro serve bench --shutdown`` keeps working against the data
port) and ``/admin/swap`` is refused with 409 — swapping one worker of
a fleet behind a shared port would fork the serving generation.

Per-request latency is recorded under the ``serve.request`` span and
the ``serve.latency_total_s`` gauge; the ``serve.request`` fault site
fires inside the scoring body so tests can stall or fail requests
deterministically.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ReproError
from repro.obs.export import snapshot_to_jsonable
from repro.obs.registry import add_gauge as obs_add_gauge
from repro.obs.registry import get_telemetry
from repro.obs.registry import incr as obs_incr
from repro.obs.spans import span
from repro.resilience.degradation import DEGRADATION_LADDER, TIER_EMPTY
from repro.resilience.faults import fault_point
from repro.serve.admission import AdmissionController
from repro.serve.rescache import ResponseCache
from repro.serve.swap import HotSwapper

__all__ = [
    "ServerConfig",
    "RecommendationServer",
    "read_http_request",
    "encode_response",
]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINES = 64


def _parse_user(raw: str):
    """Query-string user ids: ints round-trip, anything else stays str."""
    try:
        return int(raw)
    except ValueError:
        return raw


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of one serving process.

    Args:
        host / port: bind address; port 0 picks an ephemeral port
            (read it back from :attr:`RecommendationServer.port`).
        n_default: list length when the request does not pass ``n``.
        threads: scoring thread-pool size.
        max_requests: after this many ``/recommend`` responses the
            server shuts down cleanly (None: serve forever) — the
            harness/CI smoke mode.
        drain_timeout_s: bound on the old generation's drain during a
            hot swap, and on the final drain at shutdown.
        mmap_dir: when set, swapped-in releases are loaded with their
            matrix memory-mapped from this content-addressed cache.
        deadline_ms: default per-request deadline.  When scoring has not
            returned within this budget the request is answered *inline*
            from the next degradation rung instead of waiting; the
            abandoned scoring still runs to completion on its thread
            (executor futures cannot be cancelled) and only then frees
            its queue slot.  Requests may override with
            ``?deadline_ms=``.  None: no deadline unless the request
            asks for one.
        response_cache_size: capacity of the per-process
            :class:`~repro.serve.rescache.ResponseCache` (0: disabled).
            Entries are keyed by generation, so hot swaps invalidate
            for free; requests bypass with ``?fresh=1``.
        worker_slot: this process's slot under a prefork supervisor
            (None outside one).  Reported by ``/stats`` so merged
            multi-worker output stays attributable; never included in
            ``/recommend`` bodies, which must be bit-identical across
            workers.
    """

    host: str = "127.0.0.1"
    port: int = 0
    n_default: int = 10
    threads: int = 4
    max_requests: Optional[int] = None
    drain_timeout_s: float = 30.0
    mmap_dir: Optional[str] = None
    deadline_ms: Optional[float] = None
    response_cache_size: int = 0
    worker_slot: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_default < 1:
            raise ValueError(f"n_default must be >= 1, got {self.n_default}")
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")
        if self.max_requests is not None and self.max_requests < 1:
            raise ValueError(
                f"max_requests must be >= 1, got {self.max_requests}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )
        if self.response_cache_size < 0:
            raise ValueError(
                f"response_cache_size must be >= 0, "
                f"got {self.response_cache_size}"
            )


class RecommendationServer:
    """One long-lived serving process over a hot-swappable release.

    Args:
        swapper: owns the current release generation (and future ones).
        admission: the bounded-queue admission controller.
        social: the public social graph swapped-in releases are served
            against (the release artifact does not carry the graph).
        config: bind address and serving knobs.
        store: optional persistent
            :class:`~repro.cache.store.SimilarityStore`; swapped-in
            generations warm their similarity kernel through it.
        supervisor_notify: set only on prefork-supervised workers — a
            callable the worker uses to forward ``/admin/shutdown``
            requests arriving on the shared data listener up to the
            supervisor (see the module docstring for the per-listener
            admin semantics).
    """

    def __init__(
        self,
        swapper: HotSwapper,
        admission: AdmissionController,
        social,
        config: ServerConfig = ServerConfig(),
        store=None,
        supervisor_notify: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.swapper = swapper
        self.admission = admission
        self.social = social
        self.config = config
        self.store = store
        self.supervisor_notify = supervisor_notify
        self.port: Optional[int] = None
        self.control_port: Optional[int] = None
        self.requests_served = 0
        self.tier_counts: Dict[str, int] = {}
        self.errors = 0
        self.rescache: Optional[ResponseCache] = (
            ResponseCache(config.response_cache_size)
            if config.response_cache_size > 0
            else None
        )
        self._started = time.perf_counter()
        self._server: Optional[asyncio.AbstractServer] = None
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._executor = ThreadPoolExecutor(
            max_workers=config.threads, thread_name_prefix="serve"
        )
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, sock: Optional[socket.socket] = None) -> None:
        """Bind and start accepting connections; sets :attr:`port`.

        Args:
            sock: an already-bound listening socket to serve instead of
                binding ``config.host:config.port`` — how prefork
                workers share one data port (an inherited listener or a
                per-worker ``SO_REUSEPORT`` bind).
        """
        handler = partial(self._handle_connection, control=False)
        if sock is not None:
            self._server = await asyncio.start_server(handler, sock=sock)
        else:
            self._server = await asyncio.start_server(
                handler, self.config.host, self.config.port
            )
        self.port = self._server.sockets[0].getsockname()[1]

    async def start_control(self, host: str = "127.0.0.1") -> None:
        """Open the loopback control listener; sets :attr:`control_port`.

        The supervisor's fan-out targets this ephemeral per-worker port:
        admin requests arriving here always act on this process.
        """
        self._control_server = await asyncio.start_server(
            partial(self._handle_connection, control=True), host, 0
        )
        self.control_port = self._control_server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Run until ``/admin/shutdown`` (or ``max_requests``), then drain."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self._close()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop accepting and drain (idempotent)."""
        self._shutdown.set()

    async def _close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
        # Drain: every admitted request still holds a queue slot; wait
        # for the pool to hand all of them back before tearing down.
        deadline = time.perf_counter() + self.config.drain_timeout_s
        while self.admission.depth > 0 and time.perf_counter() < deadline:
            await asyncio.sleep(0.01)
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        control: bool = False,
    ) -> None:
        try:
            parsed = await read_http_request(reader)
            if parsed is None:
                return
            method, path, query = parsed
            status, payload = await self._route(method, path, query, control)
        except ValueError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # a handler bug must not kill the loop
            self.errors += 1
            obs_incr("serve.errors")
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            writer.write(encode_response(status, payload))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, query: Dict[str, list], control: bool
    ) -> Tuple[int, dict]:
        managed = self.supervisor_notify is not None
        if path == "/recommend":
            if method != "GET":
                return 405, {"error": "use GET /recommend"}
            return await self._handle_recommend(query)
        if path == "/health":
            engine = self.swapper.current
            return 200, {
                "status": "ok",
                "inflight_depth": self.admission.depth,
                "requests_served": self.requests_served,
                "release": engine.describe(),
            }
        if path == "/stats":
            return 200, self._stats_payload(query)
        if path == "/admin/swap":
            if method != "POST":
                return 405, {"error": "use POST /admin/swap"}
            if managed and not control:
                return 409, {
                    "error": "managed worker: POST /admin/swap to the "
                    "supervisor control port (swapping one worker would "
                    "fork the serving generation)"
                }
            return await self._handle_swap(query)
        if path == "/admin/shutdown":
            if method != "POST":
                return 405, {"error": "use POST /admin/shutdown"}
            if managed and not control:
                # Forward to the supervisor: the whole fleet drains, not
                # just whichever worker accepted this connection.
                self.supervisor_notify("shutdown")
                return 200, {"status": "shutting-down", "scope": "supervisor"}
            self.request_shutdown()
            return 200, {"status": "shutting-down"}
        return 404, {"error": f"no route {path!r}"}

    async def _handle_recommend(self, query: Dict[str, list]) -> Tuple[int, dict]:
        if "user" not in query:
            return 400, {"error": "missing required query parameter 'user'"}
        user = _parse_user(query["user"][0])
        try:
            n = int(query.get("n", [self.config.n_default])[0])
        except ValueError:
            return 400, {"error": "n must be an integer"}
        if n < 1:
            return 400, {"error": f"n must be >= 1, got {n}"}
        deadline_ms = self.config.deadline_ms
        if "deadline_ms" in query:
            try:
                deadline_ms = float(query["deadline_ms"][0])
            except ValueError:
                return 400, {"error": "deadline_ms must be a number"}
            if deadline_ms <= 0:
                return 400, {
                    "error": f"deadline_ms must be > 0, got {deadline_ms}"
                }
        fresh = query.get("fresh", ["0"])[0] not in ("", "0")

        arrival = time.perf_counter()
        engine = self.swapper.acquire_current()
        try:
            cached = self._cache_lookup(engine.generation, user, n, fresh)
            if cached is not None:
                tier, degraded, items = cached
                shed = False
                deadline_expired = False
            else:
                tier_cap = self.admission.admit()
                deadline_expired = False
                try:
                    if tier_cap == TIER_EMPTY:
                        # Shed: answered inline from the empty rung, no
                        # queue slot.
                        result = engine.recommend(user, n, max_tier=TIER_EMPTY)
                        shed = True
                    else:
                        shed = False
                        result, deadline_expired = await self._score(
                            engine, user, n, tier_cap, deadline_ms, arrival
                        )
                except ReproError as exc:
                    self.errors += 1
                    obs_incr("serve.errors")
                    return 500, {"error": f"{type(exc).__name__}: {exc}"}
                tier, degraded = result.tier, result.degraded
                items = [
                    [entry.item, entry.utility] for entry in result.items
                ]
                if (
                    self.rescache is not None
                    and not shed
                    and not deadline_expired
                ):
                    # Only clean scored responses are cached: a cached
                    # body is bit-identical to fresh scoring for its
                    # (generation, user, n, tier-cap) key.
                    self.rescache.put(
                        (engine.generation, user, n, tier_cap),
                        (tier, degraded, items),
                    )
        finally:
            engine.release_ref()

        latency = time.perf_counter() - arrival
        obs_incr("serve.requests")
        obs_add_gauge("serve.latency_total_s", latency)
        self.requests_served += 1
        self.tier_counts[tier] = self.tier_counts.get(tier, 0) + 1
        payload = {
            "user": user,
            "n": n,
            "tier": tier,
            "degraded": degraded,
            "shed": shed,
            "deadline_expired": deadline_expired,
            "generation": engine.generation,
            "items": items,
        }
        if (
            self.config.max_requests is not None
            and self.requests_served >= self.config.max_requests
        ):
            self.request_shutdown()
        return 200, payload

    def _cache_lookup(
        self, generation: int, user, n: int, fresh: bool
    ) -> Optional[Tuple[str, bool, list]]:
        """A cached clean response for this request, or None to score.

        The lookup key uses the tier the admission policy *would* grant
        at the current depth — peeked without taking a queue slot, so a
        hit never occupies admission capacity.  A peek at the empty rung
        means the server is shedding; shed responses are never cached,
        so skip straight to the (cheap, inline) shed path.
        """
        if self.rescache is None:
            return None
        if fresh:
            self.rescache.note_bypass()
            return None
        tier_cap = self.admission.policy.tier_for_depth(self.admission.depth)
        if tier_cap == TIER_EMPTY:
            return None
        return self.rescache.get((generation, user, n, tier_cap))

    async def _score(
        self,
        engine,
        user,
        n: int,
        tier_cap: str,
        deadline_ms: Optional[float],
        arrival: float,
    ):
        """Run scoring on the pool, bounded by the request's deadline.

        Returns ``(result, deadline_expired)``.  On expiry the request is
        answered inline from the rung *below* ``tier_cap`` — the thread
        pool cannot cancel a running scoring call, so the abandoned
        future keeps its own queue slot and generation ref until the
        thread really finishes (released by its done callback).
        """
        loop = asyncio.get_running_loop()

        def work():
            with span("serve.request"):
                fault_point("serve.request")
                return engine.recommend(user, n, max_tier=tier_cap)

        engine.acquire()
        future = loop.run_in_executor(self._executor, work)
        abandoned = False

        def _settle(done) -> None:
            self.admission.release()
            engine.release_ref()
            if abandoned and not done.cancelled():
                # Retrieve the exception (if any) so an abandoned failure
                # does not warn at GC time; the client already got its
                # degraded answer.
                if done.exception() is not None:
                    obs_incr("serve.deadline.abandoned_error")

        future.add_done_callback(_settle)

        if deadline_ms is None:
            return await future, False
        budget_s = deadline_ms / 1000.0 - (time.perf_counter() - arrival)
        try:
            # shield(): wait_for must give up on the future without
            # cancelling it — the executor thread is running regardless.
            result = await asyncio.wait_for(
                asyncio.shield(future), max(budget_s, 0.0)
            )
        except asyncio.TimeoutError:
            # Set before the next loop iteration can run _settle.
            abandoned = True
            obs_incr("serve.deadline.expired")
            rung = DEGRADATION_LADDER.index(tier_cap) + 1
            fallback = DEGRADATION_LADDER[
                min(rung, len(DEGRADATION_LADDER) - 1)
            ]
            return engine.recommend(user, n, max_tier=fallback), True
        obs_incr("serve.deadline.met")
        return result, False

    async def _handle_swap(self, query: Dict[str, list]) -> Tuple[int, dict]:
        if "path" not in query:
            return 400, {"error": "missing required query parameter 'path'"}
        path = query["path"][0]
        loop = asyncio.get_running_loop()

        def do_swap():
            return self.swapper.swap(
                path,
                self.social,
                mmap_dir=self.config.mmap_dir,
                drain_timeout_s=self.config.drain_timeout_s,
                store=self.store,
            )

        try:
            result = await loop.run_in_executor(self._executor, do_swap)
        except ReproError as exc:
            return 409, {
                "error": f"{type(exc).__name__}: {exc}",
                "generation": self.swapper.generation,
            }
        if self.rescache is not None:
            # Generation-keyed entries can't be served stale, but drop
            # the old generation eagerly so it stops holding capacity.
            self.rescache.evict_other_generations(result.new_generation)
        return 200, {
            "old_generation": result.old_generation,
            "new_generation": result.new_generation,
            "path": result.path,
            "inflight_at_flip": result.inflight_at_flip,
            "drained": result.drained,
            "drain_seconds": result.drain_seconds,
        }

    def _stats_payload(self, query: Dict[str, list]) -> dict:
        payload = {
            "requests_served": self.requests_served,
            "errors": self.errors,
            "tier_counts": dict(self.tier_counts),
            "depth": self.admission.depth,
            "peak_depth": self.admission.peak_depth,
            "shed": self.admission.shed_count,
            "generation": self.swapper.generation,
            "uptime_s": round(time.perf_counter() - self._started, 3),
        }
        if self.config.worker_slot is not None:
            payload["worker"] = {
                "slot": self.config.worker_slot,
                "pid": os.getpid(),
            }
        if self.rescache is not None:
            payload["response_cache"] = self.rescache.stats()
        registry = get_telemetry()
        if registry is not None:
            counters = registry.snapshot().counters
            payload["counters"] = {
                name: value
                for name, value in sorted(counters.items())
                if name.startswith(("serve.", "fault.site.serve"))
            }
            if "snapshot" in query:
                payload["snapshot"] = snapshot_to_jsonable(registry.snapshot())
        return payload


async def read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, list]]]:
    """Parse one minimal HTTP/1.1 request: ``(method, path, query)``.

    Returns None for a connection closed before sending a request line.
    Shared by the per-worker server and the supervisor front end so both
    speak the same (deliberately tiny) dialect.
    """
    line = await reader.readline()
    if not line.strip():
        return None
    if len(line) > _MAX_REQUEST_LINE:
        raise ValueError("request line too long")
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        raise ValueError("malformed request line")
    method, target = parts[0].upper(), parts[1]
    for _ in range(_MAX_HEADER_LINES):
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
    split = urlsplit(target)
    return method, split.path, parse_qs(split.query)


def encode_response(status: int, payload: dict) -> bytes:
    """One complete ``Connection: close`` HTTP/1.1 JSON response."""
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body
