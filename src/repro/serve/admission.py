"""Admission control: overload sheds down the ladder, never errors.

The accuracy/privacy trade-off line of work (Machanavajjhala et al.,
*Accurate or Private?*) is exactly why a private recommender must
degrade rather than retry under load: once the release is published,
every rung of the degradation ladder is free post-processing, so the
cheapest response to overload is a *less personalized* answer — not an
error, and never a fresh mechanism invocation that would spend epsilon.

:class:`AdmissionController` tracks the depth of the request queue
(admitted but not yet completed requests) against a bounded
:class:`AdmissionPolicy`.  Depth thresholds map to the best ladder rung
a request may be served from:

- below ``cluster_at * max_queue`` — fully personalized;
- below ``global_at * max_queue`` — cluster-popularity (skip the
  per-user similarity computation, the expensive part);
- below ``max_queue`` — global popularity (one precomputable vector);
- at ``max_queue`` — shed: the request is answered immediately with the
  empty rung and never enters the queue.

Decisions are counted under ``serve.admission.<tier>`` and
``serve.admission.shed``; the high-water mark is the
``serve.depth.peak`` gauge.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.registry import get_telemetry
from repro.obs.registry import incr as obs_incr
from repro.resilience.degradation import (
    TIER_CLUSTER,
    TIER_EMPTY,
    TIER_GLOBAL,
    TIER_PERSONALIZED,
)

__all__ = ["AdmissionPolicy", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Depth thresholds for the admission ladder.

    Args:
        max_queue: hard bound on admitted-but-unfinished requests; a
            request arriving at this depth is shed (served the empty
            rung without queueing).
        cluster_at: depth fraction of ``max_queue`` at which responses
            drop from personalized to cluster-popularity.
        global_at: depth fraction at which responses drop further to
            global popularity.
    """

    max_queue: int = 64
    cluster_at: float = 0.5
    global_at: float = 0.75

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if not 0.0 < self.cluster_at <= 1.0:
            raise ValueError(
                f"cluster_at must be in (0, 1], got {self.cluster_at}"
            )
        if not self.cluster_at <= self.global_at <= 1.0:
            raise ValueError(
                f"global_at must be in [cluster_at, 1], got {self.global_at}"
            )

    def tier_for_depth(self, depth: int) -> str:
        """Best ladder rung for a request arriving at queue ``depth``."""
        if depth >= self.max_queue:
            return TIER_EMPTY
        if depth >= self.global_at * self.max_queue:
            return TIER_GLOBAL
        if depth >= self.cluster_at * self.max_queue:
            return TIER_CLUSTER
        return TIER_PERSONALIZED


class AdmissionController:
    """Depth-tracked admission decisions for one serving process.

    Thread-safe: the HTTP front end decides on the event loop but the
    work completes on executor threads, so :meth:`admit` and
    :meth:`release` may race.
    """

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        self._depth = 0
        self._peak = 0
        self._shed = 0

    @property
    def depth(self) -> int:
        """Requests currently admitted and not yet released."""
        with self._lock:
            return self._depth

    @property
    def peak_depth(self) -> int:
        """High-water mark of the queue depth over the process lifetime."""
        with self._lock:
            return self._peak

    @property
    def shed_count(self) -> int:
        """Requests answered with the empty rung without queueing."""
        with self._lock:
            return self._shed

    def admit(self) -> str:
        """Decide the best tier for an arriving request.

        Returns the ladder rung the request may be served from.  Any
        rung other than :data:`TIER_EMPTY` takes a queue slot that the
        caller must give back with :meth:`release`; a shed
        (:data:`TIER_EMPTY`) request takes no slot and must *not* be
        released.
        """
        with self._lock:
            tier = self.policy.tier_for_depth(self._depth)
            if tier == TIER_EMPTY:
                self._shed += 1
            else:
                self._depth += 1
                if self._depth > self._peak:
                    self._peak = self._depth
                    registry = get_telemetry()
                    if registry is not None:
                        registry.set_gauge("serve.depth.peak", float(self._peak))
        if tier == TIER_EMPTY:
            obs_incr("serve.admission.shed")
        else:
            obs_incr(f"serve.admission.{tier}")
        return tier

    def release(self) -> None:
        """Give back the queue slot of one admitted request."""
        with self._lock:
            if self._depth <= 0:
                raise RuntimeError("release() without a matching admit()")
            self._depth -= 1
