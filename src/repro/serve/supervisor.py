"""Prefork serving supervisor: N worker processes, one shared release.

Serving a published release is read-only post-processing, so throughput
is an engineering problem: a single asyncio process tops out at one
Python event loop's worth of HTTP handling regardless of how fast the
scoring path gets.  :class:`ServingSupervisor` breaks that ceiling by
forking N :class:`~repro.serve.server.RecommendationServer` worker
processes that all accept on **one shared data port**:

- **reuseport mode** (default where ``socket.SO_REUSEPORT`` exists) —
  the supervisor binds a placeholder socket *without listening* (which
  reserves the port and discovers an ephemeral one; the kernel only
  distributes connections among *listening* members of a reuseport
  group, so the placeholder never strands a connection) and every
  worker binds its own ``SO_REUSEPORT`` listener for kernel-level
  load balancing.
- **inherit mode** (fallback) — the supervisor binds and listens once;
  workers inherit the listener across ``fork`` and accept from the
  shared queue.

Workers share *memory*, not just the port: the supervisor pre-validates
the release (writing the ``--mmap-dir`` sidecar) and pre-warms the
similarity kernel through the ``--cache-dir`` store once, so each
worker's load is an mmap of the same page-cache-resident artifacts
rather than a private copy or a recompute.

The single-process lifecycle guarantees survive the fan-out:

- ``POST /admin/swap?path=P`` (on the supervisor's control port)
  validates and pre-warms the new artifact once, commits it as the
  fleet target, then fans out to every worker's loopback control
  listener concurrently.  Reporting is all-or-nothing: 200 only when
  every worker swapped in place; otherwise 409 with per-worker detail —
  and any worker that failed or died is killed and respawned *on the
  new release*, so the fleet always converges on the committed
  generation.
- ``POST /admin/shutdown`` drains every worker (each stops accepting
  and finishes its in-flight requests) before the supervisor exits.
  ``/admin/shutdown`` against the shared *data* port works too: a
  managed worker forwards it up the pipe, and the whole fleet drains.
- A monitor task respawns crashed workers with exponential backoff
  (fault site ``serve.worker`` on the spawn path; counters
  ``serve.worker.{spawn,crash,respawn}``).
- ``GET /stats`` merges per-worker
  :class:`~repro.obs.registry.TelemetrySnapshot`\\ s (shipped as JSON
  via ``/stats?snapshot=1``) through the existing
  :func:`~repro.obs.registry.merge_snapshots`, alongside supervisor
  uptime, the fleet generation, worker count, and per-worker restart
  totals.

Workers are forked, so the social graph is shared copy-on-write and
never serialized.  Each worker installs a fresh telemetry registry and
clears any fault plans inherited from the supervisor's process (tests
target individual workers via ``worker_faults`` instead — a forked
plan would fire in *every* worker).
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import os
import signal
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple
from urllib.parse import quote

from repro.exceptions import ReproError
from repro.obs.export import snapshot_from_jsonable
from repro.obs.registry import Telemetry, get_telemetry
from repro.obs.registry import incr as obs_incr
from repro.obs.registry import merge_snapshots, set_telemetry
from repro.resilience.faults import FaultPlan, fault_point, reset_plans
from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.engine import ServingEngine
from repro.serve.loadgen import http_get_json, http_request_json
from repro.serve.server import (
    RecommendationServer,
    ServerConfig,
    encode_response,
    read_http_request,
)
from repro.serve.swap import HotSwapper

__all__ = ["SupervisorConfig", "ServingSupervisor"]


def _reuseport_available() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


@dataclass(frozen=True)
class SupervisorConfig:
    """Fleet-level knobs (per-worker knobs live in ``ServerConfig``).

    Args:
        workers: worker process count.
        socket_mode: ``"auto"`` (reuseport where available, else
            inherit), ``"reuseport"``, or ``"inherit"``.
        control_host / control_port: the supervisor's own admin
            listener (port 0: ephemeral, read back from
            :attr:`ServingSupervisor.control_port`).
        ready_timeout_s: bound on waiting for a spawned worker's ready
            handshake.
        swap_timeout_s: bound on one worker's swap during fan-out.
        respawn_backoff_s / respawn_backoff_max_s: exponential-backoff
            window for respawning a repeatedly crashing worker slot.
        monitor_interval_s: crash-detection poll interval.
    """

    workers: int = 2
    socket_mode: str = "auto"
    control_host: str = "127.0.0.1"
    control_port: int = 0
    ready_timeout_s: float = 60.0
    swap_timeout_s: float = 60.0
    respawn_backoff_s: float = 0.1
    respawn_backoff_max_s: float = 5.0
    monitor_interval_s: float = 0.2

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.socket_mode not in ("auto", "reuseport", "inherit"):
            raise ValueError(
                f"socket_mode must be auto|reuseport|inherit, "
                f"got {self.socket_mode!r}"
            )
        if self.socket_mode == "reuseport" and not _reuseport_available():
            raise ValueError("SO_REUSEPORT is not available on this platform")
        for name in (
            "ready_timeout_s",
            "swap_timeout_s",
            "respawn_backoff_s",
            "respawn_backoff_max_s",
            "monitor_interval_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )

    @property
    def resolved_socket_mode(self) -> str:
        if self.socket_mode != "auto":
            return self.socket_mode
        return "reuseport" if _reuseport_available() else "inherit"


class _WorkerInit:
    """Everything one worker needs, passed by reference across fork."""

    def __init__(
        self,
        release_path: str,
        social,
        measure,
        policy: AdmissionPolicy,
        server_config: ServerConfig,
        cache_dir: Optional[str],
        generation: int,
        bind: Tuple[str, int],
        sock: Optional[socket.socket],
        fault_plan: Optional[FaultPlan],
    ) -> None:
        self.release_path = release_path
        self.social = social
        self.measure = measure
        self.policy = policy
        self.server_config = server_config
        self.cache_dir = cache_dir
        self.generation = generation
        self.bind = bind
        self.sock = sock
        self.fault_plan = fault_plan


def _worker_main(slot: int, conn, init: _WorkerInit) -> None:
    """Child entry point: serve the shared port until told to drain."""
    # Fresh registry: snapshots merge at the supervisor, so per-worker
    # state must not alias (or double-count into) the parent's registry.
    set_telemetry(Telemetry(trace=False))
    # Fault plans forked from the parent would fire in every worker;
    # tests target one slot via worker_faults instead.
    reset_plans()
    try:
        if init.fault_plan is not None:
            with init.fault_plan.installed():
                asyncio.run(_worker_serve(slot, conn, init))
        else:
            asyncio.run(_worker_serve(slot, conn, init))
    except KeyboardInterrupt:
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


async def _worker_serve(slot: int, conn, init: _WorkerInit) -> None:
    from repro.core.persistence import PublishedRelease

    store = None
    if init.cache_dir is not None:
        from repro.cache import SimilarityStore

        store = SimilarityStore(init.cache_dir)
    release = PublishedRelease.load(
        init.release_path, mmap_dir=init.server_config.mmap_dir
    )
    engine = ServingEngine(
        release,
        init.social,
        measure=init.measure,
        generation=init.generation,
        path=init.release_path,
        store=store,
    )
    server = RecommendationServer(
        HotSwapper(engine),
        AdmissionController(init.policy),
        init.social,
        config=init.server_config,
        store=store,
        supervisor_notify=lambda action: conn.send(("notify", slot, action)),
    )

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass

    sock = init.sock
    if sock is None:  # reuseport mode: a private listener on the shared port
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind(init.bind)
    await server.start(sock=sock)
    await server.start_control()
    conn.send(("ready", slot, os.getpid(), server.port, server.control_port))
    await server.serve_until_shutdown()
    conn.send(("stopped", slot, server.requests_served))


class _WorkerHandle:
    """Parent-side state of one worker slot."""

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None
        self.pid: Optional[int] = None
        self.data_port: Optional[int] = None
        self.control_port: Optional[int] = None
        self.ready = False
        self.restarts = 0
        self.consecutive_failures = 0
        self.respawn_at: Optional[float] = None
        self.respawning = False

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class ServingSupervisor:
    """Owns the shared data port, the worker fleet, and the admin plane.

    Args:
        release_path: artifact every worker initially serves.
        social: the public social graph (shared with workers via fork).
        measure: similarity-measure override (default: the release's).
        server_config: per-worker serving knobs; ``host``/``port`` name
            the *shared* data bind (port 0: ephemeral).
        config: fleet knobs.
        policy: admission policy each worker instantiates privately.
        cache_dir: persistent similarity-kernel store directory; the
            supervisor pre-warms it once so workers mmap one artifact.
        worker_faults: per-slot :class:`FaultPlan` installed inside that
            worker only (tests: stall one worker's swap, fail one
            worker's requests) — a plan installed in the parent process
            would be inherited by every forked worker.
    """

    def __init__(
        self,
        release_path: str,
        social,
        measure=None,
        server_config: ServerConfig = ServerConfig(),
        config: SupervisorConfig = SupervisorConfig(),
        policy: Optional[AdmissionPolicy] = None,
        cache_dir: Optional[str] = None,
        worker_faults: Optional[Dict[int, FaultPlan]] = None,
    ) -> None:
        self.release_path = release_path
        self.social = social
        self.measure = measure
        self.server_config = server_config
        self.config = config
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.cache_dir = cache_dir
        self.worker_faults = dict(worker_faults or {})
        self.generation = 0
        self.port: Optional[int] = None
        self.control_port: Optional[int] = None
        self._started = time.perf_counter()
        self._data_sock: Optional[socket.socket] = None
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._workers: List[_WorkerHandle] = [
            _WorkerHandle(slot) for slot in range(config.workers)
        ]
        self._mp = multiprocessing.get_context("fork")
        self._shutdown = asyncio.Event()
        self._stopping = False
        self.final_stats: Optional[dict] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._swap_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm the release, bind the shared port, spawn the fleet."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._prewarm, self.release_path)
        self._bind_data_socket()
        for handle in self._workers:
            self._spawn(handle)
        await asyncio.gather(
            *(self._wait_ready(handle) for handle in self._workers)
        )
        self._control_server = await asyncio.start_server(
            self._handle_connection,
            self.config.control_host,
            self.config.control_port,
        )
        self.control_port = self._control_server.sockets[0].getsockname()[1]
        self._monitor_task = asyncio.create_task(self._monitor())

    async def serve_until_shutdown(self) -> None:
        """Run until ``/admin/shutdown`` (or a forwarded one), then drain."""
        if self._control_server is None:
            await self.start()
        await self._shutdown.wait()
        await self._close()

    def request_shutdown(self) -> None:
        """Ask the supervisor loop to drain the fleet and exit (idempotent)."""
        self._shutdown.set()

    async def _close(self) -> None:
        self._stopping = True
        try:
            # One last merged view while workers can still answer — the
            # CLI prints it as the shutdown summary.
            self.final_stats: Optional[dict] = await self._stats_payload()
        except Exception:
            self.final_stats = None
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
        # Graceful fleet drain: each worker stops accepting, finishes
        # its in-flight requests, and exits on its own.
        await asyncio.gather(
            *(self._stop_worker(handle) for handle in self._workers)
        )
        if self._data_sock is not None:
            self._data_sock.close()
            self._data_sock = None

    async def _stop_worker(self, handle: _WorkerHandle) -> None:
        if handle.alive and handle.control_port is not None:
            try:
                await asyncio.wait_for(
                    http_request_json(
                        "127.0.0.1",
                        handle.control_port,
                        "POST",
                        "/admin/shutdown",
                    ),
                    timeout=5.0,
                )
            except (OSError, ValueError, asyncio.TimeoutError):
                pass
        if handle.process is not None:
            deadline = (
                time.perf_counter() + self.server_config.drain_timeout_s + 5.0
            )
            while handle.process.is_alive():
                if time.perf_counter() >= deadline:
                    handle.process.kill()
                    break
                await asyncio.sleep(0.02)
            handle.process.join(timeout=5.0)

    # ------------------------------------------------------------------
    # sockets + spawning
    # ------------------------------------------------------------------
    def _bind_data_socket(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.config.resolved_socket_mode == "reuseport":
            # Placeholder member of the reuseport group: binding (never
            # listening) pins the port for the fleet's lifetime; the
            # kernel only routes connections to *listening* sockets.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.server_config.host, self.server_config.port))
        else:
            # Inherit mode: the one real listener, shared through fork.
            sock.bind((self.server_config.host, self.server_config.port))
            sock.listen(128)
        self._data_sock = sock
        self.port = sock.getsockname()[1]

    def _spawn(self, handle: _WorkerHandle) -> None:
        """Fork one worker for ``handle``'s slot (fault site ``serve.worker``)."""
        fault_point("serve.worker")
        parent_conn, child_conn = self._mp.Pipe()
        init = _WorkerInit(
            release_path=self.release_path,
            social=self.social,
            measure=self.measure,
            policy=self.policy,
            server_config=dataclasses.replace(
                self.server_config,
                port=self.port if self.port is not None else 0,
                worker_slot=handle.slot,
            ),
            cache_dir=self.cache_dir,
            generation=self.generation,
            bind=(self.server_config.host, self.port or 0),
            sock=(
                self._data_sock
                if self.config.resolved_socket_mode == "inherit"
                else None
            ),
            fault_plan=self.worker_faults.get(handle.slot),
        )
        process = self._mp.Process(
            target=_worker_main,
            args=(handle.slot, child_conn, init),
            daemon=True,
            name=f"repro-serve-worker-{handle.slot}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.pid = process.pid
        handle.ready = False
        handle.data_port = None
        handle.control_port = None
        obs_incr("serve.worker.spawn")

    async def _wait_ready(self, handle: _WorkerHandle) -> None:
        deadline = time.perf_counter() + self.config.ready_timeout_s
        while not handle.ready:
            self._drain_messages(handle)
            if handle.ready:
                break
            if not handle.alive:
                raise ReproError(
                    f"serve worker {handle.slot} (pid {handle.pid}) exited "
                    f"before becoming ready"
                )
            if time.perf_counter() >= deadline:
                raise ReproError(
                    f"serve worker {handle.slot} (pid {handle.pid}) not "
                    f"ready within {self.config.ready_timeout_s:g}s"
                )
            await asyncio.sleep(0.01)

    def _drain_messages(self, handle: _WorkerHandle) -> None:
        conn = handle.conn
        if conn is None:
            return
        while True:
            try:
                if not conn.poll():
                    return
                message = conn.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "ready":
                _, _slot, pid, data_port, control_port = message
                handle.pid = pid
                handle.data_port = data_port
                handle.control_port = control_port
                handle.ready = True
                handle.consecutive_failures = 0
            elif kind == "notify" and message[2] == "shutdown":
                # /admin/shutdown arrived on the shared data port; the
                # whole fleet drains, not one worker.
                self.request_shutdown()
            elif kind == "stopped" and not self._stopping:
                # A worker finished on its own terms (per-worker
                # max_requests): drain the fleet instead of respawning
                # an endless replacement.
                self.request_shutdown()

    # ------------------------------------------------------------------
    # crash monitoring + respawn
    # ------------------------------------------------------------------
    async def _monitor(self) -> None:
        interval = self.config.monitor_interval_s
        while not self._shutdown.is_set():
            for handle in self._workers:
                self._drain_messages(handle)
                if (
                    self._stopping
                    or self._shutdown.is_set()
                    or handle.respawning
                ):
                    continue
                if handle.process is not None and not handle.alive:
                    self._note_crash(handle)
                if (
                    handle.respawn_at is not None
                    and time.perf_counter() >= handle.respawn_at
                ):
                    await self._try_respawn(handle)
            await asyncio.sleep(interval)

    def _note_crash(self, handle: _WorkerHandle) -> None:
        """Schedule a respawn for a dead slot with exponential backoff."""
        if handle.respawn_at is not None:
            return
        obs_incr("serve.worker.crash")
        handle.consecutive_failures += 1
        backoff = min(
            self.config.respawn_backoff_s
            * (2 ** (handle.consecutive_failures - 1)),
            self.config.respawn_backoff_max_s,
        )
        handle.respawn_at = time.perf_counter() + backoff
        handle.ready = False

    async def _try_respawn(self, handle: _WorkerHandle) -> None:
        handle.respawning = True
        try:
            handle.respawn_at = None
            if handle.process is not None:
                handle.process.join(timeout=1.0)
            self._spawn(handle)
            handle.restarts += 1
            obs_incr("serve.worker.respawn")
            await self._wait_ready(handle)
        except Exception:
            # Spawn fault (serve.worker site raising any exception) or a
            # worker that died again before ready: back off harder and
            # retry on the next monitor pass.
            self._note_crash(handle)
        finally:
            handle.respawning = False

    # ------------------------------------------------------------------
    # admin plane
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            parsed = await read_http_request(reader)
            if parsed is None:
                return
            method, path, query = parsed
            status, payload = await self._route(method, path, query)
        except ValueError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # admin bugs must not kill the fleet
            obs_incr("serve.errors")
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            writer.write(encode_response(status, payload))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _route(
        self, method: str, path: str, query: Dict[str, list]
    ) -> Tuple[int, dict]:
        if path == "/health":
            return 200, {
                "status": "ok",
                "role": "supervisor",
                "port": self.port,
                "generation": self.generation,
                "socket_mode": self.config.resolved_socket_mode,
                "workers": {
                    "count": len(self._workers),
                    "alive": sum(1 for h in self._workers if h.alive),
                },
            }
        if path == "/stats":
            return 200, await self._stats_payload()
        if path == "/admin/swap":
            if method != "POST":
                return 405, {"error": "use POST /admin/swap"}
            return await self._handle_swap(query)
        if path == "/admin/shutdown":
            if method != "POST":
                return 405, {"error": "use POST /admin/shutdown"}
            self.request_shutdown()
            return 200, {
                "status": "shutting-down",
                "scope": "supervisor",
                "workers": len(self._workers),
            }
        return 404, {"error": f"no route {path!r}"}

    async def _worker_stats(self, handle: _WorkerHandle) -> Optional[dict]:
        if not handle.alive or handle.control_port is None:
            return None
        try:
            status, payload = await asyncio.wait_for(
                http_get_json(
                    "127.0.0.1", handle.control_port, "/stats?snapshot=1"
                ),
                timeout=5.0,
            )
        except (OSError, ValueError, asyncio.TimeoutError):
            return None
        if status != 200:
            return None
        return payload

    async def _stats_payload(self) -> dict:
        per_worker = await asyncio.gather(
            *(self._worker_stats(handle) for handle in self._workers)
        )
        workers = []
        tier_counts: Dict[str, int] = {}
        cache_totals: Dict[str, int] = {}
        totals = {"requests_served": 0, "errors": 0, "shed": 0, "depth": 0}
        peak_depth = 0
        snapshots = []
        for handle, stats in zip(self._workers, per_worker):
            row = {
                "slot": handle.slot,
                "pid": handle.pid,
                "alive": handle.alive,
                "restarts": handle.restarts,
            }
            if stats is not None:
                row.update(
                    {
                        "generation": stats.get("generation"),
                        "uptime_s": stats.get("uptime_s"),
                        "requests_served": stats.get("requests_served", 0),
                    }
                )
                for name in totals:
                    totals[name] += int(stats.get(name, 0))
                peak_depth = max(peak_depth, int(stats.get("peak_depth", 0)))
                for tier, count in stats.get("tier_counts", {}).items():
                    tier_counts[tier] = tier_counts.get(tier, 0) + int(count)
                for name, value in stats.get("response_cache", {}).items():
                    if name != "capacity":
                        cache_totals[name] = cache_totals.get(
                            name, 0
                        ) + int(value)
                if "snapshot" in stats:
                    snapshots.append(snapshot_from_jsonable(stats["snapshot"]))
            workers.append(row)
        payload: Dict[str, object] = {
            "role": "supervisor",
            "uptime_s": round(time.perf_counter() - self._started, 3),
            "generation": self.generation,
            "port": self.port,
            "workers": {
                "count": len(self._workers),
                "alive": sum(1 for h in self._workers if h.alive),
                "restarts_total": sum(h.restarts for h in self._workers),
                "per_worker": workers,
            },
            "tier_counts": tier_counts,
            "peak_depth": peak_depth,
            **totals,
        }
        if cache_totals:
            payload["response_cache"] = cache_totals
        if snapshots:
            merged = merge_snapshots(snapshots)
            payload["counters"] = {
                name: value
                for name, value in sorted(merged.counters.items())
                if name.startswith(("serve.", "fault.site.serve"))
            }
            registry = get_telemetry()
            if registry is not None:
                # Add the supervisor's own counters (spawn/respawn,
                # fault.site.serve.worker) on top of the per-worker
                # merge; each side contributes each name exactly once.
                own = {
                    name: value
                    for name, value in registry.snapshot().counters.items()
                    if name.startswith(("serve.", "fault.site.serve"))
                }
                merged_counters = payload["counters"]
                payload["counters"] = {
                    name: own.get(name, 0) + merged_counters.get(name, 0)
                    for name in sorted(set(own) | set(merged_counters))
                }
        return payload

    def _prewarm(self, path: str) -> None:
        """Validate ``path`` and warm the shared artifacts exactly once.

        Loading writes the ``mmap_dir`` sidecar and building the engine
        warms the kernel through ``cache_dir``, so the N workers that
        load next mmap page-cache-resident files instead of recomputing
        (or failing N times on a corrupt artifact).
        """
        from repro.core.persistence import PublishedRelease

        store = None
        if self.cache_dir is not None:
            from repro.cache import SimilarityStore

            store = SimilarityStore(self.cache_dir)
        release = PublishedRelease.load(
            path, mmap_dir=self.server_config.mmap_dir
        )
        ServingEngine(
            release,
            self.social,
            measure=self.measure,
            generation=self.generation,
            path=path,
            store=store,
        )

    async def _swap_worker(
        self, handle: _WorkerHandle, path: str
    ) -> Tuple[_WorkerHandle, Optional[dict], Optional[str]]:
        if not handle.alive or handle.control_port is None:
            return handle, None, "worker not running"
        try:
            status, payload = await asyncio.wait_for(
                http_request_json(
                    "127.0.0.1",
                    handle.control_port,
                    "POST",
                    f"/admin/swap?path={quote(path)}",
                ),
                timeout=self.config.swap_timeout_s,
            )
        except (OSError, ValueError, asyncio.TimeoutError) as exc:
            return handle, None, f"{type(exc).__name__}: {exc}"
        if status != 200:
            return handle, None, str(payload.get("error", f"HTTP {status}"))
        return handle, payload, None

    async def _handle_swap(self, query: Dict[str, list]) -> Tuple[int, dict]:
        if "path" not in query:
            return 400, {"error": "missing required query parameter 'path'"}
        path = query["path"][0]
        loop = asyncio.get_running_loop()
        async with self._swap_lock:
            # Validate + warm once, *before* committing: a corrupt
            # artifact must leave the whole fleet on the old generation.
            try:
                await loop.run_in_executor(None, self._prewarm, path)
            except ReproError as exc:
                return 409, {
                    "error": f"{type(exc).__name__}: {exc}",
                    "generation": self.generation,
                }
            old_generation = self.generation
            # Commit the fleet target first: any worker respawned from
            # here on (including swap casualties below) starts directly
            # on the new release, so the fleet converges no matter how
            # the fan-out goes.
            self.release_path = path
            self.generation += 1
            results = await asyncio.gather(
                *(
                    self._swap_worker(handle, path)
                    for handle in self._workers
                )
            )
        swapped, failed = [], []
        for handle, payload, error in results:
            if error is None:
                swapped.append(
                    {
                        "slot": handle.slot,
                        "old_generation": payload["old_generation"],
                        "new_generation": payload["new_generation"],
                        "inflight_at_flip": payload["inflight_at_flip"],
                        "drained": payload["drained"],
                    }
                )
            else:
                failed.append({"slot": handle.slot, "error": error})
                await self._replace_worker(handle)
        body: Dict[str, object] = {
            "old_generation": old_generation,
            "new_generation": self.generation,
            "path": path,
            "workers_swapped": len(swapped),
            "workers_replaced": len(failed),
            "per_worker": swapped,
        }
        if failed:
            body["error"] = (
                f"{len(failed)} worker(s) failed to swap in place and "
                f"were replaced on the new release"
            )
            body["failures"] = failed
            return 409, body
        return 200, body

    async def _replace_worker(self, handle: _WorkerHandle) -> None:
        """Kill a swap casualty and respawn it on the committed release."""
        handle.respawning = True
        try:
            if handle.process is not None and handle.process.is_alive():
                handle.process.kill()
            if handle.process is not None:
                handle.process.join(timeout=5.0)
            handle.respawn_at = None
            try:
                self._spawn(handle)
                handle.restarts += 1
                obs_incr("serve.worker.respawn")
                await self._wait_ready(handle)
            except Exception:
                self._note_crash(handle)
        finally:
            handle.respawning = False
