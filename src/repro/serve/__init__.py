"""repro.serve — the online serving tier.

The paper's end product is a *released* artifact: once the noisy
cluster-item averages are published, recommendations are pure
post-processing and can be served forever at zero additional privacy
cost.  This package turns that observation into a long-lived service:

- :mod:`repro.serve.admission` — bounded-queue admission control whose
  depth thresholds shift responses down the degradation ladder
  (personalized → cluster-popularity → global-popularity → empty)
  instead of erroring under overload;
- :mod:`repro.serve.engine` — a release generation bound to its
  :class:`~repro.core.persistence.ReleaseServer` with in-flight
  refcounting, so hot swaps can drain the old generation;
- :mod:`repro.serve.swap` — hot release swap: load release vN+1 in the
  background, atomically flip the serving reference, drain vN;
- :mod:`repro.serve.server` — the asyncio HTTP front end (stdlib
  streams, no dependencies) with ``/recommend``, ``/health``,
  ``/stats``, and admin swap/shutdown endpoints;
- :mod:`repro.serve.rescache` — a generation-keyed LRU response cache:
  repeat requests skip scoring, hot swaps invalidate for free because
  the generation id is part of every key;
- :mod:`repro.serve.supervisor` — the prefork supervisor: N forked
  worker processes accepting on one shared data port (SO_REUSEPORT or
  an inherited listener) over the same mmap'd release pages, with
  swap fan-out, crash respawn, and merged ``/stats``;
- :mod:`repro.serve.loadgen` — a deterministic seeded load generator
  (closed- and open-loop, single- or multi-process) used by the tests,
  the serving benchmark, and ``repro serve bench``.

Everything is stdlib + numpy; telemetry flows through :mod:`repro.obs`
(``serve.tier.*``, ``serve.admission.*``, ``serve.swap.*`` counters and
``serve.request`` spans) and is inert unless a registry is active.
See ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.engine import ServingEngine
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadGenerator,
    LoadReport,
    RequestRecord,
    http_get_json,
    http_request_json,
    percentile,
    run_multiprocess,
)
from repro.serve.rescache import ResponseCache
from repro.serve.server import RecommendationServer, ServerConfig
from repro.serve.supervisor import ServingSupervisor, SupervisorConfig
from repro.serve.swap import HotSwapper, SwapResult

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "ServingEngine",
    "HotSwapper",
    "SwapResult",
    "RecommendationServer",
    "ServerConfig",
    "ResponseCache",
    "ServingSupervisor",
    "SupervisorConfig",
    "LoadgenConfig",
    "LoadGenerator",
    "LoadReport",
    "RequestRecord",
    "percentile",
    "run_multiprocess",
    "http_get_json",
    "http_request_json",
]
