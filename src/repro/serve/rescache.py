"""Generation-keyed response cache: repeat requests skip scoring.

Serving a published release is pure post-processing, so for a fixed
release generation the response to ``(user, n, tier)`` is a *constant*
— the scoring path is deterministic end to end (the noise was drawn at
publication, never at query time).  That makes response caching trivially
sound: a cached entry can never go stale *within* a generation, and a
hot swap invalidates the whole cache for free because the generation id
is part of every key — no flush coordination, no TTLs, no races with
the swap drain.

:class:`ResponseCache` is a bounded LRU over
``(generation, user, n, tier)`` keys.  The serving tier consults it
*before* taking an admission-queue slot, so a hit costs one dict lookup
on the event loop and never touches the scoring executor.  Entries are
only written for clean scored responses: shed requests (the empty rung
is cheaper than the lookup) and deadline-expired responses (degraded by
timing, not by depth) are never cached, so a cached body is always
bit-identical to what fresh scoring would produce for the same key.

Requests may bypass the cache with ``?fresh=1``; the fresh result still
refreshes the entry.  Counters: ``serve.rescache.{hit,miss,evict,
bypass}`` (mirrored locally for ``/stats`` when telemetry is off).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.obs.registry import incr as obs_incr

__all__ = ["ResponseCache", "CachedResponse"]

# What one cache entry replays: (tier, degraded, items payload) — the
# scored fields of a /recommend body.  Everything else in the body
# (user, n, generation) is part of the key, and the flags a cached
# response implies (shed=False, deadline_expired=False) are invariants
# of the entries we admit.
CachedResponse = Tuple[str, bool, list]


class ResponseCache:
    """A bounded, thread-safe LRU of scored ``/recommend`` responses.

    Args:
        capacity: maximum retained entries; the least recently used
            entry is evicted (and counted) beyond it.

    Keys are ``(generation, user, n, tier)`` tuples; stale generations
    age out through normal LRU pressure and can be dropped eagerly with
    :meth:`evict_other_generations` after a hot swap.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, CachedResponse]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[CachedResponse]:
        """The cached response for ``key``, counting a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is None:
            obs_incr("serve.rescache.miss")
        else:
            obs_incr("serve.rescache.hit")
        return entry

    def put(self, key: Hashable, response: CachedResponse) -> None:
        """Store (or refresh) ``key``, evicting LRU entries beyond capacity."""
        evicted = 0
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            obs_incr("serve.rescache.evict", evicted)

    def note_bypass(self) -> None:
        """Count one ``?fresh=1`` request that skipped the lookup."""
        with self._lock:
            self.bypasses += 1
        obs_incr("serve.rescache.bypass")

    def evict_other_generations(self, generation: int) -> int:
        """Drop every entry not belonging to ``generation``.

        Correctness never needs this — stale generations can't be looked
        up again — but a hot swap calls it so the old generation's
        entries stop occupying capacity the moment they become garbage.
        """
        with self._lock:
            stale = [k for k in self._entries if k[0] != generation]
            for key in stale:
                del self._entries[key]
            self.evictions += len(stale)
        if stale:
            obs_incr("serve.rescache.evict", len(stale))
        return len(stale)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for ``/stats`` (works with telemetry off)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "bypasses": self.bypasses,
            }
