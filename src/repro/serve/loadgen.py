"""Deterministic load generation for the serving tier.

One seeded :class:`LoadGenerator` drives both the tests and the CI
benchmark, in two modes:

- **closed loop** — ``concurrency`` workers each hold one request in
  flight at a time; offered load adapts to the server, so the measured
  rate *is* the sustained QPS at that concurrency.
- **open loop** — requests fire at seeded exponential (Poisson)
  arrival times regardless of completions; offered load is fixed, so
  pushing ``rate`` past capacity is how the tests saturate admission
  control and observe the tier ladder shift.

The request *schedule* — which user, at what offset — is precomputed
from the seed alone, so two runs against the same server issue
byte-identical request streams (response timings naturally vary).
Results aggregate into a :class:`LoadReport` with deterministic
nearest-rank percentiles (p50/p99), sustained QPS, and per-tier counts.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import math
import multiprocessing
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LoadgenConfig",
    "RequestRecord",
    "LoadReport",
    "LoadGenerator",
    "run_multiprocess",
    "percentile",
    "http_get_json",
    "http_request_json",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Args:
        values: sample values (need not be sorted).
        q: percentile in [0, 100].

    Raises:
        ValueError: for an empty sample or q outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run's shape.

    Args:
        requests: total requests to issue.
        mode: ``"closed"`` (fixed concurrency) or ``"open"`` (fixed
            arrival rate).
        concurrency: in-flight bound for closed loop.
        rate: arrivals per second for open loop.
        n: requested list length.
        seed: drives the user sequence and the open-loop arrivals.
        timeout_s: per-request client timeout.
    """

    requests: int = 100
    mode: str = "closed"
    concurrency: int = 8
    rate: float = 200.0
    n: int = 10
    seed: int = 0
    timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")


@dataclass(frozen=True)
class RequestRecord:
    """One completed request as the client saw it."""

    user: object
    latency_s: float
    status: int
    tier: str
    generation: int
    shed: bool


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    records: List[RequestRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def ok_count(self) -> int:
        return sum(1 for r in self.records if r.status == 200)

    @property
    def error_count(self) -> int:
        return len(self.records) - self.ok_count

    @property
    def qps(self) -> float:
        """Sustained completed-requests-per-second over the run."""
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.records) / self.wall_seconds

    @property
    def latencies_ms(self) -> List[float]:
        return [r.latency_s * 1000.0 for r in self.records]

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms, 50.0)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms, 99.0)

    def tier_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.tier] = counts.get(record.tier, 0) + 1
        return counts

    def summary(self) -> str:
        tiers = ", ".join(
            f"{tier}={count}" for tier, count in sorted(self.tier_counts().items())
        )
        return (
            f"{self.count} request(s) in {self.wall_seconds:.2f}s "
            f"({self.qps:,.0f} req/s): p50 {self.p50_ms:.2f} ms, "
            f"p99 {self.p99_ms:.2f} ms, {self.error_count} error(s); "
            f"tiers [{tiers}]"
        )


class LoadGenerator:
    """A seeded request stream against one serving endpoint.

    Args:
        users: universe the request stream draws targets from (with
            replacement, seeded).
        config: the run's shape.
    """

    def __init__(self, users: Sequence[object], config: LoadgenConfig) -> None:
        if not users:
            raise ValueError("loadgen needs a non-empty user universe")
        self.users = list(users)
        self.config = config
        rng = random.Random(f"loadgen:{config.seed}")
        self._user_sequence: List[object] = [
            self.users[rng.randrange(len(self.users))]
            for _ in range(config.requests)
        ]
        offsets: List[float] = []
        clock = 0.0
        for _ in range(config.requests):
            clock += rng.expovariate(config.rate)
            offsets.append(clock)
        self._arrival_offsets: List[float] = offsets

    def schedule(self) -> List[Tuple[object, float]]:
        """The deterministic request schedule: ``(user, arrival_offset_s)``.

        Closed-loop runs ignore the offsets (dispatch is completion-
        driven); open-loop runs fire request *i* at ``offsets[i]``.
        """
        return list(zip(self._user_sequence, self._arrival_offsets))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, host: str, port: int) -> LoadReport:
        """Issue the whole schedule against ``host:port`` and aggregate."""
        return asyncio.run(self.run_async(host, port))

    async def run_async(self, host: str, port: int) -> LoadReport:
        loop = asyncio.get_running_loop()
        records: List[Optional[RequestRecord]] = [None] * self.config.requests
        start = loop.time()
        if self.config.mode == "closed":
            await self._run_closed(host, port, records)
        else:
            await self._run_open(host, port, records)
        wall = loop.time() - start
        return LoadReport(
            records=[r for r in records if r is not None], wall_seconds=wall
        )

    async def _run_closed(self, host, port, records) -> None:
        next_index = iter(range(self.config.requests))

        async def worker():
            for index in next_index:
                records[index] = await self._issue(host, port, index)

        workers = [
            asyncio.ensure_future(worker())
            for _ in range(min(self.config.concurrency, self.config.requests))
        ]
        await asyncio.gather(*workers)

    async def _run_open(self, host, port, records) -> None:
        loop = asyncio.get_running_loop()
        start = loop.time()

        async def fire(index: int) -> None:
            delay = start + self._arrival_offsets[index] - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            records[index] = await self._issue(host, port, index)

        tasks = [
            asyncio.ensure_future(fire(i)) for i in range(self.config.requests)
        ]
        await asyncio.gather(*tasks)

    async def _issue(self, host: str, port: int, index: int) -> RequestRecord:
        user = self._user_sequence[index]
        loop = asyncio.get_running_loop()
        issued = loop.time()
        try:
            status, payload = await asyncio.wait_for(
                http_get_json(
                    host,
                    port,
                    f"/recommend?user={user}&n={self.config.n}",
                ),
                timeout=self.config.timeout_s,
            )
        except (OSError, asyncio.TimeoutError, ValueError) as exc:
            return RequestRecord(
                user=user,
                latency_s=loop.time() - issued,
                status=599,
                tier=f"client-error:{type(exc).__name__}",
                generation=-1,
                shed=False,
            )
        return RequestRecord(
            user=user,
            latency_s=loop.time() - issued,
            status=status,
            tier=str(payload.get("tier", "unknown")),
            generation=int(payload.get("generation", -1)),
            shed=bool(payload.get("shed", False)),
        )


def _client_main(host, port, users, config, queue) -> None:
    """One loadgen client process: run a schedule, ship records back."""
    report = LoadGenerator(users, config).run(host, port)
    queue.put((report.records, report.wall_seconds))


def run_multiprocess(
    host: str,
    port: int,
    users: Sequence[object],
    config: LoadgenConfig,
    clients: int = 2,
) -> LoadReport:
    """Drive ``host:port`` from several loadgen *processes* at once.

    A single asyncio client process is itself GIL-bound and can cap the
    measured throughput of a multi-worker server below what the server
    actually sustains; this fans the load out over ``clients`` forked
    processes (client *i* runs ``config.requests // clients`` requests
    under ``seed + i``, so the union schedule is deterministic) and
    merges the records.  ``wall_seconds`` is the slowest client's wall
    clock — all clients run concurrently, so that is the window in which
    every record completed and QPS stays conservative.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if clients == 1:
        return LoadGenerator(users, config).run(host, port)
    share, remainder = divmod(config.requests, clients)
    ctx = multiprocessing.get_context("fork")
    queue = ctx.SimpleQueue()
    processes = []
    for index in range(clients):
        requests = share + (1 if index < remainder else 0)
        if requests == 0:
            continue
        child_config = dataclasses.replace(
            config, requests=requests, seed=config.seed + index
        )
        process = ctx.Process(
            target=_client_main,
            args=(host, port, list(users), child_config, queue),
            daemon=True,
        )
        process.start()
        processes.append(process)
    records: List[RequestRecord] = []
    wall = 0.0
    for _ in processes:
        client_records, client_wall = queue.get()
        records.extend(client_records)
        wall = max(wall, client_wall)
    for process in processes:
        process.join()
    return LoadReport(records=records, wall_seconds=wall)


async def http_request_json(
    host: str, port: int, method: str, target: str
) -> Tuple[int, dict]:
    """One HTTP request against the serving tier; returns (status, JSON).

    Raises:
        OSError: connection failures.
        ValueError: responses that do not parse as HTTP + JSON.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            (
                f"{method} {target} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("ascii")
        )
        await writer.drain()
        # Read headers, then exactly Content-Length body bytes.  Never
        # wait for EOF: a prefork supervisor that respawns a worker while
        # this request is in flight forks a duplicate of the connection
        # fd into the child, deferring EOF until that worker exits.
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ValueError("malformed HTTP response (no header terminator)")
        length = None
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ValueError(
                        f"malformed Content-Length {value.strip()!r}"
                    )
        if length is not None:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ValueError("truncated HTTP response body")
        else:
            body = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ValueError(f"malformed HTTP status line {status_line!r}")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"response body is not JSON: {exc}")
    return int(parts[1]), payload


async def http_get_json(host: str, port: int, target: str) -> Tuple[int, dict]:
    """``GET`` convenience wrapper over :func:`http_request_json`."""
    return await http_request_json(host, port, "GET", target)
