"""One release generation bound to a server, with in-flight refcounting.

Hot swap needs two properties from the thing it swaps: the flip must be
a single atomic reference assignment, and the old generation must be
drainable — the swapper has to know when every request that started
against release vN has finished, so vN's resources (its mmap, its
similarity cache) can be let go with **zero failed in-flight requests**.
:class:`ServingEngine` provides both: it wraps a
:class:`~repro.core.persistence.ReleaseServer` for one loaded release
and counts requests in flight against it.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.persistence import PublishedRelease, ReleaseServer
from repro.graph.protocol import GraphLike
from repro.resilience.degradation import TIER_PERSONALIZED
from repro.similarity.base import SimilarityMeasure
from repro.types import RecommendationList, UserId

__all__ = ["ServingEngine"]


class ServingEngine:
    """A refcounted serving handle over one release generation.

    Args:
        release: the loaded (and verified) release artifact.
        social: the public social graph queries are personalized against.
        measure: similarity measure override; defaults to the release's
            recorded measure.
        generation: monotonically increasing swap generation, reported
            on every response.
        path: where the release was loaded from (None for in-memory
            releases), reported by ``/health`` and swap results.
        store: optional persistent
            :class:`~repro.cache.store.SimilarityStore` the kernel is
            warmed through.
        warm: precompute the similarity kernel at construction — i.e.
            during the initial load or the background phase of a hot
            swap — so no request (and no thundering herd of first
            requests) pays the kernel build.
    """

    def __init__(
        self,
        release: PublishedRelease,
        social: GraphLike,
        measure: Optional[SimilarityMeasure] = None,
        generation: int = 0,
        path: Optional[str] = None,
        store=None,
        warm: bool = True,
    ) -> None:
        self.release = release
        self.generation = generation
        self.path = path
        self.server: ReleaseServer = release.server(social, measure)
        if warm:
            self.server.warm(store=store)
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._inflight = 0

    @property
    def inflight(self) -> int:
        """Requests currently executing against this generation."""
        with self._lock:
            return self._inflight

    def acquire(self) -> "ServingEngine":
        """Count one request in flight against this generation."""
        with self._lock:
            self._inflight += 1
        return self

    def release_ref(self) -> None:
        """Finish one in-flight request; wakes a draining swapper."""
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("release_ref() without a matching acquire()")
            self._inflight -= 1
            if self._inflight == 0:
                self._drained.notify_all()

    def wait_drained(self, timeout_s: Optional[float] = None) -> bool:
        """Block until no request is in flight; True when fully drained."""
        with self._lock:
            if self._inflight == 0:
                return True
            self._drained.wait_for(lambda: self._inflight == 0, timeout=timeout_s)
            return self._inflight == 0

    def recommend(
        self, user: UserId, n: int = 10, max_tier: str = TIER_PERSONALIZED
    ) -> RecommendationList:
        """Serve one request from this generation (see ReleaseServer)."""
        return self.server.recommend(user, n, max_tier=max_tier)

    def describe(self) -> dict:
        """JSON-representable summary for ``/health`` and swap results."""
        weights = self.release.weights
        return {
            "generation": self.generation,
            "path": self.path,
            "epsilon": None
            if weights.epsilon == float("inf")
            else weights.epsilon,
            "measure": self.release.measure_name,
            "num_items": len(weights.items),
            "num_clusters": weights.clustering.num_clusters,
            "num_users": weights.clustering.num_users,
        }
