"""Deterministic, seed-driven fault injection.

Library code marks interesting failure surfaces with
:func:`fault_point` calls — ``fault_point("release.load", path=...)``
before reading an artifact, ``fault_point("batch.chunk")`` inside the
vectorised scoring loop, and so on.  With no plan installed the hook is
a dictionary lookup and costs nothing.  Tests and benchmarks install a
:class:`FaultPlan` to make specific sites fail in specific, reproducible
ways::

    plan = FaultPlan([
        FaultSpec(site="release.load", kind="raise", on_call=1),
        FaultSpec(site="release.save.pre-replace", kind="truncate", keep=64),
    ], seed=7)
    with plan.installed():
        ...   # first load raises OSError; saves write a torn tmp file

Fault kinds:

- ``"raise"`` — raise ``exc`` (default ``OSError``, so the default
  :class:`~repro.resilience.retry.RetryPolicy` treats it as transient).
- ``"truncate"`` — cut the file passed to the fault point down to
  ``keep`` bytes (a torn write).
- ``"bitflip"`` — flip one seed-chosen bit of the file (silent media
  corruption; checksums must catch it).
- ``"slow"`` — sleep ``delay`` seconds (a stalled disk / network).

Plans are installed on a stack, so nested ``with`` blocks compose; the
innermost plan sees each fault point first and sites it does not match
fall through to outer plans.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.obs.registry import get_telemetry

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "fault_point",
    "active_plan",
    "reset_plans",
    "truncate_file",
    "bit_flip_file",
]

_KINDS = ("raise", "truncate", "bitflip", "slow")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault at one site.

    Args:
        site: exact fault-point name to match.
        kind: one of ``raise``, ``truncate``, ``bitflip``, ``slow``.
        on_call: 1-based call number (per site, per plan) the fault fires
            on.  Calls before and after pass through, which is how
            "fail once, then succeed" transient faults are expressed.
        repeat: fire on *every* call >= ``on_call`` instead of just once.
        exc: exception class or instance for ``raise`` faults.
        keep: bytes to keep for ``truncate`` faults.
        delay: seconds to stall for ``slow`` faults.
    """

    site: str
    kind: str = "raise"
    on_call: int = 1
    repeat: bool = False
    exc: "Type[BaseException] | BaseException" = OSError
    keep: int = 0
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.on_call < 1:
            raise ValueError(f"on_call must be >= 1, got {self.on_call}")

    def fires_on(self, call_number: int) -> bool:
        if self.repeat:
            return call_number >= self.on_call
        return call_number == self.on_call


def truncate_file(path: str, keep: int) -> None:
    """Cut ``path`` down to its first ``keep`` bytes (simulated torn write)."""
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    with open(path, "r+b") as handle:
        handle.truncate(keep)


def bit_flip_file(path: str, seed: int = 0) -> int:
    """Flip one deterministically-chosen bit of ``path``.

    Returns the byte offset that was corrupted.  Empty files are left
    untouched (returns -1).
    """
    size = os.path.getsize(path)
    if size == 0:
        return -1
    # Seed from a string, not hash(str, ...): str hashing is salted per
    # process (PYTHONHASHSEED), which made the "deterministic" offset
    # vary across runs — and sometimes land in bytes no loader checks.
    rng = random.Random(f"bitflip:{seed}:{size}")
    offset = rng.randrange(size)
    bit = rng.randrange(8)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << bit)]))
    return offset


class FaultPlan:
    """A reproducible schedule of faults, installed as a context manager.

    Args:
        specs: the planned faults.
        seed: drives bit-flip placement.
        sleep: injectable clock for ``slow`` faults (default
            ``time.sleep``), so tests can assert stalls without waiting.
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec] = (),
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self.sleep = sleep
        self._calls: Dict[str, int] = {}
        self.fired: List[str] = []

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def calls_to(self, site: str) -> int:
        """How many times ``site`` has been hit while this plan was active."""
        return self._calls.get(site, 0)

    def fire(self, site: str, path: Optional[str] = None) -> None:
        """Record a hit on ``site`` and execute any matching fault."""
        count = self._calls.get(site, 0) + 1
        self._calls[site] = count
        for spec in self.specs:
            if spec.site != site or not spec.fires_on(count):
                continue
            self.fired.append(f"{site}#{count}:{spec.kind}")
            if spec.kind == "raise":
                exc = spec.exc
                if isinstance(exc, type):
                    exc = exc(f"injected fault at {site!r} (call {count})")
                raise exc
            if spec.kind == "slow":
                self.sleep(spec.delay)
            elif spec.kind == "truncate":
                if path is not None:
                    truncate_file(path, spec.keep)
            elif spec.kind == "bitflip":
                if path is not None:
                    bit_flip_file(path, seed=self.seed + count)

    @contextmanager
    def installed(self):
        """Activate this plan for the dynamic extent of the ``with`` block."""
        _STACK.append(self)
        try:
            yield self
        finally:
            _STACK.remove(self)


# The (process-wide) stack of installed plans, innermost last.
_STACK: List[FaultPlan] = []


def active_plan() -> Optional[FaultPlan]:
    """The innermost installed plan, or None."""
    return _STACK[-1] if _STACK else None


def reset_plans() -> None:
    """Uninstall every plan (a forked child clearing inherited state).

    A ``fork``'d worker inherits the parent's installed-plan stack; a
    plan meant to fault the parent (or one specific sibling) would
    otherwise fire in every child.  Prefork workers call this once at
    startup before installing their own per-worker plan, if any.
    """
    _STACK.clear()


def fault_point(site: str, path: Optional[str] = None) -> None:
    """Library-side hook: give installed fault plans a shot at ``site``.

    A site that no installed plan matches is a no-op.  With several plans
    installed the innermost fires first; a raising fault stops the walk.
    When telemetry is active every hit is counted under
    ``fault.site.<site>``, whether or not any plan fires.
    """
    registry = get_telemetry()
    if registry is not None:
        registry.incr(f"fault.site.{site}")
    if not _STACK:
        return
    for plan in reversed(_STACK):
        plan.fire(site, path=path)
