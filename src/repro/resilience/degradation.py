"""The serving degradation ladder.

Machanavajjhala et al. (*Accurate or Private?*, VLDB 2011) observe that
a private recommender is exactly the setting where falling back to
less-personalized answers must be an engineered, first-class path: the
released signal is noisy and sparse by design, and real query streams
contain users the release has no signal for.  The ladder:

1. **personalized** — the paper's estimator, used whenever the user's
   cluster-similarity vector is non-zero.
2. **cluster-popularity** — the user has no usable similarity signal
   (isolated node, or every neighbour outside the clustering) but *is*
   assigned to a release cluster: rank items by that cluster's own noisy
   average weights.
3. **global** — the user is unknown to the release entirely (e.g. joined
   after publication): rank items by the size-weighted mean of the noisy
   averages across all clusters — a global noisy popularity list.
4. **empty** — the release is degenerate (no items or no clusters);
   serve an empty list rather than raising.

Every tier reads only the already-published matrix, so degraded answers
are post-processing and spend **zero additional epsilon**.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.obs.registry import incr as obs_incr

__all__ = [
    "TIER_PERSONALIZED",
    "TIER_CLUSTER",
    "TIER_GLOBAL",
    "TIER_EMPTY",
    "DEGRADATION_LADDER",
    "degradation_estimates",
]

TIER_PERSONALIZED = "personalized"
TIER_CLUSTER = "cluster-popularity"
TIER_GLOBAL = "global-popularity"
TIER_EMPTY = "empty"

# Best tier first; results report which rung they were served from.
DEGRADATION_LADDER = (TIER_PERSONALIZED, TIER_CLUSTER, TIER_GLOBAL, TIER_EMPTY)


def degradation_estimates(
    weights, user, max_tier: str = TIER_CLUSTER
) -> Tuple[Optional[np.ndarray], str]:
    """Fallback utility estimates for a user without personalized signal.

    Args:
        weights: a :class:`~repro.core.cluster_weights.NoisyClusterWeights`
            release (not imported by name to avoid a core ↔ resilience
            import cycle).
        user: the target user.
        max_tier: the best ladder rung the caller allows.  The serving
            tier's admission control uses this to shed load *down* the
            ladder under overload: capping at :data:`TIER_GLOBAL` skips
            the per-user cluster lookup, capping at :data:`TIER_EMPTY`
            returns the empty rung immediately.  Every rung is
            post-processing of the published matrix, so a cap never
            changes the privacy cost — only how personalized the answer
            is.  :data:`TIER_PERSONALIZED` is not produced here and is
            treated as :data:`TIER_CLUSTER` (the best fallback rung).

    Returns:
        ``(estimates, tier)`` where ``estimates`` aligns with
        ``weights.items`` (or is None for :data:`TIER_EMPTY`) and ``tier``
        is the ladder rung that produced it.

    Raises:
        ValueError: for a ``max_tier`` not on the ladder.
    """
    if max_tier not in DEGRADATION_LADDER:
        raise ValueError(
            f"max_tier must be one of {DEGRADATION_LADDER}, got {max_tier!r}"
        )
    cap = DEGRADATION_LADDER.index(max_tier)
    clustering = weights.clustering
    if (
        cap >= DEGRADATION_LADDER.index(TIER_EMPTY)
        or weights.matrix.size == 0
        or clustering.num_clusters == 0
    ):
        obs_incr(f"serve.tier.{TIER_EMPTY}")
        return None, TIER_EMPTY
    if cap <= DEGRADATION_LADDER.index(TIER_CLUSTER) and user in clustering:
        column = clustering.cluster_of(user)
        obs_incr(f"serve.tier.{TIER_CLUSTER}")
        return np.asarray(weights.matrix[:, column], dtype=float), TIER_CLUSTER
    sizes = np.asarray(clustering.sizes(), dtype=float)
    total = sizes.sum()
    if total <= 0:
        obs_incr(f"serve.tier.{TIER_EMPTY}")
        return None, TIER_EMPTY
    obs_incr(f"serve.tier.{TIER_GLOBAL}")
    return np.asarray(weights.matrix @ (sizes / total), dtype=float), TIER_GLOBAL
