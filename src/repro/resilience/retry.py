"""Deterministic exponential-backoff retry.

:class:`RetryPolicy` retries transient failures (IO errors by default)
with exponential backoff and *seeded* jitter, so two runs with the same
policy sleep for exactly the same durations — experiment reproducibility
extends to the failure path.  Three usage forms::

    policy = RetryPolicy(max_attempts=3)

    # 1. wrap a call
    graph = policy.call(read_social_graph, path)

    # 2. decorate a function
    @policy
    def load():
        ...

    # 3. attempt iterator (context-manager form)
    for attempt in policy.attempts():
        with attempt:
            data = read_bytes(path)

When every attempt fails, the policy raises
:class:`~repro.exceptions.RetryExhaustedError` chained to the last
underlying exception.  Non-retryable exceptions propagate immediately.
"""

from __future__ import annotations

import functools
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.exceptions import RetryExhaustedError

__all__ = ["RetryPolicy", "Attempt"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline.

    Args:
        max_attempts: total attempts (>= 1); 1 means "no retry".
        base_delay: sleep after the first failure, in seconds.
        multiplier: backoff factor between consecutive delays.
        max_delay: ceiling on any single sleep.
        jitter: fraction of each delay drawn uniformly from
            ``[-jitter, +jitter]`` and added; derived deterministically
            from ``seed`` and the attempt number.
        deadline: optional wall-clock budget in seconds for all attempts
            *and* sleeps together; exceeding it stops retrying early
            with :class:`~repro.exceptions.RetryExhaustedError`.
        deadline_s: optional *total* wall-clock budget with re-raise
            semantics: when repeated slow failures would push the loop
            past this budget, the **original** exception is re-raised
            (not wrapped) with ``retry_attempts`` and ``retry_elapsed_s``
            attributes attached.  The backoff schedule itself is
            untouched, so seeded determinism is preserved — a deadline
            only decides *whether* the next deterministic sleep happens,
            never how long it is.
        retry_on: exception types that count as transient.
        seed: jitter seed.
        sleep / clock: injectable for tests (defaults: ``time.sleep`` /
            ``time.monotonic``).

    Raises:
        ValueError: for a non-positive ``max_attempts`` or negative
            delays.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None
    deadline_s: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = (OSError,)
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    def _over_deadline_s(
        self, exc: BaseException, attempt: int, elapsed: float, pause: float
    ) -> bool:
        """Whether ``deadline_s`` forbids sleeping ``pause`` and retrying.

        On the way out the original exception is annotated with how far
        the loop got, so callers that catch it still see the retry story.
        """
        if self.deadline_s is None or elapsed + pause <= self.deadline_s:
            return False
        exc.retry_attempts = attempt  # type: ignore[attr-defined]
        exc.retry_elapsed_s = elapsed  # type: ignore[attr-defined]
        return True

    # ------------------------------------------------------------------
    # delay schedule
    # ------------------------------------------------------------------
    def delay_for(self, attempt: int) -> float:
        """The sleep after failed attempt number ``attempt`` (1-based).

        Deterministic: the jitter is drawn from ``Random((seed, attempt))``,
        so a given policy always produces the same schedule.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter == 0 or raw == 0:
            return raw
        # hash of an int tuple is deterministic across processes (only
        # str hashing is salted), and 3.11+ rejects tuple seeds directly.
        wiggle = random.Random(hash((self.seed, attempt))).uniform(
            -self.jitter, self.jitter
        )
        return max(0.0, raw * (1.0 + wiggle))

    # ------------------------------------------------------------------
    # the three usage forms
    # ------------------------------------------------------------------
    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)``, retrying transient failures.

        Raises:
            RetryExhaustedError: when every attempt failed (chained to the
                last underlying exception), or the ``deadline`` ran out.
            BaseException: the *original* failure, re-raised with
                ``retry_attempts`` / ``retry_elapsed_s`` attached, when
                ``deadline_s`` ran out first.
        """
        started = self.clock()
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                last = exc
                if attempt == self.max_attempts:
                    break
                pause = self.delay_for(attempt)
                elapsed = self.clock() - started
                if self._over_deadline_s(exc, attempt, elapsed, pause):
                    raise
                if self.deadline is not None and elapsed + pause > self.deadline:
                    raise RetryExhaustedError(attempt, exc) from exc
                if pause > 0:
                    self.sleep(pause)
        assert last is not None
        raise RetryExhaustedError(self.max_attempts, last) from last

    def __call__(self, fn: Callable) -> Callable:
        """Decorator form: ``@policy`` wraps ``fn`` with :meth:`call`."""

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return self.call(fn, *args, **kwargs)

        wrapper.retry_policy = self
        return wrapper

    def attempts(self) -> Iterator["Attempt"]:
        """Iterate attempt context managers (tenacity-style loop form).

        Each yielded :class:`Attempt` swallows a retryable exception if
        budget remains (sleeping the scheduled backoff), re-raises
        non-retryable exceptions, and raises
        :class:`~repro.exceptions.RetryExhaustedError` once the budget is
        spent.  The loop ends after the first attempt that exits cleanly.
        """
        started = self.clock()
        for number in range(1, self.max_attempts + 1):
            attempt = Attempt(self, number, started)
            yield attempt
            if attempt.succeeded:
                return

    def retries_remaining(self, attempt_number: int) -> bool:
        return attempt_number < self.max_attempts


class Attempt:
    """One attempt in :meth:`RetryPolicy.attempts`; a context manager."""

    def __init__(self, policy: RetryPolicy, number: int, started: float) -> None:
        self.policy = policy
        self.number = number
        self.started = started
        self.succeeded = False

    def __enter__(self) -> "Attempt":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is None:
            self.succeeded = True
            return False
        if not isinstance(exc, self.policy.retry_on):
            return False
        if not self.policy.retries_remaining(self.number):
            raise RetryExhaustedError(self.number, exc) from exc
        pause = self.policy.delay_for(self.number)
        elapsed = self.policy.clock() - self.started
        if self.policy._over_deadline_s(exc, self.number, elapsed, pause):
            return False  # re-raise the original, annotated
        if self.policy.deadline is not None and elapsed + pause > self.policy.deadline:
            raise RetryExhaustedError(self.number, exc) from exc
        if pause > 0:
            self.policy.sleep(pause)
        return True
