"""Resilience primitives: retries, fault injection, graceful degradation.

Production serving of a published release has to survive the failure
modes the clean-room reproduction never sees: transient IO errors while
loading artifacts, processes killed mid-write, corrupt or truncated
files, and queries from users the release has no signal for.  This
package centralises the machinery the rest of the library uses to cope:

- :mod:`repro.resilience.retry` — :class:`RetryPolicy`, a deterministic
  exponential-backoff retry helper usable as a decorator, a callable
  wrapper, or an attempt iterator.
- :mod:`repro.resilience.faults` — :class:`FaultPlan`, a seed-driven
  fault injector that tests and benchmarks install around IO and
  clustering via :func:`fault_point` hooks, without monkeypatching
  library internals.
- :mod:`repro.resilience.degradation` — the serving degradation ladder
  (personalized → cluster-popularity → global noisy popularity) shared
  by :class:`~repro.core.persistence.ReleaseServer` and
  :class:`~repro.core.private.PrivateSocialRecommender`.

Every fallback in the ladder is post-processing of the already-released
noisy averages, so degraded answers spend zero additional epsilon.
"""

from repro.resilience.degradation import (
    TIER_CLUSTER,
    TIER_EMPTY,
    TIER_GLOBAL,
    TIER_PERSONALIZED,
    degradation_estimates,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    active_plan,
    bit_flip_file,
    fault_point,
    reset_plans,
    truncate_file,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "RetryPolicy",
    "FaultPlan",
    "FaultSpec",
    "fault_point",
    "active_plan",
    "reset_plans",
    "truncate_file",
    "bit_flip_file",
    "TIER_PERSONALIZED",
    "TIER_CLUSTER",
    "TIER_GLOBAL",
    "TIER_EMPTY",
    "degradation_estimates",
]
