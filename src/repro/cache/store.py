"""Persistent, checksummed storage for all-pairs similarity kernels.

Computing an all-pairs :class:`~repro.similarity.matrix.SimilarityMatrix`
is the dominant cost of batch serving, yet it reads only *public* data —
the social graph — so it can be cached on disk and reused across
processes, runs, and machines at zero privacy cost.  This module stores
each kernel as a single ``.npz`` artifact:

- **content-addressed** — the filename is the SHA-256 key from
  :mod:`repro.cache.keys`, so a changed graph or measure parameter maps
  to a different artifact instead of silently serving stale scores;
- **checksummed** — a SHA-256 digest over the CSR buffers and metadata is
  embedded and verified on load (the idiom of
  :mod:`repro.core.persistence`, format v2); corruption means *recompute*,
  never a crash and never wrong results;
- **atomic** — written to a sibling temp file, fsynced, then
  ``os.replace``d into place, so a crash leaves either the old artifact
  or none;
- **memory-mappable** — arrays are stored uncompressed, and
  :func:`open_kernel_csr` maps them straight out of the zip container so
  pool workers share one page-cache copy instead of each re-reading (or
  worse, recomputing) the kernel.

:class:`SimilarityStore` fronts the directory with a small in-memory LRU
and hit/miss/eviction counters (:class:`CacheStats`).
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.cache.keys import (
    KERNEL_FORMAT_VERSION,
    measure_fingerprint,
    similarity_cache_key,
)
from repro.exceptions import CacheIntegrityError
from repro.graph.protocol import GraphLike
from repro.obs.registry import incr as obs_incr
from repro.resilience.faults import fault_point
from repro.similarity.base import SimilarityMeasure
from repro.similarity.matrix import SimilarityMatrix

__all__ = [
    "CacheEntry",
    "CacheLookup",
    "CacheStats",
    "SimilarityStore",
    "load_kernel_artifact",
    "open_kernel_csr",
    "save_kernel_artifact",
]


def _buffer_digest(
    data: np.ndarray, indices: np.ndarray, indptr: np.ndarray, payload: bytes
) -> str:
    """SHA-256 over the three CSR buffers and the metadata payload."""
    digest = hashlib.sha256()
    for buffer in (data, indices, indptr):
        digest.update(np.ascontiguousarray(buffer).tobytes())
        digest.update(b"\x00")
    digest.update(payload)
    return digest.hexdigest()


def save_kernel_artifact(
    path: str,
    matrix: SimilarityMatrix,
    key: str,
    measure: SimilarityMeasure,
) -> None:
    """Atomically write ``matrix`` as a checksummed kernel artifact.

    The arrays are stored *uncompressed* (``np.savez``) so loaders can
    memory-map them in place; similarity kernels are sparse enough that
    the size cost is small next to the recompute cost they avoid.

    Raises:
        OSError: for IO failures while writing.
    """
    csr = sp.csr_matrix(matrix.matrix)
    payload = json.dumps(
        {
            "version": KERNEL_FORMAT_VERSION,
            "kind": "similarity-kernel",
            "key": key,
            "measure": measure_fingerprint(measure),
            "users": list(matrix.users),
            "shape": list(csr.shape),
        }
    ).encode("utf-8")
    checksum = _buffer_digest(csr.data, csr.indices, csr.indptr, payload)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            np.savez(
                handle,
                data=csr.data,
                indices=csr.indices,
                indptr=csr.indptr,
                metadata=np.frombuffer(payload, dtype=np.uint8),
                checksum=np.frombuffer(checksum.encode("ascii"), dtype=np.uint8),
            )
            handle.flush()
            os.fsync(handle.fileno())
        fault_point("cache.save.pre-replace", path=tmp_path)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)


def _read_kernel_arrays(path: str):
    """Read the raw artifact members, wrapping parse failures.

    Raises:
        OSError: for IO-level failures (missing file, transient EIO).
        CacheIntegrityError: for files that read but do not parse as a
            kernel artifact.
    """
    fault_point("cache.load", path=path)
    try:
        with np.load(path) as archive:
            data = np.asarray(archive["data"])
            indices = np.asarray(archive["indices"])
            indptr = np.asarray(archive["indptr"])
            payload = bytes(archive["metadata"])
            checksum = bytes(archive["checksum"]).decode("ascii")
    except OSError:
        raise
    except Exception as exc:  # BadZipFile, KeyError, ValueError...
        raise CacheIntegrityError(
            f"cache artifact {path!r} is corrupt or not a kernel archive: {exc}"
        ) from exc
    return data, indices, indptr, payload, checksum


def load_kernel_artifact(path: str) -> Tuple[SimilarityMatrix, dict]:
    """Load and verify a kernel artifact written by :func:`save_kernel_artifact`.

    Returns the reconstructed matrix and the metadata dict.

    Raises:
        CacheIntegrityError: for corrupt archives, checksum mismatches,
            unparseable metadata, and unsupported versions.
        OSError: for IO-level read failures.
    """
    data, indices, indptr, payload, checksum = _read_kernel_arrays(path)
    expected = _buffer_digest(data, indices, indptr, payload)
    if checksum != expected:
        raise CacheIntegrityError(
            f"cache artifact {path!r} failed its checksum "
            f"(stored {checksum[:12]}..., computed {expected[:12]}...); "
            f"the artifact is corrupt"
        )
    try:
        metadata = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CacheIntegrityError(
            f"cache artifact {path!r} carries unparseable metadata: {exc}"
        ) from exc
    version = metadata.get("version")
    if version != KERNEL_FORMAT_VERSION:
        raise CacheIntegrityError(
            f"cache artifact {path!r} has kernel format {version!r}; "
            f"this build reads format {KERNEL_FORMAT_VERSION}"
        )
    try:
        users = list(metadata["users"])
        shape = tuple(metadata["shape"])
    except (KeyError, TypeError) as exc:
        raise CacheIntegrityError(
            f"cache artifact {path!r} has incomplete metadata: {exc!r}"
        ) from exc
    try:
        matrix = SimilarityMatrix.from_csr(
            sp.csr_matrix((data, indices, indptr), shape=shape), users
        )
    except ValueError as exc:
        raise CacheIntegrityError(
            f"cache artifact {path!r} has inconsistent dimensions: {exc}"
        ) from exc
    return matrix, metadata


def _member_memmap(path: str, name: str) -> Optional[np.ndarray]:
    """Memory-map one uncompressed ``.npy`` member of a zip archive.

    Returns None when the member is compressed or otherwise unmappable,
    in which case the caller falls back to a regular read.
    """
    try:
        with zipfile.ZipFile(path) as archive:
            info = archive.getinfo(name)
            if info.compress_type != zipfile.ZIP_STORED:
                return None
            with open(path, "rb") as handle:
                handle.seek(info.header_offset)
                local_header = handle.read(30)
                if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
                    return None
                name_length = int.from_bytes(local_header[26:28], "little")
                extra_length = int.from_bytes(local_header[28:30], "little")
                handle.seek(info.header_offset + 30 + name_length + extra_length)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
                else:
                    return None
                if dtype.hasobject:
                    return None
                offset = handle.tell()
        return np.memmap(
            path,
            dtype=dtype,
            shape=shape,
            order="F" if fortran else "C",
            mode="r",
            offset=offset,
        )
    except (OSError, KeyError, ValueError):
        return None


def open_kernel_csr(path: str) -> sp.csr_matrix:
    """Open an artifact's CSR matrix, memory-mapping the buffers in place.

    Pool workers use this instead of :func:`load_kernel_artifact`: the
    arrays stay on disk (shared through the page cache across workers)
    and no checksum pass is paid — integrity was verified by the parent
    when it produced or first loaded the artifact.  Falls back to a
    regular verified load when mapping is not possible.

    Raises:
        CacheIntegrityError / OSError: as :func:`load_kernel_artifact`
            (fallback path only).
    """
    data = _member_memmap(path, "data.npy")
    indices = _member_memmap(path, "indices.npy")
    indptr = _member_memmap(path, "indptr.npy")
    if data is not None and indices is not None and indptr is not None:
        try:
            # NpzFile reads members lazily, so this touches only the
            # small metadata vector, not the mapped buffers.
            with np.load(path) as archive:
                shape = tuple(json.loads(bytes(archive["metadata"]))["shape"])
        except Exception:
            shape = (indptr.shape[0] - 1, indptr.shape[0] - 1)
        return sp.csr_matrix((data, indices, indptr), shape=shape, copy=False)
    matrix, _ = load_kernel_artifact(path)
    return matrix.matrix


@dataclass
class CacheStats:
    """Counters for one :class:`SimilarityStore` instance.

    ``hits`` splits into memory hits (LRU) and disk hits (artifact load);
    ``corrupt_recomputed`` counts artifacts that failed integrity checks
    and were transparently recomputed.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    corrupt_recomputed: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def snapshot(self) -> "CacheStats":
        """An immutable copy (for before/after deltas)."""
        return CacheStats(
            memory_hits=self.memory_hits,
            disk_hits=self.disk_hits,
            misses=self.misses,
            evictions=self.evictions,
            corrupt_recomputed=self.corrupt_recomputed,
            stores=self.stores,
        )


@dataclass(frozen=True)
class CacheEntry:
    """What ``repro cache info`` reports about one artifact on disk."""

    path: str
    key: str
    measure: str
    num_users: int
    nnz: int
    size_bytes: int
    mtime: float
    ok: bool


@dataclass(frozen=True)
class CacheLookup:
    """The result of :meth:`SimilarityStore.get_or_compute`.

    Attributes:
        matrix: the kernel, from memory, disk, or a fresh computation.
        path: the on-disk artifact backing it (valid for memory-mapping).
        hit: True when no recomputation happened.
    """

    matrix: SimilarityMatrix
    path: str
    hit: bool


class SimilarityStore:
    """A directory of kernel artifacts plus a bounded in-memory LRU.

    Args:
        directory: artifact directory; created on first use.
        max_memory_entries: in-process LRU capacity (kernels are a few
            MB at test scale but grow quadratically-ish with the graph,
            so the default keeps only a handful resident).
    """

    def __init__(self, directory: str, max_memory_entries: int = 4) -> None:
        if max_memory_entries < 0:
            raise ValueError(
                f"max_memory_entries must be >= 0, got {max_memory_entries}"
            )
        self.directory = directory
        self.max_memory_entries = max_memory_entries
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, SimilarityMatrix]" = OrderedDict()

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def key_for(self, graph: GraphLike, measure: SimilarityMeasure) -> str:
        """The content-hash key for ``(graph, measure)``."""
        return similarity_cache_key(graph, measure)

    def path_for(self, key: str) -> str:
        """Where the artifact for ``key`` lives (whether or not it exists)."""
        return os.path.join(self.directory, f"{key}.npz")

    # ------------------------------------------------------------------
    # the main entry point
    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        graph: GraphLike,
        measure: SimilarityMeasure,
        compute: Callable[[], SimilarityMatrix],
    ) -> CacheLookup:
        """The kernel for ``(graph, measure)``, computing and persisting on miss.

        Lookup order: in-memory LRU, then the on-disk artifact (checksum
        verified), then ``compute()``.  A corrupt artifact is deleted,
        recomputed, and rewritten — corruption costs time, never
        correctness.  The returned path always names a fresh, valid
        artifact, so pool workers can map it immediately.
        """
        key = self.key_for(graph, measure)
        path = self.path_for(key)
        cached = self._memory_get(key)
        if cached is not None:
            self.stats.memory_hits += 1
            obs_incr("cache.memory_hit")
            return CacheLookup(matrix=cached, path=path, hit=True)
        corrupt = False
        if os.path.exists(path):
            try:
                matrix, _ = load_kernel_artifact(path)
                self.stats.disk_hits += 1
                obs_incr("cache.disk_hit")
                self._memory_put(key, matrix)
                return CacheLookup(matrix=matrix, path=path, hit=True)
            except (CacheIntegrityError, OSError):
                corrupt = True
                try:
                    os.remove(path)
                except OSError:
                    pass
        matrix = compute()
        if corrupt:
            self.stats.corrupt_recomputed += 1
            obs_incr("cache.corrupt_recomputed")
        self.stats.misses += 1
        obs_incr("cache.miss")
        self.put(key, matrix, measure)
        self._memory_put(key, matrix)
        return CacheLookup(matrix=matrix, path=path, hit=False)

    def put(
        self, key: str, matrix: SimilarityMatrix, measure: SimilarityMeasure
    ) -> str:
        """Persist ``matrix`` under ``key``; returns the artifact path."""
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(key)
        save_kernel_artifact(path, matrix, key, measure)
        self.stats.stores += 1
        obs_incr("cache.store")
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def info(self) -> List[CacheEntry]:
        """One :class:`CacheEntry` per artifact, newest first.

        Unreadable artifacts are reported with ``ok=False`` rather than
        raising — ``repro cache info`` is a diagnostic, not a gate.
        """
        entries: List[CacheEntry] = []
        if not os.path.isdir(self.directory):
            return entries
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(".npz"):
                continue
            path = os.path.join(self.directory, name)
            stat = os.stat(path)
            try:
                matrix, metadata = load_kernel_artifact(path)
                entries.append(
                    CacheEntry(
                        path=path,
                        key=metadata.get("key", name[: -len(".npz")]),
                        measure=metadata.get("measure", "?"),
                        num_users=len(matrix.users),
                        nnz=int(matrix.matrix.nnz),
                        size_bytes=stat.st_size,
                        mtime=stat.st_mtime,
                        ok=True,
                    )
                )
            except (CacheIntegrityError, OSError):
                entries.append(
                    CacheEntry(
                        path=path,
                        key=name[: -len(".npz")],
                        measure="?",
                        num_users=0,
                        nnz=0,
                        size_bytes=stat.st_size,
                        mtime=stat.st_mtime,
                        ok=False,
                    )
                )
        entries.sort(key=lambda entry: entry.mtime, reverse=True)
        return entries

    def prune(self, max_bytes: int = 0) -> Tuple[int, int]:
        """Delete artifacts, oldest first, until at most ``max_bytes`` remain.

        ``max_bytes=0`` (the default) empties the cache.  Corrupt
        artifacts are always deleted first.  Returns
        ``(files_removed, bytes_freed)``.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = self.info()
        total = sum(entry.size_bytes for entry in entries)
        removed = 0
        freed = 0
        # Corrupt first, then oldest first.
        doomed = [e for e in entries if not e.ok]
        doomed += sorted(
            (e for e in entries if e.ok), key=lambda entry: entry.mtime
        )
        for entry in doomed:
            if total <= max_bytes and entry.ok:
                break
            try:
                os.remove(entry.path)
            except OSError:
                continue
            self._memory.pop(entry.key, None)
            total -= entry.size_bytes
            removed += 1
            freed += entry.size_bytes
        return removed, freed

    def warm(
        self,
        graph: GraphLike,
        measure: SimilarityMeasure,
        compute: Callable[[], SimilarityMatrix],
    ) -> CacheLookup:
        """Ensure the artifact for ``(graph, measure)`` exists on disk."""
        return self.get_or_compute(graph, measure, compute)

    def clear_memory(self) -> None:
        """Drop the in-memory LRU (disk artifacts are untouched)."""
        self._memory.clear()

    # ------------------------------------------------------------------
    # LRU internals
    # ------------------------------------------------------------------
    def _memory_get(self, key: str) -> Optional[SimilarityMatrix]:
        matrix = self._memory.get(key)
        if matrix is not None:
            self._memory.move_to_end(key)
        return matrix

    def _memory_put(self, key: str, matrix: SimilarityMatrix) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = matrix
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            obs_incr("cache.eviction")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(directory={self.directory!r}, "
            f"entries={len(self._memory)}/{self.max_memory_entries}, "
            f"stats={self.stats})"
        )
