"""Persistent caching of public-graph similarity kernels.

The utility/privacy trade-off of the framework depends only on the
released noisy aggregates; the all-pairs similarity matrices that batch
serving multiplies against them are pure functions of *public* inputs.
This package therefore caches those kernels on disk — content-addressed,
checksummed, memory-mappable — and reuses them across runs, processes,
and pool workers at zero privacy cost.

- :mod:`repro.cache.keys` — content-hash keys over graph structure and
  measure parameters.
- :mod:`repro.cache.store` — the artifact format and the
  :class:`~repro.cache.store.SimilarityStore` front-end (LRU, counters,
  info/prune/warm).
"""

from repro.cache.keys import (
    KERNEL_FORMAT_VERSION,
    graph_fingerprint,
    measure_fingerprint,
    similarity_cache_key,
)
from repro.cache.store import (
    CacheEntry,
    CacheLookup,
    CacheStats,
    SimilarityStore,
    load_kernel_artifact,
    open_kernel_csr,
    save_kernel_artifact,
)

__all__ = [
    "KERNEL_FORMAT_VERSION",
    "CacheEntry",
    "CacheLookup",
    "CacheStats",
    "SimilarityStore",
    "graph_fingerprint",
    "load_kernel_artifact",
    "measure_fingerprint",
    "open_kernel_csr",
    "save_kernel_artifact",
    "similarity_cache_key",
]
