"""Content-addressed cache keys for similarity kernels.

The all-pairs similarity matrices cached by :mod:`repro.cache.store` are
pure functions of *public* inputs: the social graph's structure and the
similarity measure's parameters.  A cache key must therefore change
exactly when either of those changes — and must *not* change with
construction order, process hash seeds, or dict iteration order, so that
two independent loads of the same crawl share one artifact.

The key is a SHA-256 over a canonical byte encoding of:

- the kernel format version (so on-disk layout changes invalidate
  everything at once),
- the sorted node set (isolated nodes change the matrix shape),
- the sorted edge set,
- the measure's registry name and its constructor parameters.

Identifiers are tagged with their type (``i:`` for int, ``s:`` for str)
before sorting, so the int user ``1`` and the str user ``"1"`` never
collide and heterogeneous graphs still order deterministically.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

from repro.graph.social_graph import user_sort_key

if TYPE_CHECKING:  # import only for annotations; keeps this module
    from repro.similarity.base import SimilarityMeasure  # cycle-free

__all__ = [
    "KERNEL_FORMAT_VERSION",
    "GraphFingerprintHasher",
    "graph_fingerprint",
    "measure_fingerprint",
    "similarity_cache_key",
]

#: Bump to invalidate every persisted kernel when the artifact layout or
#: the kernel math changes incompatibly.  v3: kernel rows follow the
#: canonical ``stable_user_order`` instead of insertion order.
KERNEL_FORMAT_VERSION = 3


def _tag(identifier) -> str:
    """A type-tagged, sortable text form of a user identifier."""
    if isinstance(identifier, bool) or not isinstance(identifier, (int, str)):
        raise TypeError(
            f"user identifier {identifier!r} is not cacheable; "
            f"only int and str identifiers can be content-hashed"
        )
    if isinstance(identifier, int):
        return f"i:{identifier}"
    return f"s:{identifier}"


class GraphFingerprintHasher:
    """Incremental :func:`graph_fingerprint` over streamed, sorted input.

    The out-of-core CSR builder (:mod:`repro.graph.bigcsr`) never holds
    the whole edge set, but it *does* emit users and edges in exactly the
    canonical fingerprint order (contiguous int users ``0..n-1``, then
    undirected edges ``(u, v)`` with ``u < v`` ascending).  This hasher
    consumes that stream and produces a digest bit-identical to
    :func:`graph_fingerprint` of the equivalent in-memory
    :class:`~repro.graph.social_graph.SocialGraph` — so the two
    representations share one content-addressed kernel cache.

    Callers are responsible for the ordering contract; the hasher only
    encodes.
    """

    def __init__(self) -> None:
        self._digest = hashlib.sha256()
        self._sealed_users = False

    def add_int_users(self, count: int, start: int = 0) -> None:
        """Hash the contiguous int users ``start .. start+count-1``."""
        if self._sealed_users:
            raise ValueError("users must be hashed before any edges")
        digest = self._digest
        for base in range(start, start + count, 65536):
            stop = min(base + 65536, start + count)
            digest.update(
                "".join(f"i:{u}\x00" for u in range(base, stop)).encode("ascii")
            )

    def add_sorted_int_edges(self, u_array, v_array) -> None:
        """Hash undirected int edges ``(u, v)``, ``u < v``, ascending.

        Accepts numpy arrays (or sequences); successive calls must
        continue the global ``(u, v)`` sort order.
        """
        if not self._sealed_users:
            self._digest.update(b"\x01")
            self._sealed_users = True
        digest = self._digest
        u_list = u_array.tolist() if hasattr(u_array, "tolist") else list(u_array)
        v_list = v_array.tolist() if hasattr(v_array, "tolist") else list(v_array)
        for base in range(0, len(u_list), 65536):
            digest.update(
                "".join(
                    f"i:{u}\x00i:{v}\x00"
                    for u, v in zip(
                        u_list[base : base + 65536], v_list[base : base + 65536]
                    )
                ).encode("ascii")
            )

    def hexdigest(self) -> str:
        """The fingerprint accumulated so far (users sealed if not yet)."""
        if not self._sealed_users:
            digest = self._digest.copy()
            digest.update(b"\x01")
            return digest.hexdigest()
        return self._digest.hexdigest()


def graph_fingerprint(graph) -> str:
    """SHA-256 hex digest of the graph's structure.

    Invariant under node/edge insertion order; sensitive to any node or
    edge added or removed.  Graph representations that precompute their
    own canonical fingerprint (``BigCSRGraph`` stores it in the artifact
    metadata) short-circuit here, so content-addressing a million-user
    mmap'd graph never walks its edges in Python.

    Raises:
        TypeError: for user identifiers that are not int or str.
    """
    precomputed = getattr(graph, "fingerprint", None)
    if isinstance(precomputed, str) and precomputed:
        return precomputed
    digest = hashlib.sha256()
    # The same canonical order SocialGraph.stable_user_order / to_csr use,
    # so a cached kernel's row order is reconstructible from its key inputs.
    for user in sorted(graph.users(), key=user_sort_key):
        digest.update(_tag(user).encode("utf-8"))
        digest.update(b"\x00")
    digest.update(b"\x01")
    edges = sorted(
        (sorted(edge, key=user_sort_key) for edge in graph.edges()),
        key=lambda edge: (user_sort_key(edge[0]), user_sort_key(edge[1])),
    )
    for u, v in edges:
        digest.update(_tag(u).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(_tag(v).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def measure_fingerprint(measure: SimilarityMeasure) -> str:
    """A canonical text form of the measure's identity and parameters.

    Uses the registry name plus every public constructor attribute
    (``vars``), JSON-serialised with sorted keys — so ``Katz(alpha=0.05)``
    and ``Katz(alpha=0.1)`` key differently while two fresh
    ``CommonNeighbors()`` instances key identically.
    """
    params = {
        name: value
        for name, value in sorted(vars(measure).items())
        if not name.startswith("_")
    }
    return json.dumps(
        {"measure": measure.name, "params": params},
        sort_keys=True,
        default=repr,
    )


def similarity_cache_key(graph, measure: SimilarityMeasure) -> str:
    """The content-hash key a kernel artifact is stored under.

    Raises:
        TypeError: for user identifiers that are not int or str.
    """
    digest = hashlib.sha256()
    digest.update(f"kernel-v{KERNEL_FORMAT_VERSION}".encode("ascii"))
    digest.update(b"\x00")
    digest.update(graph_fingerprint(graph).encode("ascii"))
    digest.update(b"\x00")
    digest.update(measure_fingerprint(measure).encode("utf-8"))
    return digest.hexdigest()
