"""Shared type aliases and small value objects used across the library.

The library identifies users and items by opaque hashable identifiers
(usually ``int`` or ``str``).  Type aliases centralise that convention so
signatures stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Mapping, Sequence, Tuple

__all__ = [
    "UserId",
    "ItemId",
    "Weight",
    "SimilarityRow",
    "UtilityRow",
    "RankedItem",
    "RecommendationList",
]

# A user node identifier.  Any hashable works; ints are fastest.
UserId = Hashable

# An item node identifier.
ItemId = Hashable

# Preference-edge weight.  The paper's model is unweighted (0/1) but the
# substrate supports arbitrary non-negative weights.
Weight = float

# sim(u, .) — the non-zero similarity scores of a single user to others.
SimilarityRow = Mapping[UserId, float]

# mu_u — utility scores of every item for a single user.
UtilityRow = Mapping[ItemId, float]


@dataclass(frozen=True, order=True)
class RankedItem:
    """One entry of a recommendation list: an item with its utility score.

    Ordering compares by ``(utility, item)`` so sorted sequences of
    :class:`RankedItem` are deterministic even under utility ties, provided
    the item identifiers are mutually comparable.
    """

    utility: float
    item: ItemId = field(compare=True)

    def as_tuple(self) -> Tuple[ItemId, float]:
        """Return ``(item, utility)``, the order used in the paper's text."""
        return (self.item, self.utility)


@dataclass(frozen=True)
class RecommendationList:
    """A ranked top-N recommendation list for a single user.

    Attributes:
        user: the target user the list was personalised for.
        items: items in descending utility order, ties broken
            deterministically by the recommender that produced the list.
        tier: which rung of the serving degradation ladder produced the
            list (see :mod:`repro.resilience.degradation`); the default
            ``"personalized"`` is the fully-personalised paper estimator.
    """

    user: UserId
    items: Tuple[RankedItem, ...]
    tier: str = "personalized"

    @property
    def degraded(self) -> bool:
        """Whether the list came from a fallback tier."""
        return self.tier != "personalized"

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def item_ids(self) -> List[ItemId]:
        """The recommended item identifiers, best first."""
        return [entry.item for entry in self.items]

    def utilities(self) -> List[float]:
        """The utility scores aligned with :meth:`item_ids`."""
        return [entry.utility for entry in self.items]

    def truncated(self, n: int) -> "RecommendationList":
        """Return a copy keeping only the top ``n`` items."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return RecommendationList(user=self.user, items=self.items[:n], tier=self.tier)


def as_recommendation_list(
    user: UserId,
    scored_items: Sequence[Tuple[ItemId, float]],
    tier: str = "personalized",
) -> RecommendationList:
    """Build a :class:`RecommendationList` from ``(item, utility)`` pairs.

    The pairs are assumed to already be in rank order; no sorting is done
    here so recommenders stay in control of their tie-breaking policy.
    """
    entries = tuple(RankedItem(utility=float(u), item=i) for i, u in scored_items)
    return RecommendationList(user=user, items=entries, tier=tier)
