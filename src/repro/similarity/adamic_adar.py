"""Adamic/Adar similarity: shared neighbors weighted by rarity.

``sim(u, v) = sum over x in Gamma(u) & Gamma(v) of 1 / log|Gamma(x)|``

A shared neighbor that is itself highly connected says little about the
affinity of u and v, so its contribution is down-weighted by the log of its
degree.  Shared neighbors of degree 1 cannot occur (such a node could not
neighbor both u and v); shared neighbors of degree exactly 2 would divide
by ``log 2`` — fine — but a hypothetical degree of 1 would divide by zero,
which we guard against for robustness on corrupted inputs.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.graph.social_graph import SocialGraph
from repro.similarity.base import SimilarityMeasure, register_measure
from repro.types import UserId

__all__ = ["AdamicAdar"]


class AdamicAdar(SimilarityMeasure):
    """Adamic/Adar structural similarity over the social graph."""

    name = "aa"

    def similarity_row(self, graph: SocialGraph, user: UserId) -> Dict[UserId, float]:
        row: Dict[UserId, float] = {}
        for nbr in graph.neighbors(user):
            degree = graph.degree(nbr)
            if degree < 2:
                continue  # cannot be a *shared* neighbor; avoids log(1)=0
            contribution = 1.0 / math.log(degree)
            for candidate in graph.neighbors(nbr):
                if candidate == user:
                    continue
                row[candidate] = row.get(candidate, 0.0) + contribution
        return row

    def similarity(self, graph: SocialGraph, u: UserId, v: UserId) -> float:
        if u == v:
            return 0.0
        total = 0.0
        for shared in graph.neighbors(u) & graph.neighbors(v):
            degree = graph.degree(shared)
            if degree >= 2:
                total += 1.0 / math.log(degree)
        return total


register_measure(AdamicAdar.name, AdamicAdar)
