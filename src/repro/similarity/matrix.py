"""Vectorised similarity computation over sparse adjacency matrices.

The per-user BFS row computations in the measure classes are flexible but
Python-speed.  For whole-graph workloads — the LRM workload matrix,
sensitivity analysis, batch evaluation — this module computes all-pairs
similarities at once with scipy sparse algebra:

- Common Neighbors:       ``S = A @ A`` (off-diagonal)
- Adamic/Adar:            ``S = A @ diag(1/log deg) @ A``
- Resource Allocation:    ``S = A @ diag(1/deg) @ A``
- Graph Distance (d<=2):  1 on edges, 1/2 on two-hop pairs
- Katz (bounded):         ``S = sum_l alpha^l  W_l`` with ``W_l`` the
  simple-path count matrices (l <= 3, closed forms below)

where ``A`` is the 0/1 adjacency matrix.  Every function returns a
:class:`SimilarityMatrix` that maps user ids to matrix rows and can be
compared entry-for-entry against the measure classes (the test suite does
exactly that — two independent implementations guarding each other).

Path-count closed forms used for Katz (standard results; ``A2 = A @ A``):

- length 1: ``A``
- length 2: ``A2 - diag(A2)`` (walks of length 2 avoid revisiting the
  start unless they return to it, which only the diagonal does)
- length 3: ``A3 - A @ diag(A2) - diag(A2) @ A + A`` restricted off the
  diagonal — subtracting walks that revisit an endpoint (u-x-u-v and
  u-v-x-v patterns each counted by ``deg`` terms; the ``+A`` restores the
  double-subtracted u-v-u-v walk per edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np
import scipy.sparse as sp

from repro.graph.social_graph import SocialGraph
from repro.types import UserId

__all__ = [
    "SimilarityMatrix",
    "adjacency_matrix",
    "common_neighbors_matrix",
    "adamic_adar_matrix",
    "resource_allocation_matrix",
    "graph_distance_matrix",
    "katz_matrix",
]


@dataclass(frozen=True)
class SimilarityMatrix:
    """All-pairs similarity scores with the user-id <-> row mapping.

    Attributes:
        matrix: sparse CSR matrix of scores; the diagonal is zero.
        users: row/column order.
        index: user -> row.
    """

    matrix: sp.csr_matrix
    users: List[UserId]
    index: Dict[UserId, int]

    @classmethod
    def from_csr(cls, matrix: sp.spmatrix, users: List[UserId]) -> "SimilarityMatrix":
        """Wrap a CSR matrix and its row order, deriving the index.

        The canonical constructor for deserialisation paths (the
        :mod:`repro.cache` artifact loader) — one place owns the
        user -> row mapping invariant.

        Raises:
            ValueError: when the matrix is not square over ``users``.
        """
        csr = sp.csr_matrix(matrix)
        if csr.shape != (len(users), len(users)):
            raise ValueError(
                f"matrix shape {csr.shape} does not match {len(users)} users"
            )
        return cls(
            matrix=csr,
            users=list(users),
            index={user: i for i, user in enumerate(users)},
        )

    @property
    def num_users(self) -> int:
        """Number of users (rows/columns)."""
        return len(self.users)

    @property
    def nnz(self) -> int:
        """Number of stored non-zero similarity entries."""
        return int(self.matrix.nnz)

    def similarity(self, u: UserId, v: UserId) -> float:
        """``sim(u, v)`` (0.0 for unknown users)."""
        i = self.index.get(u)
        j = self.index.get(v)
        if i is None or j is None or i == j:
            return 0.0
        return float(self.matrix[i, j])

    def row(self, user: UserId) -> Dict[UserId, float]:
        """The non-zero similarity row of ``user`` as a dict."""
        i = self.index.get(user)
        if i is None:
            return {}
        start, stop = self.matrix.indptr[i], self.matrix.indptr[i + 1]
        return {
            self.users[self.matrix.indices[k]]: float(self.matrix.data[k])
            for k in range(start, stop)
            if self.matrix.data[k] != 0.0
        }

    def column_sums(self) -> Dict[UserId, float]:
        """``sum_u sim(u, v)`` per user — the NOU sensitivity inputs."""
        sums = np.asarray(self.matrix.sum(axis=0)).ravel()
        return {user: float(sums[i]) for i, user in enumerate(self.users)}


def adjacency_matrix(graph: SocialGraph):
    """The 0/1 adjacency matrix of the graph plus the row order.

    Delegates to :meth:`~repro.graph.social_graph.SocialGraph.to_csr`, so
    rows follow the canonical stable user order shared with the
    :mod:`repro.compute` backend and the persistent kernel cache.
    """
    matrix, users = graph.to_csr()
    index = {u: i for i, u in enumerate(users)}
    return matrix, users, index


def _strip_diagonal(matrix: sp.spmatrix) -> sp.csr_matrix:
    # csr_matrix(csr) aliases the input's buffers; copy before mutating.
    matrix = sp.csr_matrix(matrix, copy=True)
    matrix.setdiag(0.0)
    matrix.eliminate_zeros()
    return matrix


def common_neighbors_matrix(graph: SocialGraph) -> SimilarityMatrix:
    """All-pairs Common Neighbors: ``(A @ A)`` off the diagonal."""
    adjacency, users, index = adjacency_matrix(graph)
    scores = _strip_diagonal(adjacency @ adjacency)
    return SimilarityMatrix(matrix=scores, users=users, index=index)


def _weighted_two_hop(graph: SocialGraph, weight_of_degree) -> SimilarityMatrix:
    adjacency, users, index = adjacency_matrix(graph)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    weights = np.array([weight_of_degree(d) for d in degrees])
    middle = sp.diags(weights)
    scores = _strip_diagonal(adjacency @ middle @ adjacency)
    return SimilarityMatrix(matrix=scores, users=users, index=index)


def adamic_adar_matrix(graph: SocialGraph) -> SimilarityMatrix:
    """All-pairs Adamic/Adar: shared neighbors weighted by 1/log(degree)."""
    return _weighted_two_hop(
        graph, lambda d: 1.0 / np.log(d) if d >= 2 else 0.0
    )


def resource_allocation_matrix(graph: SocialGraph) -> SimilarityMatrix:
    """All-pairs Resource Allocation: shared neighbors weighted by 1/degree."""
    return _weighted_two_hop(graph, lambda d: 1.0 / d if d > 0 else 0.0)


def graph_distance_matrix(graph: SocialGraph) -> SimilarityMatrix:
    """All-pairs Graph Distance with the paper's d <= 2 cutoff.

    Score 1 for adjacent pairs, 1/2 for non-adjacent pairs with at least
    one shared neighbor.
    """
    adjacency, users, index = adjacency_matrix(graph)
    two_hop = _strip_diagonal(adjacency @ adjacency)
    # Pairs reachable in two hops but not adjacent score 1/2.
    reachable = two_hop.sign()
    non_adjacent = reachable - reachable.multiply(adjacency.sign())
    scores = sp.csr_matrix(adjacency + non_adjacent * 0.5)
    scores = _strip_diagonal(scores)
    return SimilarityMatrix(matrix=scores, users=users, index=index)


def katz_matrix(
    graph: SocialGraph, max_length: int = 3, alpha: float = 0.05
) -> SimilarityMatrix:
    """All-pairs bounded Katz via simple-path count closed forms.

    Supports max_length in {1, 2, 3} (the paper caps k at 3; longer simple
    paths have no convenient closed form).

    Raises:
        ValueError: for an unsupported max_length or invalid alpha.
    """
    if max_length not in (1, 2, 3):
        raise ValueError(
            f"katz_matrix supports max_length in {{1, 2, 3}}, got {max_length}"
        )
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    adjacency, users, index = adjacency_matrix(graph)
    total = sp.csr_matrix(adjacency * alpha)
    if max_length >= 2:
        a2 = sp.csr_matrix(adjacency @ adjacency)
        paths2 = _strip_diagonal(a2)
        total = total + paths2 * alpha**2
    if max_length >= 3:
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        degree_diag = sp.diags(degrees)
        a3 = adjacency @ a2
        paths3 = a3 - adjacency @ degree_diag - degree_diag @ adjacency + adjacency
        paths3 = _strip_diagonal(paths3)
        total = total + paths3 * alpha**3
    return SimilarityMatrix(matrix=_strip_diagonal(total), users=users, index=index)
