"""Katz similarity: damped count of bounded-length paths.

``sim(u, v) = sum_{l=1..k} alpha^l * |paths_uv^l|``

where ``paths_uv^l`` are the simple paths of length ``l`` between u and v
and ``alpha`` is a small damping factor.  The paper caps ``k`` at 3 and
uses ``alpha = 0.05`` in its experiments; longer paths contribute
exponentially less and cost exponentially more to count.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.paths import count_paths_up_to
from repro.graph.social_graph import SocialGraph
from repro.similarity.base import SimilarityMeasure, register_measure
from repro.types import UserId

__all__ = ["Katz"]


class Katz(SimilarityMeasure):
    """Damped bounded-path-count similarity.

    Args:
        max_length: the path-length cutoff ``k`` (paper uses 3).
        alpha: the damping factor (paper uses 0.05; 0.005 is also common).
    """

    name = "kz"

    def __init__(self, max_length: int = 3, alpha: float = 0.05) -> None:
        if max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length}")
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.max_length = max_length
        self.alpha = alpha

    def similarity_row(self, graph: SocialGraph, user: UserId) -> Dict[UserId, float]:
        damping = [self.alpha**length for length in range(1, self.max_length + 1)]
        row: Dict[UserId, float] = {}
        for target, counts in count_paths_up_to(graph, user, self.max_length).items():
            score = sum(d * c for d, c in zip(damping, counts))
            if score > 0.0:
                row[target] = score
        return row

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(max_length={self.max_length}, "
            f"alpha={self.alpha})"
        )


register_measure(Katz.name, Katz)
