"""Graph Distance similarity: ``sim(u, v) = 1/d`` for shortest-path length d.

Following the paper, the distance is cut off at ``max_distance`` (default 2)
because beyond two hops the number of reachable users explodes in
small-world social graphs, washing out personalisation and inflating the
cost of each row computation.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.paths import bounded_shortest_path_lengths
from repro.graph.social_graph import SocialGraph
from repro.similarity.base import SimilarityMeasure, register_measure
from repro.types import UserId

__all__ = ["GraphDistance"]


class GraphDistance(SimilarityMeasure):
    """Inverse shortest-path-length similarity with a distance cutoff.

    Args:
        max_distance: ignore users farther than this many hops (paper
            uses 2).
    """

    name = "gd"

    def __init__(self, max_distance: int = 2) -> None:
        if max_distance < 1:
            raise ValueError(f"max_distance must be >= 1, got {max_distance}")
        self.max_distance = max_distance

    def similarity_row(self, graph: SocialGraph, user: UserId) -> Dict[UserId, float]:
        distances = bounded_shortest_path_lengths(graph, user, self.max_distance)
        return {v: 1.0 / d for v, d in distances.items()}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_distance={self.max_distance})"


register_measure(GraphDistance.name, GraphDistance)
