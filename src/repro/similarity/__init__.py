"""Structural social-similarity measures (paper Section 2.2).

Four measures from the link-prediction literature are provided, exactly as
specified in the paper:

- :class:`CommonNeighbors` (CN)  — ``|Gamma(u) & Gamma(v)|``
- :class:`GraphDistance` (GD)    — ``1/d`` for shortest-path length d <= cutoff
- :class:`AdamicAdar` (AA)       — ``sum_{x in Gamma(u) & Gamma(v)} 1/log|Gamma(x)|``
- :class:`Katz` (KZ)             — ``sum_{l<=k} alpha^l |paths_uv^l|``

All measures read *only* the public social graph, which is what lets the
clustering phase of the framework operate without spending privacy budget.
New measures can be registered with :func:`register_measure` and retrieved
by name with :func:`get_measure`.
"""

from repro.similarity.adamic_adar import AdamicAdar
from repro.similarity.base import (
    SimilarityCache,
    SimilarityMeasure,
    get_measure,
    list_measures,
    register_measure,
)
from repro.similarity.common_neighbors import CommonNeighbors
from repro.similarity.graph_distance import GraphDistance
from repro.similarity.katz import Katz
from repro.similarity.neighborhood import (
    CosineSimilarity,
    Jaccard,
    PreferentialAttachment,
    ResourceAllocation,
)

__all__ = [
    "SimilarityMeasure",
    "SimilarityCache",
    "CommonNeighbors",
    "GraphDistance",
    "AdamicAdar",
    "Katz",
    "Jaccard",
    "CosineSimilarity",
    "ResourceAllocation",
    "PreferentialAttachment",
    "register_measure",
    "get_measure",
    "list_measures",
]
