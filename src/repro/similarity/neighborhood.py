"""Additional neighborhood-overlap similarity measures (paper Section 7).

The paper evaluates four measures and proposes evaluating "a larger
variety of social similarity measures" as future work.  These four come
from the same link-prediction literature the paper draws on (Liben-Nowell
& Kleinberg 2007; Lü & Zhou 2011) and satisfy the framework's only
requirement — they read nothing but the public social graph:

- :class:`Jaccard` — ``|Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|``
- :class:`CosineSimilarity` (Salton index) —
  ``|Γ(u) ∩ Γ(v)| / sqrt(|Γ(u)| |Γ(v)|)``
- :class:`ResourceAllocation` — ``sum_{x in Γ(u) ∩ Γ(v)} 1/|Γ(x)|``
  (Adamic/Adar with a harsher hub penalty)
- :class:`PreferentialAttachment` — ``|Γ(u)| * |Γ(v)|`` restricted to
  users within two hops (unrestricted PA is non-zero for *every* pair,
  which makes similarity sets the whole graph and utility queries
  globally sensitive — the two-hop restriction keeps it a *social*
  measure in the paper's sense).
"""

from __future__ import annotations

import math
from typing import Dict, Set

from repro.graph.social_graph import SocialGraph
from repro.similarity.base import SimilarityMeasure, register_measure
from repro.types import UserId

__all__ = [
    "Jaccard",
    "CosineSimilarity",
    "ResourceAllocation",
    "PreferentialAttachment",
]


def _two_hop_candidates(graph: SocialGraph, user: UserId) -> Set[UserId]:
    """Users sharing at least one neighbor with ``user`` (excluding it)."""
    candidates: Set[UserId] = set()
    for nbr in graph.neighbors(user):
        candidates |= graph.neighbors(nbr)
    candidates.discard(user)
    return candidates


class Jaccard(SimilarityMeasure):
    """Jaccard coefficient of the two users' neighborhoods."""

    name = "jc"

    def similarity_row(self, graph: SocialGraph, user: UserId) -> Dict[UserId, float]:
        my_nbrs = graph.neighbors(user)
        row: Dict[UserId, float] = {}
        for v in _two_hop_candidates(graph, user):
            their_nbrs = graph.neighbors(v)
            union = len(my_nbrs | their_nbrs)
            if union:
                shared = len(my_nbrs & their_nbrs)
                if shared:
                    row[v] = shared / union
        return row


class CosineSimilarity(SimilarityMeasure):
    """Salton (cosine) index of the two users' neighborhoods."""

    name = "cos"

    def similarity_row(self, graph: SocialGraph, user: UserId) -> Dict[UserId, float]:
        my_nbrs = graph.neighbors(user)
        my_degree = len(my_nbrs)
        row: Dict[UserId, float] = {}
        if my_degree == 0:
            return row
        for v in _two_hop_candidates(graph, user):
            their_nbrs = graph.neighbors(v)
            shared = len(my_nbrs & their_nbrs)
            if shared:
                row[v] = shared / math.sqrt(my_degree * len(their_nbrs))
        return row


class ResourceAllocation(SimilarityMeasure):
    """Resource-allocation index: shared neighbors weighted by 1/degree."""

    name = "ra"

    def similarity_row(self, graph: SocialGraph, user: UserId) -> Dict[UserId, float]:
        row: Dict[UserId, float] = {}
        for nbr in graph.neighbors(user):
            degree = graph.degree(nbr)
            if degree == 0:
                continue
            contribution = 1.0 / degree
            for candidate in graph.neighbors(nbr):
                if candidate == user:
                    continue
                row[candidate] = row.get(candidate, 0.0) + contribution
        return row


class PreferentialAttachment(SimilarityMeasure):
    """Degree-product similarity, restricted to the two-hop neighborhood.

    The restriction keeps the similarity *sets* local (the framework's
    clustering exploits locality); without it every user pair would be
    "similar" and the utility queries would carry the maximal possible
    sensitivity.
    """

    name = "pa"

    def similarity_row(self, graph: SocialGraph, user: UserId) -> Dict[UserId, float]:
        my_degree = graph.degree(user)
        if my_degree == 0:
            return {}
        row: Dict[UserId, float] = {}
        candidates = _two_hop_candidates(graph, user) | graph.neighbors(user)
        for v in candidates:
            their_degree = graph.degree(v)
            if their_degree:
                row[v] = float(my_degree * their_degree)
        return row


register_measure(Jaccard.name, Jaccard)
register_measure(CosineSimilarity.name, CosineSimilarity)
register_measure(ResourceAllocation.name, ResourceAllocation)
register_measure(PreferentialAttachment.name, PreferentialAttachment)
