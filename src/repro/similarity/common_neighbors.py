"""Common Neighbors similarity: ``sim(u, v) = |Gamma(u) & Gamma(v)|``."""

from __future__ import annotations

from typing import Dict

from repro.graph.social_graph import SocialGraph
from repro.similarity.base import SimilarityMeasure, register_measure
from repro.types import UserId

__all__ = ["CommonNeighbors"]


class CommonNeighbors(SimilarityMeasure):
    """Counts shared immediate neighbors in the social graph.

    Two users are similar only if they are exactly two hops apart (or are
    adjacent with a shared neighbor); the measure is symmetric.
    """

    name = "cn"

    def similarity_row(self, graph: SocialGraph, user: UserId) -> Dict[UserId, float]:
        row: Dict[UserId, float] = {}
        # Every user sharing a neighbor with `user` is a neighbor-of-neighbor;
        # tallying over Gamma(user)'s adjacency counts the intersection size
        # for all candidates in one sweep.
        for nbr in graph.neighbors(user):
            for candidate in graph.neighbors(nbr):
                if candidate == user:
                    continue
                row[candidate] = row.get(candidate, 0.0) + 1.0
        return row

    def similarity(self, graph: SocialGraph, u: UserId, v: UserId) -> float:
        if u == v:
            return 0.0
        return float(len(graph.neighbors(u) & graph.neighbors(v)))


register_measure(CommonNeighbors.name, CommonNeighbors)
