"""Similarity-measure interface, registry, and caching.

A measure must implement :meth:`SimilarityMeasure.similarity_row`, which
returns ``sim(u, .)`` — the non-zero similarity scores from one user to all
others.  Pairwise :meth:`similarity` and the *similarity set* ``sim(u)``
(the paper's notation for users with non-zero similarity) derive from it.

Rows are the unit of computation because every consumer in the framework —
utility queries, sensitivity analysis, cluster quality — iterates a whole
row at a time; computing rows directly lets each measure use one BFS/DP
sweep per user instead of O(|U|) pairwise calls.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, FrozenSet, List, Optional, Type

from repro.exceptions import SimilarityError
from repro.graph.protocol import GraphLike
from repro.types import UserId

__all__ = [
    "SimilarityMeasure",
    "SimilarityCache",
    "register_measure",
    "get_measure",
    "list_measures",
]


class SimilarityMeasure(abc.ABC):
    """Base class for structural social-similarity measures.

    Subclasses must set :attr:`name` (a short registry key, e.g. ``"cn"``)
    and implement :meth:`similarity_row`.
    """

    #: Registry key; subclasses override.
    name: str = ""

    @abc.abstractmethod
    def similarity_row(self, graph: GraphLike, user: UserId) -> Dict[UserId, float]:
        """``sim(u, .)``: non-zero similarities from ``user`` to other users.

        The returned mapping must not contain ``user`` itself and must not
        contain zero or negative values.

        Raises:
            NodeNotFoundError: if ``user`` is not in the graph.
        """

    def similarity(self, graph: GraphLike, u: UserId, v: UserId) -> float:
        """``sim(u, v)``; zero when the users are not similar.

        The default implementation computes a full row; subclasses may
        override with a cheaper pairwise computation.
        """
        if u == v:
            return 0.0
        return self.similarity_row(graph, u).get(v, 0.0)

    def similarity_set(self, graph: GraphLike, user: UserId) -> FrozenSet[UserId]:
        """``sim(u)``: the set of users with *positive* similarity to ``user``.

        Rows are contractually free of zero entries, but the explicit
        threshold keeps the set well-defined even for a measure that leaks
        explicit zeros — and matches :meth:`SimilarityCache.similarity_set`.
        """
        return frozenset(
            v for v, s in self.similarity_row(graph, user).items() if s > 0.0
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SimilarityCache:
    """Memoises similarity rows for one (measure, graph) pair.

    The framework evaluates ``sim(u, .)`` once per user but several
    downstream consumers (recommender, error decomposition, sensitivity)
    each want the same rows; the cache makes those reads free after the
    first pass.  The cache assumes the graph is not mutated after wrapping —
    mutating it invalidates the cache silently, so wrap a finished snapshot.

    ``backend`` picks how rows are materialised: ``"auto"`` (the default)
    tries vectorised when the measure supports it and silently degrades to
    python on failure (counted in :attr:`last_compute_stats`);
    ``"vectorized"`` builds the whole kernel at once on the
    :mod:`repro.compute` CSR path (rows agree with the python backend
    within 1e-9; CN / Graph Distance / Katz are bit-identical);
    ``"python"`` computes each row with the measure's own
    ``similarity_row`` — pass it explicitly to force the bit-exact
    reference path.
    """

    def __init__(
        self,
        measure: SimilarityMeasure,
        graph: GraphLike,
        backend: str = "auto",
    ) -> None:
        from repro.compute.stats import ComputeStats, validate_backend

        validate_backend(backend)
        self._measure = measure
        self._graph = graph
        self._backend = backend
        self._rows: Dict[UserId, Dict[UserId, float]] = {}
        self._kernel_built = False
        self._last_stats: Optional[ComputeStats] = None

    @property
    def measure(self) -> SimilarityMeasure:
        return self._measure

    @property
    def graph(self) -> GraphLike:
        return self._graph

    @property
    def backend(self) -> str:
        """The backend requested at construction (``auto|vectorized|python``)."""
        return self._backend

    @property
    def last_compute_stats(self):
        """The :class:`~repro.compute.stats.ComputeStats` of the most recent
        kernel build, or None when no vectorised build has run."""
        return self._last_stats

    def _resolved_backend(self, backend: Optional[str] = None) -> str:
        from repro.compute.kernels import resolve_backend

        requested = self._backend if backend is None else backend
        return resolve_backend(requested, self._measure)

    def _build_kernel(self, backend: str) -> None:
        """Materialise every row at once through :func:`repro.compute.build_kernel`."""
        from repro.compute.kernels import build_kernel
        from repro.compute.stats import ComputeStats

        stats = ComputeStats(requested=backend)
        kernel = build_kernel(
            self._graph, self._measure, backend=backend, stats=stats
        )
        self._last_stats = stats
        for user in kernel.users:
            if user not in self._rows:
                self._rows[user] = kernel.row(user)
        self._kernel_built = True

    def row(self, user: UserId) -> Dict[UserId, float]:
        """Cached ``sim(u, .)`` row (returned mapping must not be mutated)."""
        cached = self._rows.get(user)
        if cached is None:
            if not self._kernel_built and self._resolved_backend() == "vectorized":
                self._build_kernel(self._backend)
                cached = self._rows.get(user)
                if cached is not None:
                    return cached
                # User absent from the kernel (e.g. added after wrapping);
                # fall through to the per-row path.
            cached = self._measure.similarity_row(self._graph, user)
            self._rows[user] = cached
        return cached

    def similarity(self, u: UserId, v: UserId) -> float:
        """Cached ``sim(u, v)``."""
        if u == v:
            return 0.0
        return self.row(u).get(v, 0.0)

    def similarity_set(self, user: UserId) -> FrozenSet[UserId]:
        """``sim(u)``: users with positive similarity, from the cached row."""
        return frozenset(v for v, s in self.row(user).items() if s > 0.0)

    def adopt_kernel(self, kernel) -> None:
        """Seed the cache from an externally built kernel.

        The serving tier warms release generations through the persistent
        :class:`~repro.cache.store.SimilarityStore`; adopting the stored
        :class:`~repro.similarity.matrix.SimilarityMatrix` means no
        request ever pays the kernel build.  Rows already cached win.
        """
        for user in kernel.users:
            if user not in self._rows:
                self._rows[user] = kernel.row(user)
        self._kernel_built = True

    def precompute(
        self, users=None, backend: Optional[str] = None
    ) -> None:
        """Warm the cache for ``users`` (default: the whole graph).

        Args:
            users: the users to warm (vectorised builds always materialise
                the full kernel; extra rows are kept — they were free).
            backend: override the cache's construction-time backend for
                this warm-up only.
        """
        resolved = self._resolved_backend(backend)
        if resolved == "vectorized" and not self._kernel_built:
            self._build_kernel(self._backend if backend is None else backend)
        for user in self._graph.users() if users is None else users:
            self.row(user)

    def __len__(self) -> int:
        return len(self._rows)


_REGISTRY: Dict[str, Callable[[], SimilarityMeasure]] = {}


def register_measure(
    name: str, factory: Callable[[], SimilarityMeasure]
) -> None:
    """Register a measure factory under ``name`` (lowercase key).

    Raises:
        SimilarityError: if the name is already taken.
    """
    key = name.lower()
    if key in _REGISTRY:
        raise SimilarityError(f"similarity measure {name!r} already registered")
    _REGISTRY[key] = factory


def get_measure(name: str) -> SimilarityMeasure:
    """Instantiate a registered measure by name (case-insensitive).

    Raises:
        SimilarityError: if no such measure is registered.
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SimilarityError(
            f"unknown similarity measure {name!r}; known measures: {known}"
        ) from None
    return factory()


def list_measures() -> List[str]:
    """Names of all registered measures, sorted."""
    return sorted(_REGISTRY)
