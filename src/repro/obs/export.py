"""Exporters: JSON-lines traces, benchmark-style summaries, human tables.

Three outputs, one snapshot in:

- :func:`write_trace` / :func:`read_trace` — a JSON-lines trace file
  (one record per span event, counter, gauge, span aggregate, and ledger
  charge) that round-trips back into a
  :class:`~repro.obs.registry.TelemetrySnapshot` bit-for-bit;
- :func:`summary_dict` / :func:`write_summary` — a ``BENCH_run.json``
  style summary: a top-level ``benchmarks`` list (one entry per span
  path with pytest-benchmark-shaped ``stats``) that
  ``benchmarks/check_regression.py`` can read, plus the counters, gauges,
  and the composed privacy ledger;
- :func:`format_report` — the human tables printed by
  ``repro obs report`` and the ``--profile`` CLI flag.

The trace format is versioned (``meta`` line first); unknown record
types are ignored on read so newer traces degrade gracefully.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional, Tuple

from repro.obs.ledger import PrivacyLedgerView
from repro.obs.registry import LedgerEntry, SpanEvent, TelemetrySnapshot

__all__ = [
    "TRACE_FORMAT_VERSION",
    "write_trace",
    "read_trace",
    "snapshot_to_jsonable",
    "snapshot_from_jsonable",
    "summary_dict",
    "write_summary",
    "summary_path_for",
    "format_report",
]

TRACE_FORMAT_VERSION = 1


def _finite(value: float):
    """JSON-safe float: ``inf``/``nan`` become strings (json.loads-stable)."""
    if math.isinf(value) or math.isnan(value):
        return repr(value)
    return value


def _unfinite(value) -> float:
    return float(value)


def write_trace(
    path: str,
    snapshot: TelemetrySnapshot,
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write ``snapshot`` as a JSON-lines trace file.

    The first line is a ``meta`` record carrying the format version plus
    any caller-provided context (command line, dataset, ...); every
    further line is one ``span`` / ``span_total`` / ``counter`` /
    ``gauge`` / ``ledger`` record.
    """
    header: Dict[str, object] = {
        "type": "meta",
        "format": "repro-obs-trace",
        "version": TRACE_FORMAT_VERSION,
    }
    if meta:
        header.update(meta)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for event in snapshot.spans:
            handle.write(
                json.dumps(
                    {
                        "type": "span",
                        "path": event.path,
                        "start": event.start,
                        "duration": event.duration,
                        "status": event.status,
                    }
                )
                + "\n"
            )
        for span_path, (count, total) in sorted(snapshot.span_totals.items()):
            handle.write(
                json.dumps(
                    {
                        "type": "span_total",
                        "path": span_path,
                        "count": count,
                        "seconds": total,
                        "errors": snapshot.span_errors.get(span_path, 0),
                    }
                )
                + "\n"
            )
        for name, value in sorted(snapshot.counters.items()):
            handle.write(
                json.dumps({"type": "counter", "name": name, "value": value})
                + "\n"
            )
        for name, gauge in sorted(snapshot.gauges.items()):
            handle.write(
                json.dumps(
                    {"type": "gauge", "name": name, "value": _finite(gauge)}
                )
                + "\n"
            )
        for entry in snapshot.ledger:
            handle.write(
                json.dumps(
                    {
                        "type": "ledger",
                        "release": entry.release,
                        "label": entry.label,
                        "epsilon": _finite(entry.epsilon),
                        "sensitivity": _finite(entry.sensitivity),
                        "composition": entry.composition,
                        "count": entry.count,
                    }
                )
                + "\n"
            )


def read_trace(path: str) -> Tuple[TelemetrySnapshot, Dict[str, object]]:
    """Parse a trace written by :func:`write_trace`.

    Returns ``(snapshot, meta)``.  Unknown record types are skipped;
    torn trailing lines (a killed writer) are tolerated.

    Raises:
        ValueError: when the file does not start with a recognised
            ``meta`` record or declares an unsupported version.
    """
    snapshot = TelemetrySnapshot()
    meta: Dict[str, object] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == 0:
                    raise ValueError(
                        f"{path!r} is not a repro obs trace (unparseable "
                        f"first line)"
                    ) from None
                continue  # torn trailing line
            kind = record.get("type")
            if index == 0:
                if (
                    kind != "meta"
                    or record.get("format") != "repro-obs-trace"
                ):
                    raise ValueError(
                        f"{path!r} is not a repro obs trace (missing meta "
                        f"record)"
                    )
                if record.get("version") != TRACE_FORMAT_VERSION:
                    raise ValueError(
                        f"{path!r} has trace format "
                        f"{record.get('version')!r}; this build reads "
                        f"format {TRACE_FORMAT_VERSION}"
                    )
                meta = {
                    k: v
                    for k, v in record.items()
                    if k not in ("type", "format", "version")
                }
                continue
            if kind == "span":
                snapshot.spans.append(
                    SpanEvent(
                        path=record["path"],
                        start=float(record["start"]),
                        duration=float(record["duration"]),
                        status=record.get("status", "ok"),
                    )
                )
            elif kind == "span_total":
                snapshot.span_totals[record["path"]] = (
                    int(record["count"]),
                    float(record["seconds"]),
                )
                if record.get("errors"):
                    snapshot.span_errors[record["path"]] = int(record["errors"])
            elif kind == "counter":
                snapshot.counters[record["name"]] = int(record["value"])
            elif kind == "gauge":
                snapshot.gauges[record["name"]] = _unfinite(record["value"])
            elif kind == "ledger":
                snapshot.ledger.append(
                    LedgerEntry(
                        release=record["release"],
                        label=record["label"],
                        epsilon=_unfinite(record["epsilon"]),
                        sensitivity=_unfinite(record["sensitivity"]),
                        composition=record.get("composition", "parallel"),
                        count=int(record.get("count", 1)),
                    )
                )
    return snapshot, meta


def snapshot_to_jsonable(snapshot: TelemetrySnapshot) -> Dict[str, object]:
    """A pure-JSON representation of ``snapshot``.

    Round-trips through :func:`snapshot_from_jsonable` losslessly (up to
    ``inf``/``nan`` gauges, which ride as strings like the trace format).
    The serving supervisor ships per-worker snapshots over HTTP this way
    and merges them with
    :func:`~repro.obs.registry.merge_snapshots`.
    """
    return {
        "counters": dict(sorted(snapshot.counters.items())),
        "gauges": {
            name: _finite(value)
            for name, value in sorted(snapshot.gauges.items())
        },
        "span_totals": {
            path: [count, total]
            for path, (count, total) in sorted(snapshot.span_totals.items())
        },
        "span_errors": dict(sorted(snapshot.span_errors.items())),
        "spans": [
            {
                "path": event.path,
                "start": event.start,
                "duration": event.duration,
                "status": event.status,
            }
            for event in snapshot.spans
        ],
        "ledger": [
            {
                "release": entry.release,
                "label": entry.label,
                "epsilon": _finite(entry.epsilon),
                "sensitivity": _finite(entry.sensitivity),
                "composition": entry.composition,
                "count": entry.count,
            }
            for entry in snapshot.ledger
        ],
    }


def snapshot_from_jsonable(payload: Dict[str, object]) -> TelemetrySnapshot:
    """Rebuild a :class:`TelemetrySnapshot` from
    :func:`snapshot_to_jsonable` output."""
    return TelemetrySnapshot(
        counters={
            name: int(value)
            for name, value in payload.get("counters", {}).items()
        },
        gauges={
            name: _unfinite(value)
            for name, value in payload.get("gauges", {}).items()
        },
        span_totals={
            path: (int(count), float(total))
            for path, (count, total) in payload.get(
                "span_totals", {}
            ).items()
        },
        span_errors={
            path: int(value)
            for path, value in payload.get("span_errors", {}).items()
        },
        spans=[
            SpanEvent(
                path=record["path"],
                start=float(record["start"]),
                duration=float(record["duration"]),
                status=record.get("status", "ok"),
            )
            for record in payload.get("spans", [])
        ],
        ledger=[
            LedgerEntry(
                release=record["release"],
                label=record["label"],
                epsilon=_unfinite(record["epsilon"]),
                sensitivity=_unfinite(record["sensitivity"]),
                composition=record.get("composition", "parallel"),
                count=int(record.get("count", 1)),
            )
            for record in payload.get("ledger", [])
        ],
    )


def summary_dict(
    snapshot: TelemetrySnapshot,
    wall_seconds: Optional[float] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """A ``BENCH_run.json``-compatible summary of one snapshot.

    The ``benchmarks`` list mirrors pytest-benchmark's shape — one entry
    per span path with ``stats.{mean, median, min, max, total, rounds}``
    — so ``check_regression.py`` and the existing BENCH tooling can
    consume observability summaries unchanged.  Counters, gauges, and the
    composed privacy ledger ride alongside under their own keys.
    """
    benchmarks: List[Dict[str, object]] = []
    for span_path in sorted(snapshot.span_totals):
        count, total = snapshot.span_totals[span_path]
        durations = [
            e.duration for e in snapshot.spans if e.path == span_path
        ]
        mean = total / count if count else 0.0
        stats: Dict[str, object] = {
            "rounds": count,
            "total": total,
            "mean": mean,
            "median": sorted(durations)[len(durations) // 2] if durations else mean,
            "min": min(durations) if durations else mean,
            "max": max(durations) if durations else mean,
        }
        benchmarks.append(
            {
                "name": span_path,
                "fullname": f"obs::{span_path}",
                "stats": stats,
                "errors": snapshot.span_errors.get(span_path, 0),
            }
        )
    view = PrivacyLedgerView(snapshot.ledger)
    ledger: Dict[str, object] = {
        "releases": [
            {"release": release, "epsilon": epsilon, "charges": charges}
            for release, epsilon, charges in view.summary()
        ],
        "total_epsilon": view.total_epsilon(),
        "max_sensitivity": view.max_sensitivity(),
    }
    summary: Dict[str, object] = {
        "format": "repro-obs-summary",
        "version": TRACE_FORMAT_VERSION,
        "benchmarks": benchmarks,
        "counters": dict(sorted(snapshot.counters.items())),
        "gauges": {
            name: _finite(value)
            for name, value in sorted(snapshot.gauges.items())
        },
        "privacy_ledger": ledger,
    }
    if wall_seconds is not None:
        summary["wall_seconds"] = wall_seconds
    if meta:
        summary["meta"] = meta
    return summary


def summary_path_for(trace_path: str) -> str:
    """Where the summary for ``trace_path`` lives.

    ``BENCH_obs.jsonl -> BENCH_obs.json``; any other extension gets
    ``.summary.json`` appended so the trace is never overwritten.
    """
    root, ext = os.path.splitext(trace_path)
    if ext == ".jsonl":
        return root + ".json"
    return trace_path + ".summary.json"


def write_summary(
    path: str,
    snapshot: TelemetrySnapshot,
    wall_seconds: Optional[float] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write :func:`summary_dict` as pretty JSON; returns the dict."""
    summary = summary_dict(snapshot, wall_seconds=wall_seconds, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return summary


def _table(rows: List[List[str]]) -> List[str]:
    widths = [max(len(row[c]) for row in rows) for c in range(len(rows[0]))]
    return [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        for row in rows
    ]


def format_report(
    snapshot: TelemetrySnapshot,
    wall_seconds: Optional[float] = None,
    top: int = 20,
) -> str:
    """Human-readable tables: spans, counters, and the privacy ledger."""
    lines: List[str] = []
    if snapshot.span_totals:
        lines.append("spans (by total time):")
        rows = [["path", "count", "total", "mean", "errors"]]
        ordered = sorted(
            snapshot.span_totals.items(), key=lambda kv: -kv[1][1]
        )
        for span_path, (count, total) in ordered[:top]:
            rows.append(
                [
                    span_path,
                    str(count),
                    f"{total * 1000:.1f}ms",
                    f"{total / count * 1000:.2f}ms" if count else "-",
                    str(snapshot.span_errors.get(span_path, 0)),
                ]
            )
        lines.extend("  " + line for line in _table(rows))
        dropped = len(snapshot.span_totals) - min(len(snapshot.span_totals), top)
        if dropped:
            lines.append(f"  ... {dropped} more span path(s) omitted")
        if wall_seconds is not None:
            lines.append(f"  wall clock: {wall_seconds * 1000:.1f}ms")
    if snapshot.counters:
        lines.append("counters:")
        rows = [["name", "value"]]
        for name, value in sorted(snapshot.counters.items()):
            rows.append([name, str(value)])
        lines.extend("  " + line for line in _table(rows))
    gauges = {n: v for n, v in snapshot.gauges.items()}
    if gauges:
        lines.append("gauges:")
        rows = [["name", "value"]]
        for name, value in sorted(gauges.items()):
            rows.append([name, f"{value:g}"])
        lines.extend("  " + line for line in _table(rows))
    view = PrivacyLedgerView(snapshot.ledger)
    if view.entries:
        lines.append("privacy ledger (parallel composition per release):")
        rows = [["release", "epsilon", "charges", "max sensitivity"]]
        for release, epsilon, charges in view.summary():
            rows.append(
                [
                    release,
                    f"{epsilon:g}",
                    str(charges),
                    f"{view.max_sensitivity(release):g}",
                ]
            )
        lines.extend("  " + line for line in _table(rows))
        lines.append(
            f"  total epsilon across releases (sequential): "
            f"{view.total_epsilon():g}"
        )
    if not lines:
        return "no telemetry recorded"
    return "\n".join(lines)
