"""Diff two BENCH-style summaries: where did the time (and counters) go?

``repro obs trend`` compares two benchmark/telemetry summary files —
either pytest-benchmark JSONs (the ``BENCH_*.json`` files CI produces)
or :func:`repro.obs.export.summary_dict` outputs (``--profile``
summaries); the two formats share the ``benchmarks`` list shape, so they
can even be compared against each other when the names line up.

Timing comparison uses the same median-normalization idea as the CI
regression gate (``benchmarks/check_regression.py``): per shared
benchmark the ratio ``current/baseline`` is divided by the median ratio
across all shared benchmarks, absorbing uniform machine-speed
differences and leaving only *relative* drift.  Counters (when both
files carry them — obs summaries do) are diffed directly: counts are
machine-independent, so any change is a behaviour change worth seeing.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["TrendReport", "load_summary", "compare_summaries", "format_trend"]


@dataclass
class TrendReport:
    """The comparison of one current summary against a baseline.

    Attributes:
        shared: benchmark name -> (normalized ratio, raw ratio).
        median_ratio: the machine-speed normalizer (median raw ratio).
        only_current / only_baseline: benchmark names present on one
            side only.
        counter_changes: counter name -> (baseline, current), only
            counters whose values differ (either side missing = 0).
        regressions: names whose normalized ratio exceeded the
            threshold passed to :func:`compare_summaries`.
    """

    shared: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    median_ratio: float = 1.0
    only_current: List[str] = field(default_factory=list)
    only_baseline: List[str] = field(default_factory=list)
    counter_changes: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    regressions: List[str] = field(default_factory=list)


def load_summary(path: str) -> Tuple[Dict[str, float], Dict[str, int]]:
    """Load (benchmark means, counters) from a summary JSON.

    Accepts pytest-benchmark files (``fullname`` keys, no counters) and
    ``repro-obs-summary`` files (``fullname`` or ``name`` keys, plus a
    ``counters`` mapping).

    Raises:
        ValueError: for JSON that carries neither benchmarks nor
            counters (almost certainly the wrong file).
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    means: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        if name is None:
            continue
        try:
            means[str(name)] = float(bench["stats"]["mean"])
        except (KeyError, TypeError, ValueError):
            continue
    counters_raw = payload.get("counters", {})
    counters: Dict[str, int] = {}
    if isinstance(counters_raw, dict):
        for key, value in counters_raw.items():
            try:
                counters[str(key)] = int(value)
            except (TypeError, ValueError):
                continue
    if not means and not counters:
        raise ValueError(
            f"{path}: no benchmarks or counters found "
            f"(expected a pytest-benchmark or repro-obs-summary JSON)"
        )
    return means, counters


def compare_summaries(
    current_path: str, baseline_path: str, threshold: float = 0.25
) -> TrendReport:
    """Build the :class:`TrendReport` for current vs baseline.

    Raises:
        ValueError: for unusable input files (propagated from
            :func:`load_summary`) or a non-positive ``threshold``.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    current_means, current_counters = load_summary(current_path)
    baseline_means, baseline_counters = load_summary(baseline_path)

    report = TrendReport()
    shared = sorted(set(current_means) & set(baseline_means))
    if shared:
        ratios = {
            name: current_means[name] / baseline_means[name]
            for name in shared
            if baseline_means[name] > 0
        }
        if ratios:
            report.median_ratio = statistics.median(ratios.values())
            normalizer = report.median_ratio if report.median_ratio > 0 else 1.0
            limit = 1.0 + threshold
            for name in sorted(ratios):
                normalized = ratios[name] / normalizer
                report.shared[name] = (normalized, ratios[name])
                if normalized > limit:
                    report.regressions.append(name)
    report.only_current = sorted(set(current_means) - set(baseline_means))
    report.only_baseline = sorted(set(baseline_means) - set(current_means))

    for name in sorted(set(current_counters) | set(baseline_counters)):
        before = baseline_counters.get(name, 0)
        after = current_counters.get(name, 0)
        if before != after:
            report.counter_changes[name] = (before, after)
    return report


def format_trend(report: TrendReport, threshold: float = 0.25) -> str:
    """Render a :class:`TrendReport` as the human text the CLI prints."""
    lines: List[str] = []
    if report.shared:
        lines.append(
            f"{len(report.shared)} benchmark(s) shared; median speed ratio "
            f"{report.median_ratio:.3f} (used to normalize)"
        )
        lines.append(f"{'normalized':>10}  {'raw ratio':>9}  benchmark")
        limit = 1.0 + threshold
        for name, (normalized, raw) in report.shared.items():
            flag = f"  DRIFT (> {limit:.2f}x)" if name in report.regressions else ""
            lines.append(f"{normalized:>10.3f}  {raw:>9.3f}  {name}{flag}")
    else:
        lines.append("no benchmarks shared between the two summaries")
    if report.only_current:
        lines.append(
            f"{len(report.only_current)} benchmark(s) only in current: "
            + ", ".join(report.only_current)
        )
    if report.only_baseline:
        lines.append(
            f"{len(report.only_baseline)} benchmark(s) only in baseline: "
            + ", ".join(report.only_baseline)
        )
    if report.counter_changes:
        lines.append("")
        lines.append(f"{len(report.counter_changes)} counter(s) changed:")
        width = max(len(name) for name in report.counter_changes)
        for name, (before, after) in report.counter_changes.items():
            delta = after - before
            lines.append(f"  {name:<{width}}  {before} -> {after} ({delta:+d})")
    if report.regressions:
        lines.append("")
        lines.append(
            f"DRIFT: {len(report.regressions)} benchmark(s) slowed beyond "
            f"the {threshold:.0%} threshold"
        )
    else:
        lines.append("")
        lines.append("OK: no benchmark drifted beyond the threshold")
    return "\n".join(lines)
