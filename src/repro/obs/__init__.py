"""repro.obs — the unified observability layer.

One dependency-free subsystem for everything the repo previously
measured ad hoc:

- :mod:`repro.obs.registry` — the :class:`Telemetry` registry (typed
  counters, gauges, span aggregates, privacy ledger), disabled by
  default, thread-safe, and mergeable across process-pool workers via
  picklable snapshots;
- :mod:`repro.obs.spans` — hierarchical monotonic-clock ``span()``
  timers;
- :mod:`repro.obs.ledger` — per-mechanism epsilon accounting
  (:class:`PrivacyLedgerView`) with parallel/sequential composition;
- :mod:`repro.obs.adapters` — ``ComputeStats``/``EngineStats``/
  ``BatchStats`` published into and reconstructed from the registry;
- :mod:`repro.obs.export` — JSON-lines traces, ``BENCH``-style
  summaries, and human tables (``repro obs report``);
- :mod:`repro.obs.trend` — median-normalized diffing of two BENCH-style
  summaries (``repro obs trend``).

Everything here is importable with zero third-party dependencies and
no-ops completely when no registry is active, so instrumented library
code stays fast by default.  See ``docs/observability.md``.
"""

from repro.obs.adapters import (
    batch_stats_view,
    compute_stats_view,
    engine_stats_view,
    publish_batch_stats,
    publish_compute_stats,
    publish_engine_stats,
)
from repro.obs.export import (
    format_report,
    read_trace,
    summary_dict,
    summary_path_for,
    write_summary,
    write_trace,
)
from repro.obs.ledger import (
    PrivacyLedgerView,
    record_laplace_release,
    record_mechanism,
)
from repro.obs.registry import (
    LedgerEntry,
    SpanEvent,
    Telemetry,
    TelemetrySnapshot,
    add_gauge,
    get_telemetry,
    incr,
    merge_snapshots,
    set_gauge,
    set_telemetry,
    telemetry,
)
from repro.obs.spans import current_span_path, span
from repro.obs.trend import (
    TrendReport,
    compare_summaries,
    format_trend,
    load_summary,
)

__all__ = [
    "Telemetry",
    "TelemetrySnapshot",
    "SpanEvent",
    "LedgerEntry",
    "get_telemetry",
    "set_telemetry",
    "telemetry",
    "incr",
    "add_gauge",
    "set_gauge",
    "merge_snapshots",
    "span",
    "current_span_path",
    "PrivacyLedgerView",
    "record_laplace_release",
    "record_mechanism",
    "publish_compute_stats",
    "publish_engine_stats",
    "publish_batch_stats",
    "compute_stats_view",
    "engine_stats_view",
    "batch_stats_view",
    "write_trace",
    "read_trace",
    "summary_dict",
    "write_summary",
    "summary_path_for",
    "format_report",
    "TrendReport",
    "compare_summaries",
    "format_trend",
    "load_summary",
]
