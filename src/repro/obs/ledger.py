"""The privacy ledger: per-mechanism epsilon accounting for telemetry.

:class:`~repro.privacy.budget.BudgetLedger` proves the *recommender's*
budget claim at fit time; this module makes the same accounting an
*observable*: every Laplace release that runs while telemetry is active
appends :class:`~repro.obs.registry.LedgerEntry` charges — epsilon, the
calibrated sensitivity (``Delta/|c|`` for the paper's cluster averages),
and the composition type — to the active registry, and
:class:`PrivacyLedgerView` folds those entries back into per-release and
end-to-end totals:

- charges of one release marked ``"parallel"`` touch disjoint data
  (Theorem 3) and cost their **max** epsilon;
- ``"sequential"`` charges of one release add (Theorem 2);
- distinct releases always compose sequentially.

So a single module-A_w release over any number of clusters totals
exactly the configured epsilon — which is what the exporter's report
prints and the acceptance tests pin.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import LedgerEntry, get_telemetry

__all__ = [
    "PrivacyLedgerView",
    "record_laplace_release",
    "record_mechanism",
]

# Above this many clusters the per-cluster charges are aggregated into
# one worst-case entry so ledgers stay bounded on huge graphs; the
# aggregation is reported explicitly via the entry's count.
_MAX_PARALLEL_ENTRIES = 1024

# Monotonic suffix making each recorded release label unique per process.
_RELEASE_IDS = itertools.count(1)


class PrivacyLedgerView:
    """Composition math over a sequence of ledger entries.

    A *view*: it never mutates the entries, so it can be constructed over
    a live registry's entries, a merged snapshot, or a parsed trace file
    interchangeably.
    """

    def __init__(self, entries: Sequence[LedgerEntry]) -> None:
        self.entries = list(entries)

    def releases(self) -> List[str]:
        """Distinct release identifiers, in first-seen order."""
        seen: Dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.release, None)
        return list(seen)

    def release_epsilon(self, release: str) -> float:
        """One release's cost: max of parallel charges + sum of sequential."""
        parallel = 0.0
        sequential = 0.0
        for entry in self.entries:
            if entry.release != release:
                continue
            if entry.composition == "parallel":
                parallel = max(parallel, entry.epsilon)
            else:
                sequential += entry.epsilon
        return parallel + sequential

    def release_epsilons(self) -> Dict[str, float]:
        """``{release: epsilon}`` for every recorded release."""
        return {r: self.release_epsilon(r) for r in self.releases()}

    def total_epsilon(self) -> float:
        """End-to-end cost: releases compose sequentially."""
        return sum(self.release_epsilons().values())

    def max_sensitivity(self, release: Optional[str] = None) -> float:
        """The largest recorded sensitivity (optionally of one release)."""
        values = [
            e.sensitivity
            for e in self.entries
            if release is None or e.release == release
        ]
        return max(values, default=0.0)

    def summary(self) -> List[Tuple[str, float, int]]:
        """``(release, epsilon, num_charges)`` rows in first-seen order."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.release] = counts.get(entry.release, 0) + 1
        return [
            (release, self.release_epsilon(release), counts[release])
            for release in self.releases()
        ]


def record_mechanism(
    release: str,
    label: str,
    epsilon: float,
    sensitivity: float,
    composition: str = "parallel",
    count: int = 1,
) -> None:
    """Append one charge to the active registry's ledger (no-op if disabled)."""
    registry = get_telemetry()
    if registry is None:
        return
    registry.record_ledger(
        LedgerEntry(
            release=release,
            label=label,
            epsilon=float(epsilon),
            sensitivity=float(sensitivity),
            composition=composition,
            count=int(count),
        )
    )


def record_laplace_release(
    epsilon: float,
    cluster_sizes: Sequence[float],
    sensitivity_numerator: float,
    label: str = "A_w",
    items: int = 1,
) -> Optional[str]:
    """Record one module-A_w Laplace release into the active ledger.

    One charge per cluster ``c``: epsilon, sensitivity
    ``sensitivity_numerator / |c|`` (the paper's ``1/|c|`` in the
    unweighted model), composition ``"parallel"`` — clusters partition
    the users and items partition the edges, so the whole release costs
    exactly ``epsilon`` under Theorem 3, which is what
    :meth:`PrivacyLedgerView.release_epsilon` recovers.

    No-ops (returning None) when telemetry is disabled or no mechanism
    actually ran (``epsilon = inf``, or an empty release).

    Returns the unique release identifier recorded, for tests and
    cross-referencing.
    """
    registry = get_telemetry()
    if registry is None:
        return None
    epsilon = float(epsilon)
    sizes = [float(s) for s in cluster_sizes if s > 0]
    if math.isinf(epsilon) or not sizes:
        return None
    release = f"{label}[eps={epsilon:g}]#{next(_RELEASE_IDS)}"
    if len(sizes) > _MAX_PARALLEL_ENTRIES:
        registry.record_ledger(
            LedgerEntry(
                release=release,
                label=f"clusters[{len(sizes)} aggregated]",
                epsilon=epsilon,
                sensitivity=sensitivity_numerator / min(sizes),
                composition="parallel",
                count=len(sizes) * items,
            )
        )
        return release
    for index, size in enumerate(sizes):
        registry.record_ledger(
            LedgerEntry(
                release=release,
                label=f"cluster[{index}]",
                epsilon=epsilon,
                sensitivity=sensitivity_numerator / size,
                composition="parallel",
                count=items,
            )
        )
    return release
