"""The telemetry registry: typed counters, gauges, and span aggregates.

One :class:`Telemetry` instance is the single collection point for a
run's observability data — counter increments, gauge values, hierarchical
span timings (:mod:`repro.obs.spans`), and the privacy ledger
(:mod:`repro.obs.ledger`).  The registry is:

- **disabled by default** — no registry is installed until
  :func:`set_telemetry` (or the :func:`telemetry` context manager) makes
  one active, and every instrumentation helper (:func:`incr`,
  :func:`add_gauge`, ``span()``) is a single module-global load plus an
  ``is None`` check when nothing is installed, so library hot paths pay
  effectively nothing;
- **thread-safe** — all mutation goes through one lock;
- **process-safe by snapshot** — :meth:`Telemetry.snapshot` returns a
  plain-dataclass :class:`TelemetrySnapshot` that pickles across
  ``ProcessPoolExecutor`` boundaries, and :meth:`Telemetry.merge` (or the
  order-independent :func:`merge_snapshots`) folds worker snapshots back
  into a parent registry.  Integer counters merge bit-exactly;
  :func:`merge_snapshots` sorts every float contribution before summing
  with ``math.fsum``, so the merged result is a function of the *multiset*
  of snapshots, not their arrival order.

Clocks are monotonic throughout (``time.perf_counter``): span starts are
stored as offsets from the registry's construction instant, so traces
from one process order correctly and never jump with wall-clock changes.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from math import fsum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "SpanEvent",
    "LedgerEntry",
    "TelemetrySnapshot",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "telemetry",
    "incr",
    "add_gauge",
    "set_gauge",
    "merge_snapshots",
]


@dataclass(frozen=True)
class SpanEvent:
    """One completed span occurrence (an entry of the JSON-lines trace).

    Attributes:
        path: the full hierarchical name, outermost first, joined by
            ``/`` — e.g. ``"cli.tradeoff/engine.evaluate_many"``.
        start: seconds since the registry's epoch (monotonic clock).
        duration: wall time inside the span, in seconds.
        status: ``"ok"``, or ``"error"`` when the body raised.
    """

    path: str
    start: float
    duration: float
    status: str = "ok"


@dataclass(frozen=True)
class LedgerEntry:
    """One privacy-ledger line: a single mechanism charge.

    Attributes:
        release: identifies one mechanism invocation (all charges of one
            release compose together; distinct releases compose
            sequentially).
        label: what was charged — e.g. ``"cluster[3]"``.
        epsilon: the privacy parameter of this charge.
        sensitivity: the L1 sensitivity the noise was calibrated to
            (``Delta/|c|`` for the paper's cluster averages).
        composition: ``"parallel"`` (disjoint data: the release costs the
            max over such charges) or ``"sequential"`` (overlapping data:
            charges add).
        count: scalar releases this entry covers (e.g. items per
            cluster column), for reporting only.
    """

    release: str
    label: str
    epsilon: float
    sensitivity: float
    composition: str = "parallel"
    count: int = 1


@dataclass
class TelemetrySnapshot:
    """A picklable, mergeable copy of a registry's state.

    ``span_totals`` maps each span path to ``(count, total_seconds)``;
    ``span_errors`` counts occurrences that ended in an exception.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    span_totals: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    span_errors: Dict[str, int] = field(default_factory=dict)
    spans: List[SpanEvent] = field(default_factory=list)
    ledger: List[LedgerEntry] = field(default_factory=list)


class Telemetry:
    """A thread-safe registry of counters, gauges, spans, and the ledger.

    Args:
        trace: record individual :class:`SpanEvent` occurrences (the
            JSON-lines trace) in addition to the per-path aggregates.
        max_events: bound on retained span events; occurrences beyond it
            still aggregate but their events are dropped and counted
            under the ``obs.dropped_events`` counter (no silent cap).
    """

    def __init__(self, trace: bool = True, max_events: int = 100_000) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self.trace = trace
        self.max_events = max_events
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._span_totals: Dict[str, Tuple[int, float]] = {}
        self._span_errors: Dict[str, int] = {}
        self._spans: List[SpanEvent] = []
        self._ledger: List[LedgerEntry] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def incr(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the integer counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(value)

    def add_gauge(self, name: str, value: float) -> None:
        """Accumulate ``value`` onto the float gauge ``name``."""
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + float(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Overwrite the float gauge ``name`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def record_span(
        self, path: str, start: float, duration: float, status: str = "ok"
    ) -> None:
        """Fold one completed span occurrence into the registry.

        Called by :func:`repro.obs.spans.span`; ``start`` is an offset
        from :attr:`epoch` on the monotonic clock.
        """
        with self._lock:
            count, total = self._span_totals.get(path, (0, 0.0))
            self._span_totals[path] = (count + 1, total + duration)
            if status != "ok":
                self._span_errors[path] = self._span_errors.get(path, 0) + 1
            if self.trace:
                if len(self._spans) < self.max_events:
                    self._spans.append(
                        SpanEvent(
                            path=path,
                            start=start,
                            duration=duration,
                            status=status,
                        )
                    )
                else:
                    self._counters["obs.dropped_events"] = (
                        self._counters.get("obs.dropped_events", 0) + 1
                    )

    def record_ledger(self, entry: LedgerEntry) -> None:
        """Append one privacy-ledger charge."""
        with self._lock:
            self._ledger.append(entry)

    # ------------------------------------------------------------------
    # reading / merging
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float:
        """Current value of gauge ``name`` (0.0 if never set)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    def span_total(self, path: str) -> Tuple[int, float]:
        """``(count, total_seconds)`` for span ``path`` (0, 0.0 if unseen)."""
        with self._lock:
            return self._span_totals.get(path, (0, 0.0))

    @property
    def ledger_entries(self) -> List[LedgerEntry]:
        with self._lock:
            return list(self._ledger)

    def snapshot(self) -> TelemetrySnapshot:
        """A picklable copy of the full registry state."""
        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                span_totals=dict(self._span_totals),
                span_errors=dict(self._span_errors),
                spans=list(self._spans),
                ledger=list(self._ledger),
            )

    def merge(self, snapshot: TelemetrySnapshot) -> None:
        """Fold a worker snapshot into this registry.

        Integer counters and span counts merge bit-exactly; float gauges
        and span totals accumulate in call order (use
        :func:`merge_snapshots` when order-independence of float sums
        matters).
        """
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.gauges.items():
                self._gauges[name] = self._gauges.get(name, 0.0) + value
            for path, (count, total) in snapshot.span_totals.items():
                base_count, base_total = self._span_totals.get(path, (0, 0.0))
                self._span_totals[path] = (base_count + count, base_total + total)
            for path, errors in snapshot.span_errors.items():
                self._span_errors[path] = self._span_errors.get(path, 0) + errors
            room = self.max_events - len(self._spans)
            if self.trace and room > 0:
                self._spans.extend(snapshot.spans[:room])
                dropped = len(snapshot.spans) - room
            else:
                dropped = len(snapshot.spans) if self.trace else 0
            if dropped > 0:
                self._counters["obs.dropped_events"] = (
                    self._counters.get("obs.dropped_events", 0) + dropped
                )
            self._ledger.extend(snapshot.ledger)


def merge_snapshots(snapshots: Sequence[TelemetrySnapshot]) -> TelemetrySnapshot:
    """Merge snapshots into one, independent of their order.

    Integer fields sum exactly.  Every float aggregate (gauges, span
    total seconds) is computed with ``math.fsum`` over the *sorted*
    contribution list, and event/ledger lists are concatenated then
    sorted on all fields — so the result is a pure function of the
    multiset of snapshots.  The property tests pin permutation
    invariance bit for bit.
    """
    counter_parts: Dict[str, List[int]] = {}
    gauge_parts: Dict[str, List[float]] = {}
    span_count_parts: Dict[str, List[int]] = {}
    span_second_parts: Dict[str, List[float]] = {}
    error_parts: Dict[str, List[int]] = {}
    spans: List[SpanEvent] = []
    ledger: List[LedgerEntry] = []
    for snapshot in snapshots:
        for name, value in snapshot.counters.items():
            counter_parts.setdefault(name, []).append(value)
        for name, value in snapshot.gauges.items():
            gauge_parts.setdefault(name, []).append(value)
        for path, (count, total) in snapshot.span_totals.items():
            span_count_parts.setdefault(path, []).append(count)
            span_second_parts.setdefault(path, []).append(total)
        for path, errors in snapshot.span_errors.items():
            error_parts.setdefault(path, []).append(errors)
        spans.extend(snapshot.spans)
        ledger.extend(snapshot.ledger)
    spans.sort(key=lambda e: (e.start, e.path, e.duration, e.status))
    ledger.sort(
        key=lambda e: (
            e.release,
            e.label,
            e.epsilon,
            e.sensitivity,
            e.composition,
            e.count,
        )
    )
    return TelemetrySnapshot(
        counters={name: sum(parts) for name, parts in counter_parts.items()},
        gauges={name: fsum(sorted(parts)) for name, parts in gauge_parts.items()},
        span_totals={
            path: (sum(parts), fsum(sorted(span_second_parts[path])))
            for path, parts in span_count_parts.items()
        },
        span_errors={path: sum(parts) for path, parts in error_parts.items()},
        spans=spans,
        ledger=ledger,
    )


# ----------------------------------------------------------------------
# the active registry (None = observability disabled, all hooks no-op)
# ----------------------------------------------------------------------
_ACTIVE: Optional[Telemetry] = None


def get_telemetry() -> Optional[Telemetry]:
    """The active registry, or None when observability is disabled."""
    return _ACTIVE


def set_telemetry(registry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install ``registry`` as the active one; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextmanager
def telemetry(registry: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Activate a registry for the dynamic extent of the ``with`` block.

    Creates a fresh :class:`Telemetry` when none is passed; the previous
    active registry (usually None) is restored on exit, even on error.
    """
    if registry is None:
        registry = Telemetry()
    previous = set_telemetry(registry)
    try:
        yield registry
    finally:
        set_telemetry(previous)


def incr(name: str, value: int = 1) -> None:
    """Increment a counter on the active registry (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.incr(name, value)


def add_gauge(name: str, value: float) -> None:
    """Accumulate onto a gauge on the active registry (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.add_gauge(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.set_gauge(name, value)
