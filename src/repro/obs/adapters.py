"""Adapters between the ad-hoc perf-counter dataclasses and the registry.

The performance layers each grew their own counter object —
:class:`~repro.compute.stats.ComputeStats` (kernel construction),
:class:`~repro.experiments.engine.EngineStats` (the sweep engine), and
:class:`~repro.core.batch.BatchStats` (batch serving).  Their public APIs
stay exactly as they were; this module re-expresses them as *views over
the registry*:

- ``publish_*_stats`` mirrors a stats object into the active registry's
  namespaced counters and gauges (no-op when telemetry is disabled), so
  one trace/summary carries every layer's counters;
- ``*_stats_view`` reconstructs the dataclass from a
  :class:`~repro.obs.registry.TelemetrySnapshot`, so exporters, the
  ``repro obs report`` command, and tests can round-trip through the
  registry without importing the producing layer.

Scalar fields round-trip exactly (integers bit-for-bit, floats as
written).  Per-shard wall-time *lists* are aggregated — the registry
stores count and total (``batch.shard_seconds``), not the sequence — and
nested ``compute`` stats are published under their own ``compute.*``
namespace.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import (
    Telemetry,
    TelemetrySnapshot,
    get_telemetry,
)

__all__ = [
    "publish_compute_stats",
    "publish_engine_stats",
    "publish_batch_stats",
    "compute_stats_view",
    "engine_stats_view",
    "batch_stats_view",
]


def _registry(registry: Optional[Telemetry]) -> Optional[Telemetry]:
    return registry if registry is not None else get_telemetry()


def publish_compute_stats(stats, registry: Optional[Telemetry] = None) -> None:
    """Mirror one :class:`ComputeStats` into ``compute.*`` counters/gauges."""
    registry = _registry(registry)
    if registry is None or not stats.backend:
        return
    registry.incr("compute.builds")
    registry.incr(f"compute.backend.{stats.backend}")
    registry.incr(f"compute.requested.{stats.requested}")
    if stats.measure:
        registry.incr(f"compute.measure.{stats.measure}")
    registry.incr("compute.rows", stats.rows)
    registry.incr("compute.nnz", stats.nnz)
    registry.incr("compute.blocks", stats.blocks)
    registry.incr("compute.fallbacks", stats.fallbacks)
    registry.incr("compute.spill.blocks", stats.spill_blocks)
    registry.incr("compute.spill.bytes", stats.spill_bytes)
    if stats.memory_budget_bytes:
        registry.set_gauge(
            "compute.memory_budget_bytes", stats.memory_budget_bytes
        )
    registry.set_gauge("compute.workers", stats.workers)
    registry.add_gauge("compute.total_seconds", stats.total_seconds)
    registry.set_gauge("compute.rows_per_second", stats.rows_per_second)
    for stage, seconds in stats.stage_seconds.items():
        registry.add_gauge(f"compute.stage.{stage}", seconds)


def publish_engine_stats(stats, registry: Optional[Telemetry] = None) -> None:
    """Mirror one :class:`EngineStats` into ``engine.*`` counters/gauges.

    Counters accumulate across calls, so publish *deltas* or publish once
    at the end of a sweep (the engine publishes on close/finalise).
    """
    registry = _registry(registry)
    if registry is None:
        return
    if stats.mode:
        registry.incr(f"engine.mode.{stats.mode}")
    registry.set_gauge("engine.workers", stats.workers)
    registry.incr("engine.measures", stats.measures)
    registry.incr("engine.cells", stats.cells)
    registry.incr("engine.repeats", stats.repeats)
    registry.incr("engine.fallback_cells", stats.fallback_cells)
    registry.incr("engine.legacy_cells", stats.legacy_cells)
    registry.incr("engine.cache_hits", stats.cache_hits)
    registry.incr("engine.cache_misses", stats.cache_misses)
    registry.add_gauge("engine.kernel_seconds", stats.kernel_seconds)
    registry.add_gauge("engine.wall_seconds", stats.wall_seconds)
    for edge, count in stats.tier_transitions.items():
        registry.incr(f"engine.tier_transition.{edge}", count)
    if stats.compute is not None:
        publish_compute_stats(stats.compute, registry)


def publish_batch_stats(stats, registry: Optional[Telemetry] = None) -> None:
    """Mirror one :class:`BatchStats` into ``batch.*`` counters/gauges."""
    registry = _registry(registry)
    if registry is None:
        return
    registry.incr(f"batch.mode.{stats.mode}")
    registry.incr("batch.users_served", stats.users_served)
    registry.incr("batch.num_shards", stats.num_shards)
    registry.incr("batch.fallback_shards", stats.fallback_shards)
    registry.incr("batch.fallback_users", stats.fallback_users)
    registry.incr("batch.cache_hits", stats.cache_hits)
    registry.incr("batch.cache_misses", stats.cache_misses)
    registry.add_gauge("batch.wall_seconds", stats.wall_seconds)
    registry.add_gauge("batch.kernel_seconds", stats.kernel_seconds)
    registry.set_gauge("batch.rows_per_second", stats.rows_per_second)
    registry.add_gauge("batch.shard_seconds", sum(stats.shard_seconds))
    for edge, count in stats.tier_transitions.items():
        registry.incr(f"batch.tier_transition.{edge}", count)
    if stats.compute is not None:
        publish_compute_stats(stats.compute, registry)


def _mode_from(snapshot: TelemetrySnapshot, prefix: str) -> str:
    """The most-counted ``<prefix><mode>`` label in the snapshot."""
    best = ""
    best_count = 0
    for name, count in snapshot.counters.items():
        if name.startswith(prefix) and count > best_count:
            best = name[len(prefix):]
            best_count = count
    return best


def _transitions_from(snapshot: TelemetrySnapshot, prefix: str):
    return {
        name[len(prefix):]: count
        for name, count in snapshot.counters.items()
        if name.startswith(prefix) and count
    }


def compute_stats_view(snapshot: TelemetrySnapshot):
    """Reconstruct a :class:`ComputeStats` from a snapshot's ``compute.*``.

    Returns None when the snapshot records no kernel construction.
    Aggregates across builds: rows/nnz/blocks/fallbacks and stage seconds
    are the published totals.
    """
    from repro.compute.stats import ComputeStats

    if not snapshot.counters.get("compute.builds"):
        return None
    stats = ComputeStats(
        requested=_mode_from(snapshot, "compute.requested."),
        backend=_mode_from(snapshot, "compute.backend."),
        measure=_mode_from(snapshot, "compute.measure."),
        rows=snapshot.counters.get("compute.rows", 0),
        nnz=snapshot.counters.get("compute.nnz", 0),
        blocks=snapshot.counters.get("compute.blocks", 0),
        workers=int(snapshot.gauges.get("compute.workers", 1)),
        fallbacks=snapshot.counters.get("compute.fallbacks", 0),
        memory_budget_bytes=int(
            snapshot.gauges.get("compute.memory_budget_bytes", 0)
        ),
        spill_blocks=snapshot.counters.get("compute.spill.blocks", 0),
        spill_bytes=snapshot.counters.get("compute.spill.bytes", 0),
        total_seconds=snapshot.gauges.get("compute.total_seconds", 0.0),
        rows_per_second=snapshot.gauges.get("compute.rows_per_second", 0.0),
    )
    for name, seconds in snapshot.gauges.items():
        if name.startswith("compute.stage."):
            stats.stage_seconds[name[len("compute.stage."):]] = seconds
    return stats


def engine_stats_view(snapshot: TelemetrySnapshot):
    """Reconstruct an :class:`EngineStats` from a snapshot's ``engine.*``."""
    from repro.experiments.engine import EngineStats

    stats = EngineStats(
        mode=_mode_from(snapshot, "engine.mode."),
        workers=int(snapshot.gauges.get("engine.workers", 1)),
        measures=snapshot.counters.get("engine.measures", 0),
        cells=snapshot.counters.get("engine.cells", 0),
        repeats=snapshot.counters.get("engine.repeats", 0),
        fallback_cells=snapshot.counters.get("engine.fallback_cells", 0),
        legacy_cells=snapshot.counters.get("engine.legacy_cells", 0),
        cache_hits=snapshot.counters.get("engine.cache_hits", 0),
        cache_misses=snapshot.counters.get("engine.cache_misses", 0),
        kernel_seconds=snapshot.gauges.get("engine.kernel_seconds", 0.0),
        wall_seconds=snapshot.gauges.get("engine.wall_seconds", 0.0),
        compute=compute_stats_view(snapshot),
    )
    stats.tier_transitions.update(
        _transitions_from(snapshot, "engine.tier_transition.")
    )
    return stats


def batch_stats_view(snapshot: TelemetrySnapshot):
    """Reconstruct a :class:`BatchStats` from a snapshot's ``batch.*``.

    Per-shard wall times come back aggregated: the view's
    ``shard_seconds`` holds one entry, the published total.
    """
    from repro.core.batch import BatchStats

    stats = BatchStats(
        mode=_mode_from(snapshot, "batch.mode.") or "sequential",
        users_served=snapshot.counters.get("batch.users_served", 0),
        num_shards=snapshot.counters.get("batch.num_shards", 0),
        fallback_shards=snapshot.counters.get("batch.fallback_shards", 0),
        fallback_users=snapshot.counters.get("batch.fallback_users", 0),
        cache_hits=snapshot.counters.get("batch.cache_hits", 0),
        cache_misses=snapshot.counters.get("batch.cache_misses", 0),
        wall_seconds=snapshot.gauges.get("batch.wall_seconds", 0.0),
        kernel_seconds=snapshot.gauges.get("batch.kernel_seconds", 0.0),
        rows_per_second=snapshot.gauges.get("batch.rows_per_second", 0.0),
        compute=compute_stats_view(snapshot),
    )
    total_shard_seconds = snapshot.gauges.get("batch.shard_seconds", 0.0)
    if total_shard_seconds:
        stats.shard_seconds.append(total_shard_seconds)
    stats.tier_transitions.update(
        _transitions_from(snapshot, "batch.tier_transition.")
    )
    return stats
