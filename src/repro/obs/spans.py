"""Hierarchical monotonic-clock span timers.

``span(name)`` is the library's one timing primitive::

    with span("engine.evaluate_many"):
        with span("engine.cell"):
            ...

Nested spans compose their names into a ``/``-joined path
(``"engine.evaluate_many/engine.cell"``), so one aggregate table shows
where time went *within* each caller.  The stack is thread-local: spans
on different threads never interleave their paths.

Design points:

- **disabled = free**: with no active registry the context manager
  yields ``None`` without touching the clock or the thread-local stack;
- **monotonic**: durations come from ``time.perf_counter`` and starts
  are offsets from the registry epoch, so traces are ordering-safe;
- **exception-safe**: a raising body records the span with
  ``status="error"`` and pops the stack before propagating, so later
  spans never inherit a stale parent path.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.registry import get_telemetry

__all__ = ["span", "current_span_path"]

_STATE = threading.local()


def current_span_path() -> Optional[str]:
    """The innermost open span's full path on this thread, or None."""
    stack = getattr(_STATE, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def span(name: str) -> Iterator[Optional[str]]:
    """Time a block under ``name``, nested below any enclosing span.

    Yields the span's full hierarchical path (or None when observability
    is disabled, in which case nothing is recorded at all).
    """
    registry = get_telemetry()
    if registry is None:
        yield None
        return
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        stack = []
        _STATE.stack = stack
    path = f"{stack[-1]}/{name}" if stack else name
    stack.append(path)
    started = time.perf_counter()
    status = "ok"
    try:
        yield path
    except BaseException:
        status = "error"
        raise
    finally:
        stack.pop()
        ended = time.perf_counter()
        registry.record_span(
            path, started - registry.epoch, ended - started, status
        )
