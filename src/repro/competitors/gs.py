"""Group-and-Smooth adapted to social recommendation (paper Section 6.4).

The GS idea (Kellaris & Papadopoulos, PVLDB 2013) extends NOU the way the
paper's framework extends NOE: group query answers, release noisy group
means.  The adaptation, following the paper's description:

Per item ``i`` (items compose in parallel — disjoint edge sets):

1. **Rough estimates** (privacy cost eps/2).  Each preference edge
   ``(v, i)`` contributes to *at most one* rough estimate: a target user
   ``u`` is sampled uniformly from ``{u | v in sim(u)}`` and
   ``sim(u, v) * w(v, i)`` is added to ``mu_rough_u^i``.  Because each edge
   touches one estimate with coefficient at most ``max sim``, the vector of
   rough estimates has sensitivity ``Delta_rough = max_{u,v} sim(u, v)``;
   Laplace noise of scale ``2 * Delta_rough / eps`` makes them private.
2. **Grouping** (free — post-processing of the rough estimates).  Users are
   sorted by rough estimate and cut into consecutive groups of size ``m``.
3. **Smoothing** (privacy cost eps/2).  Each group's *true* mean utility is
   released with Laplace noise of scale ``2 * Delta_NOU / (m * eps)``:
   one edge changes the true answers by at most ``Delta_NOU`` in L1, and
   dividing by the group size bounds the L1 change of the mean vector by
   ``Delta_NOU / m``.  Every user in a group receives the group's noisy
   mean as its utility estimate.

The group size ``m`` trades NOU-style noise (small m) against smoothing
error (large m).  The paper selected the m with the best NDCG against the
true utilities — "technically violating DP", as its footnote 11 admits —
and :func:`select_group_size` reproduces that concession for the Figure 4
comparison.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.base import BaseRecommender, FittedState
from repro.privacy.mechanisms import validate_epsilon
from repro.privacy.sensitivity import utility_query_sensitivity
from repro.similarity.base import SimilarityMeasure
from repro.types import ItemId, UserId

__all__ = ["GroupAndSmooth", "select_group_size"]


class GroupAndSmooth(BaseRecommender):
    """GS-style private social recommender.

    Args:
        measure: social similarity measure.
        epsilon: privacy parameter, split evenly between the rough-estimate
            and smoothing phases (``math.inf`` disables noise in both).
        n: default list length.
        group_size: the grouping parameter ``m`` (>= 1).
        seed: noise seed.

    The full noisy utility matrix is materialised at fit time (the
    mechanism is inherently global: grouping needs all users' answers for
    an item at once), so memory is ``O(|U| * |I|)`` — use this on
    evaluation-scale datasets, as the paper does.
    """

    def __init__(
        self,
        measure: SimilarityMeasure,
        epsilon: float,
        n: int = 10,
        group_size: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(measure, n=n)
        self.epsilon = validate_epsilon(epsilon)
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        self.group_size = group_size
        self.seed = seed
        self._users: List[UserId] = []
        self._user_row: Dict[UserId, int] = {}
        self._estimates: Optional[np.ndarray] = None

    def _prepare(self, state: FittedState) -> None:
        self._users = state.social.users()
        self._user_row = {u: i for i, u in enumerate(self._users)}
        num_users = len(self._users)
        num_items = len(state.items)
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, 3)))

        # True utility matrix (needed to smooth) and reverse similarity
        # index: reverse_sim[v] = [(u, sim(u, v)), ...] for sampling the
        # rough-estimate targets.
        true_utilities = np.zeros((num_users, num_items))
        reverse_sim: Dict[UserId, List[tuple]] = {u: [] for u in self._users}
        max_sim = 0.0
        for u in self._users:
            row = self._user_row[u]
            for v, score in state.similarity.row(u).items():
                max_sim = max(max_sim, score)
                if v in reverse_sim:
                    reverse_sim[v].append((row, score))
                if not state.preferences.has_user(v):
                    continue
                for item, weight in state.preferences.items_of(v).items():
                    true_utilities[row, state.item_index[item]] += score * weight

        noiseless = math.isinf(self.epsilon)
        half_eps = self.epsilon / 2.0 if not noiseless else math.inf

        # Phase 1: rough estimates — each edge feeds one sampled target.
        rough = np.zeros((num_users, num_items))
        for v, item, weight in state.preferences.edges():
            candidates = reverse_sim.get(v)
            if not candidates:
                continue
            row, score = candidates[int(rng.integers(len(candidates)))]
            rough[row, state.item_index[item]] += score * weight
        if not noiseless and max_sim > 0.0:
            rough += rng.laplace(0.0, max_sim / half_eps, size=rough.shape)

        # Phase 3 sensitivity: one edge moves the true answers by at most
        # Delta_NOU in L1; group means divide that by m.
        delta_nou = utility_query_sensitivity(
            state.social, self.measure, cache=state.similarity
        )
        m = min(self.group_size, max(num_users, 1))
        mean_scale = (
            0.0 if noiseless else (delta_nou / m) / half_eps if delta_nou else 0.0
        )

        estimates = np.zeros((num_users, num_items))
        for col in range(num_items):
            order = np.argsort(rough[:, col], kind="stable")
            for start in range(0, num_users, m):
                group = order[start : start + m]
                mean = float(np.mean(true_utilities[group, col]))
                if mean_scale > 0.0:
                    mean += float(rng.laplace(0.0, mean_scale))
                estimates[group, col] = mean
        self._estimates = estimates

    def utilities(self, user: UserId) -> Dict[ItemId, float]:
        """Smoothed noisy utilities for every item."""
        state = self.state
        assert self._estimates is not None
        row = self._user_row.get(user)
        if row is None:
            return {item: 0.0 for item in state.items}
        values = self._estimates[row, :]
        return {item: float(values[i]) for i, item in enumerate(state.items)}

    def recommend(self, user: UserId, n: Optional[int] = None):
        """Top-N from the smoothed matrix row (fast vectorised path)."""
        limit = self.n if n is None else n
        if limit < 1:
            raise ValueError(f"n must be >= 1, got {limit}")
        state = self.state
        assert self._estimates is not None
        row = self._user_row.get(user)
        if row is None:
            values = np.zeros(len(state.items))
        else:
            values = self._estimates[row, :]
        return self._recommend_from_vector(user, state.items, values, limit)


def select_group_size(
    factory,
    candidate_sizes: Sequence[int],
    social,
    preferences,
    reference_rankings,
    ideal_utilities,
    n: int,
    users: Optional[Iterable[UserId]] = None,
) -> int:
    """Pick the GS group size with the best NDCG against true utilities.

    This reproduces the paper's (admittedly DP-violating, footnote 11)
    model-selection protocol for the Figure 4 comparison.

    Args:
        factory: callable ``group_size -> GroupAndSmooth`` building an
            unfitted recommender with the candidate size.
        candidate_sizes: the grid of m values to try.
        social, preferences: the input graphs.
        reference_rankings: per-user non-private rankings.
        ideal_utilities: per-user true utility maps.
        n: NDCG cutoff.
        users: evaluation users (default: reference ranking keys).

    Raises:
        ValueError: if ``candidate_sizes`` is empty.
    """
    from repro.metrics.ndcg import average_ndcg

    if not candidate_sizes:
        raise ValueError("candidate_sizes must be non-empty")
    eval_users = list(users) if users is not None else list(reference_rankings)
    best_size = candidate_sizes[0]
    best_score = -1.0
    for m in candidate_sizes:
        recommender = factory(m)
        recommender.fit(social, preferences)
        rankings = {
            u: recommender.recommend(u, n=n).item_ids() for u in eval_users
        }
        score = average_ndcg(
            rankings, reference_rankings, ideal_utilities, n, users=eval_users
        )
        if score > best_score:
            best_score = score
            best_size = m
    return best_size
