"""Low-Rank Mechanism adapted to social recommendation (paper Section 6.4).

Following the paper's adaptation of Yuan et al. [34]:

- ``W`` is the ``|U| x |U|`` workload matrix with ``W[u, v] = sim(u, v)``.
- ``D_i`` is the 0/1 preference indicator column for item ``i``.
- Factor ``W ~ B L`` with ``B`` of shape ``(|U|, r)`` and ``L`` of shape
  ``(r, |U|)`` (we use a truncated SVD, splitting the singular values
  between the factors).
- Release ``L D_i + Lap(Delta(L)/eps)`` per compressed coordinate, where
  ``Delta(L) = max_v ||L[:, v]||_1`` is the worst-case L1 change of the
  compressed answer vector when one preference edge flips.
- Answer the workload as ``B (L D_i + noise)``.

Parallel composition across items applies because each ``D_i`` is a
disjoint set of preference edges.  The mechanism wins when ``W`` is
genuinely low-rank; the paper observes that social similarity workloads
have near-full rank, which is why LRM underperforms even NOE here.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.core.base import BaseRecommender, FittedState
from repro.privacy.mechanisms import validate_epsilon
from repro.similarity.base import SimilarityMeasure
from repro.types import ItemId, UserId

__all__ = ["LowRankMechanism"]


class LowRankMechanism(BaseRecommender):
    """LRM-style private social recommender.

    Args:
        measure: social similarity measure defining the workload.
        epsilon: privacy parameter (``math.inf`` disables noise).
        n: default list length.
        rank: factorisation rank ``r``; ``None`` keeps every singular value
            above the tolerance (the numerical rank — the paper's choice of
            ``r = rank(W)``).
        tolerance: relative singular-value cutoff used when ``rank`` is
            ``None``.
        seed: noise seed.

    After :meth:`fit`, :attr:`rank_` holds the effective rank and
    :attr:`workload_rank_` the numerical rank of ``W``.
    """

    def __init__(
        self,
        measure: SimilarityMeasure,
        epsilon: float,
        n: int = 10,
        rank: Optional[int] = None,
        tolerance: float = 1e-9,
        seed: int = 0,
    ) -> None:
        super().__init__(measure, n=n)
        self.epsilon = validate_epsilon(epsilon)
        if rank is not None and rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.tolerance = tolerance
        self.seed = seed
        self.rank_: Optional[int] = None
        self.workload_rank_: Optional[int] = None
        self._users: List[UserId] = []
        self._user_row: Dict[UserId, int] = {}
        self._B: Optional[np.ndarray] = None
        self._noisy_LD: Optional[np.ndarray] = None

    def _prepare(self, state: FittedState) -> None:
        self._users = state.social.users()
        self._user_row = {u: i for i, u in enumerate(self._users)}
        num_users = len(self._users)
        num_items = len(state.items)

        # Build the dense workload matrix W[u, v] = sim(u, v).
        workload = np.zeros((num_users, num_users))
        for u in self._users:
            row = self._user_row[u]
            for v, score in state.similarity.row(u).items():
                col = self._user_row.get(v)
                if col is not None:
                    workload[row, col] = score

        # Truncated SVD factorisation W ~ B L.
        if num_users == 0:
            self._B = np.zeros((0, 0))
            self._noisy_LD = np.zeros((0, num_items))
            self.rank_ = 0
            self.workload_rank_ = 0
            return
        u_mat, singular, vt = np.linalg.svd(workload, full_matrices=False)
        cutoff = self.tolerance * (singular[0] if singular.size else 0.0)
        numerical_rank = int(np.sum(singular > cutoff))
        self.workload_rank_ = numerical_rank
        r = numerical_rank if self.rank is None else min(self.rank, singular.size)
        r = max(r, 1)
        self.rank_ = r
        sqrt_s = np.sqrt(singular[:r])
        self._B = u_mat[:, :r] * sqrt_s[np.newaxis, :]
        factor_l = sqrt_s[:, np.newaxis] * vt[:r, :]

        # Preference indicator matrix D (|U| x |I|), then compressed answers.
        indicator = np.zeros((num_users, num_items))
        for user, item, weight in state.preferences.edges():
            row = self._user_row.get(user)
            if row is not None:
                indicator[row, state.item_index[item]] = weight
        compressed = factor_l @ indicator

        if math.isinf(self.epsilon) or num_items == 0:
            self._noisy_LD = compressed
            return
        # One edge flip changes D_i in one coordinate v, moving L D_i by
        # the column L[:, v]; the worst case over v is the max column L1
        # norm.
        sensitivity = float(np.max(np.sum(np.abs(factor_l), axis=0)))
        scale = sensitivity / self.epsilon
        rng = np.random.default_rng(np.random.SeedSequence((self.seed, 2)))
        self._noisy_LD = compressed + rng.laplace(0.0, scale, size=compressed.shape)

    def utilities(self, user: UserId) -> Dict[ItemId, float]:
        """Reconstructed noisy utilities ``B_u (L D + noise)`` per item."""
        state = self.state
        assert self._B is not None and self._noisy_LD is not None
        row = self._user_row.get(user)
        if row is None:
            # A user outside the workload has no similarity mass: all zeros.
            return {item: 0.0 for item in state.items}
        estimates = self._B[row, :] @ self._noisy_LD
        return {item: float(estimates[i]) for i, item in enumerate(state.items)}

    def recommend(self, user: UserId, n: Optional[int] = None):
        """Top-N from the reconstructed vector (fast vectorised path)."""
        limit = self.n if n is None else n
        if limit < 1:
            raise ValueError(f"n must be >= 1, got {limit}")
        state = self.state
        assert self._B is not None and self._noisy_LD is not None
        row = self._user_row.get(user)
        if row is None:
            estimates = np.zeros(len(state.items))
        else:
            estimates = self._B[row, :] @ self._noisy_LD
        return self._recommend_from_vector(user, state.items, estimates, limit)
