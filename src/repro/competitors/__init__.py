"""Competitor mechanisms the paper compares against (Section 6.4).

- :class:`LowRankMechanism` — adaptation of the Low-Rank Mechanism of
  Yuan et al. (PVLDB 2012): factor the similarity workload ``W ~ B L``,
  noise the compressed answers ``L D_i``, reconstruct through ``B``.
- :class:`GroupAndSmooth` — adaptation of the grouping-and-smoothing
  approach of Kellaris & Papadopoulos (PVLDB 2013): private rough utility
  estimates guide a grouping of the true answers; each group is replaced by
  its noisy mean.

Both are NOU-style mechanisms — they perturb the utility answers rather
than the edges — and both inherit NOU's crippling sensitivity, which is the
point the paper's Figure 4 makes.
"""

from repro.competitors.gs import GroupAndSmooth
from repro.competitors.lrm import LowRankMechanism

__all__ = ["LowRankMechanism", "GroupAndSmooth"]
