"""repro — privacy-preserving personalized social recommendations.

A full reproduction of Jorgensen & Yu, *A Privacy-Preserving Framework for
Personalized, Social Recommendations* (EDBT 2014): a framework that turns
top-N social recommenders built on structural similarity measures into
epsilon-differentially-private recommenders by clustering users along the
community structure of the (public) social graph and releasing noisy
per-cluster average preference weights.

Quickstart::

    from repro import (
        PrivateSocialRecommender, SocialRecommender, CommonNeighbors,
        SyntheticDatasetSpec,
    )

    dataset = SyntheticDatasetSpec.lastfm_like(scale=0.1).generate(seed=7)
    private = PrivateSocialRecommender(CommonNeighbors(), epsilon=0.6, n=10)
    private.fit(dataset.social, dataset.preferences)
    print(private.recommend(user=0).item_ids())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.community import (
    Clustering,
    best_louvain_clustering,
    label_propagation_clustering,
    louvain,
    modularity,
    random_clustering,
    single_cluster_clustering,
    singleton_clustering,
)
from repro.cf import ItemBasedCF, ItemCoCounts
from repro.competitors import GroupAndSmooth, LowRankMechanism
from repro.core import (
    NoiseOnEdges,
    NoiseOnUtility,
    PrivateSocialRecommender,
    SocialRecommender,
)
from repro.core.dynamic import (
    DynamicPrivateRecommender,
    decay_allocation,
    uniform_allocation,
)
from repro.cache import SimilarityStore
from repro.datasets import SocialRecDataset, SyntheticDatasetSpec, dataset_stats
from repro.exceptions import (
    BudgetExhaustedError,
    CacheIntegrityError,
    ClusteringError,
    DatasetError,
    GraphError,
    InvalidEpsilonError,
    PrivacyError,
    ReleaseIntegrityError,
    ReproError,
    RetryExhaustedError,
)
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy, fault_point
from repro.graph import PreferenceGraph, SocialGraph
from repro.metrics import average_ndcg, ndcg_at_n
from repro.privacy import LaplaceMechanism, PrivacyBudget
from repro.similarity import (
    AdamicAdar,
    CommonNeighbors,
    CosineSimilarity,
    GraphDistance,
    Jaccard,
    Katz,
    PreferentialAttachment,
    ResourceAllocation,
    get_measure,
    list_measures,
)
from repro.types import RankedItem, RecommendationList

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graphs
    "SocialGraph",
    "PreferenceGraph",
    # similarity
    "CommonNeighbors",
    "GraphDistance",
    "AdamicAdar",
    "Katz",
    "Jaccard",
    "CosineSimilarity",
    "ResourceAllocation",
    "PreferentialAttachment",
    "get_measure",
    "list_measures",
    # community
    "Clustering",
    "louvain",
    "best_louvain_clustering",
    "modularity",
    "random_clustering",
    "singleton_clustering",
    "single_cluster_clustering",
    "label_propagation_clustering",
    # privacy
    "LaplaceMechanism",
    "PrivacyBudget",
    # recommenders
    "SocialRecommender",
    "PrivateSocialRecommender",
    "NoiseOnUtility",
    "NoiseOnEdges",
    "LowRankMechanism",
    "GroupAndSmooth",
    "ItemBasedCF",
    "ItemCoCounts",
    "DynamicPrivateRecommender",
    "uniform_allocation",
    "decay_allocation",
    # datasets & metrics
    "SocialRecDataset",
    "SyntheticDatasetSpec",
    "dataset_stats",
    "ndcg_at_n",
    "average_ndcg",
    # value types & errors
    "RankedItem",
    "RecommendationList",
    "ReproError",
    "GraphError",
    "ClusteringError",
    "PrivacyError",
    "InvalidEpsilonError",
    "BudgetExhaustedError",
    "DatasetError",
    "ReleaseIntegrityError",
    "CacheIntegrityError",
    "RetryExhaustedError",
    # caching
    "SimilarityStore",
    # resilience
    "RetryPolicy",
    "FaultPlan",
    "FaultSpec",
    "fault_point",
]
