"""Approximation / perturbation error decomposition (paper Eqs. 5 and 6).

For a utility estimate computed from noisy cluster averages, the total
error splits into:

- *approximation error* (Eq. 6) — deterministic, caused by replacing each
  edge weight with its cluster average:

      AE_u^i = sum_c sum_{v in sim(u) & c} sim(u, v) * (w(v, i) - c_bar)

  where ``c_bar`` is the *noise-free* cluster average,
- *expected perturbation error* (Eq. 5, right-hand term) — stochastic,
  caused by the Laplace noise on each cluster average:

      PE_u^i = sum_c (sqrt(2) / (eps * |c|)) * sum_{v in sim(u) & c} sim(u, v)

The clustering strategy is judged by how much perturbation error it removes
per unit of approximation error it introduces; the ablation benchmarks plot
exactly these two quantities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.community.clustering import Clustering
from repro.graph.preference_graph import PreferenceGraph
from repro.privacy.mechanisms import validate_epsilon
from repro.types import ItemId, UserId

__all__ = [
    "approximation_error",
    "expected_perturbation_error",
    "ErrorDecomposition",
]


def _cluster_average(
    preferences: PreferenceGraph,
    clustering: Clustering,
    cluster_index: int,
    item: ItemId,
) -> float:
    members = clustering.members_of(cluster_index)
    total = sum(preferences.weight(v, item) for v in members)
    return total / len(members)


def approximation_error(
    similarity_row: Mapping[UserId, float],
    preferences: PreferenceGraph,
    clustering: Clustering,
    item: ItemId,
) -> float:
    """The signed approximation error ``AE_u^i`` of Eq. 6.

    Args:
        similarity_row: ``sim(u, .)`` for the target user.
        preferences: the (true) preference graph.
        clustering: the user clustering.
        item: the item whose utility estimate is being analysed.

    Users in the similarity row that the clustering does not cover are
    ignored (they cannot contribute to a cluster-based estimate).
    """
    per_cluster_sim: Dict[int, float] = {}
    per_cluster_weighted: Dict[int, float] = {}
    for v, score in similarity_row.items():
        if v not in clustering:
            continue
        c = clustering.cluster_of(v)
        per_cluster_sim[c] = per_cluster_sim.get(c, 0.0) + score
        per_cluster_weighted[c] = (
            per_cluster_weighted.get(c, 0.0) + score * preferences.weight(v, item)
        )
    error = 0.0
    for c, sim_sum in per_cluster_sim.items():
        c_bar = _cluster_average(preferences, clustering, c, item)
        error += per_cluster_weighted[c] - sim_sum * c_bar
    return error


def expected_perturbation_error(
    similarity_row: Mapping[UserId, float],
    clustering: Clustering,
    epsilon: float,
) -> float:
    """The expected perturbation error term of Eq. 5.

    ``sum_c (sqrt(2)/(eps*|c|)) * sum_{v in sim(u) & c} sim(u, v)``

    Returns 0.0 for ``epsilon = inf`` (no noise).

    Raises:
        InvalidEpsilonError: for an invalid epsilon.
    """
    epsilon = validate_epsilon(epsilon)
    if math.isinf(epsilon):
        return 0.0
    per_cluster_sim: Dict[int, float] = {}
    for v, score in similarity_row.items():
        if v not in clustering:
            continue
        c = clustering.cluster_of(v)
        per_cluster_sim[c] = per_cluster_sim.get(c, 0.0) + score
    return sum(
        (math.sqrt(2.0) / (epsilon * clustering.size_of(c))) * sim_sum
        for c, sim_sum in per_cluster_sim.items()
    )


@dataclass(frozen=True)
class ErrorDecomposition:
    """Both error components for one utility estimate.

    Attributes:
        approximation: signed AE_u^i (Eq. 6).
        expected_perturbation: expected |noise| contribution (Eq. 5).
    """

    approximation: float
    expected_perturbation: float

    @property
    def expected_total(self) -> float:
        """|approximation| + expected perturbation — an upper-bound proxy
        for the expected absolute error of the estimate."""
        return abs(self.approximation) + self.expected_perturbation

    @classmethod
    def compute(
        cls,
        similarity_row: Mapping[UserId, float],
        preferences: PreferenceGraph,
        clustering: Clustering,
        item: ItemId,
        epsilon: float,
    ) -> "ErrorDecomposition":
        """Evaluate both components for one (user, item) utility estimate."""
        return cls(
            approximation=approximation_error(
                similarity_row, preferences, clustering, item
            ),
            expected_perturbation=expected_perturbation_error(
                similarity_row, clustering, epsilon
            ),
        )
