"""Normalized discounted cumulative gain, exactly as the paper defines it.

Paper Eq. 2:

    NDCG@N = (1/|U|) * sum_u DCG(R_u_hat, u) / DCG(R_u, u)

    DCG(X, u) = sum_{i in X} mu_u^i / max(1, log2(p(i)) + 1)

where ``p(i)`` is the 1-based rank of item ``i`` in the list ``X`` and
``mu_u^i`` is the *ideal* utility — the one computed by the non-private
recommender.  Both the private list and the reference list are scored with
ideal utilities, so a private recommender that surfaces different items of
equal true utility loses nothing (the property the paper wants from the
metric, unlike precision/recall).

Note the discount uses ``log2(rank) + 1``: rank 1 and rank 2 both divide by
values <= 2, and ``max(1, .)`` clamps rank 1's discount to exactly 1.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.types import ItemId, UserId

__all__ = [
    "dcg",
    "ndcg_at_n",
    "average_ndcg",
    "dcg_discounts",
    "dcg_array",
    "ndcg_from_gains",
]


def dcg(
    ranked_items: Sequence[ItemId], ideal_utilities: Mapping[ItemId, float]
) -> float:
    """Discounted cumulative gain of a ranked list under ideal utilities.

    Args:
        ranked_items: items in rank order (best first).
        ideal_utilities: true utility of each item for the target user;
            missing items contribute zero gain.
    """
    total = 0.0
    for position, item in enumerate(ranked_items, start=1):
        gain = ideal_utilities.get(item, 0.0)
        if gain:
            total += gain / max(1.0, math.log2(position) + 1.0)
    return total


def ndcg_at_n(
    private_ranking: Sequence[ItemId],
    reference_ranking: Sequence[ItemId],
    ideal_utilities: Mapping[ItemId, float],
    n: int,
) -> float:
    """Per-user NDCG@N of a private ranking against the non-private one.

    Both rankings are truncated to the top ``n`` before scoring.  When the
    reference DCG is zero — the user has no positive-utility items at all —
    the private recommender cannot do anything wrong, so the score is 1.0.

    Raises:
        ValueError: if ``n`` < 1.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    reference_dcg = dcg(reference_ranking[:n], ideal_utilities)
    if reference_dcg <= 0.0:
        return 1.0
    return dcg(private_ranking[:n], ideal_utilities) / reference_dcg


def average_ndcg(
    private_rankings: Mapping[UserId, Sequence[ItemId]],
    reference_rankings: Mapping[UserId, Sequence[ItemId]],
    ideal_utilities: Mapping[UserId, Mapping[ItemId, float]],
    n: int,
    users: Iterable[UserId] = None,
) -> float:
    """Dataset-level NDCG@N: the mean per-user score (paper Eq. 2).

    Args:
        private_rankings: per-user ranked item lists from the private
            recommender.
        reference_rankings: per-user ranked lists from the non-private
            recommender.
        ideal_utilities: per-user true utility maps.
        n: cutoff.
        users: restrict the average to these users (default: the users of
            ``reference_rankings``).

    Raises:
        ValueError: if there are no users to average over, or n < 1.
    """
    if users is None:
        users = list(reference_rankings)
    else:
        users = list(users)
    if not users:
        raise ValueError("average_ndcg needs at least one user")
    total = 0.0
    for user in users:
        total += ndcg_at_n(
            private_rankings[user], reference_rankings[user], ideal_utilities[user], n
        )
    return total / len(users)


def dcg_discounts(length: int) -> np.ndarray:
    """Discount denominators ``max(1, log2(p) + 1)`` for ranks 1..length.

    Computed with ``math.log2`` — the same call the scalar :func:`dcg`
    makes — so the array path divides by bit-identical denominators.
    """
    return np.array(
        [max(1.0, math.log2(position) + 1.0) for position in range(1, length + 1)]
    )


def dcg_array(gains: np.ndarray) -> np.ndarray:
    """Cumulative DCG along the last axis of a gain tensor.

    ``gains[..., p]`` is the ideal utility of the item ranked at position
    ``p + 1``; entries past the end of a shorter ranking are zero.  The
    result has the same shape, with ``out[..., k]`` equal to the DCG of
    the first ``k + 1`` positions — every truncation of the ranking scored
    in one pass.

    Bit-identical to the scalar :func:`dcg` on each prefix: the
    denominators come from :func:`dcg_discounts` (``math.log2``), the
    per-position terms are the same ``gain / denominator`` division, and
    ``np.cumsum`` accumulates them sequentially in rank order exactly like
    the reference loop (the zero gains the loop skips are exact no-ops
    under IEEE addition).
    """
    gains = np.asarray(gains, dtype=float)
    length = gains.shape[-1]
    if length == 0:
        return np.zeros_like(gains)
    return np.cumsum(gains / dcg_discounts(length), axis=-1)


def ndcg_from_gains(
    private_gains: np.ndarray,
    reference_gains: np.ndarray,
    ns: Sequence[int],
) -> np.ndarray:
    """NDCG@n for a batch of users at every cutoff, from gain matrices.

    Args:
        private_gains: ``(num_users, depth)`` — row ``u``, column ``p``
            holds the ideal utility of the item the private recommender
            ranked at position ``p + 1`` for user ``u`` **in the ranking
            produced for the largest cutoff**; pad with zeros when a
            ranking is shorter than ``depth``.  Callers whose per-cutoff
            rankings are not prefixes of each other must build one gain
            matrix per cutoff instead.
        reference_gains: same layout for the non-private ranking.
        ns: cutoffs; each must be >= 1.  Cutoffs beyond ``depth`` score
            the full available ranking, like the scalar truncation.

    Returns:
        ``(num_users, len(ns))`` array; ``[u, j]`` is the NDCG@``ns[j]``
        of user ``u``, exactly matching :func:`ndcg_at_n` on the same
        rankings (including the 1.0 convention for a non-positive
        reference DCG).

    Raises:
        ValueError: if any cutoff is < 1 or the shapes disagree.
    """
    private_gains = np.atleast_2d(np.asarray(private_gains, dtype=float))
    reference_gains = np.atleast_2d(np.asarray(reference_gains, dtype=float))
    if private_gains.shape != reference_gains.shape:
        raise ValueError(
            "gain matrices disagree: "
            f"{private_gains.shape} vs {reference_gains.shape}"
        )
    cutoffs = np.asarray(list(ns), dtype=int)
    if cutoffs.size and cutoffs.min() < 1:
        raise ValueError(f"n must be >= 1, got {cutoffs.min()}")
    num_users, depth = private_gains.shape
    if depth == 0:
        # Empty rankings: reference DCG is 0 everywhere -> all ones.
        return np.ones((num_users, cutoffs.size))
    columns = np.minimum(cutoffs, depth) - 1
    private_dcg = dcg_array(private_gains)[:, columns]
    reference_dcg = dcg_array(reference_gains)[:, columns]
    scores = np.ones_like(private_dcg)
    positive = reference_dcg > 0.0
    scores[positive] = private_dcg[positive] / reference_dcg[positive]
    return scores


def per_user_ndcg(
    private_rankings: Mapping[UserId, Sequence[ItemId]],
    reference_rankings: Mapping[UserId, Sequence[ItemId]],
    ideal_utilities: Mapping[UserId, Mapping[ItemId, float]],
    n: int,
) -> Dict[UserId, float]:
    """NDCG@N for every user of ``reference_rankings`` (used by Fig. 3)."""
    return {
        user: ndcg_at_n(
            private_rankings[user], reference_rankings[user], ideal_utilities[user], n
        )
        for user in reference_rankings
    }
