"""Ranking helpers: deterministic top-N selection and set-based metrics.

All recommenders in the library rank with :func:`rank_items` so their
tie-breaking policy is identical — descending utility, then ascending item
identifier.  Without a shared deterministic tie-break, NDCG comparisons
between a private and a non-private recommender would carry spurious noise
from arbitrary orderings of equal-utility items.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Set

from repro.types import ItemId

__all__ = ["rank_items", "precision_at_n", "recall_at_n"]


def rank_items(utilities: Mapping[ItemId, float], n: int = None) -> List[ItemId]:
    """Items sorted by descending utility, ties broken by item identifier.

    Args:
        utilities: item -> score.  Items with zero or negative score are
            still ranked (a private recommender may legitimately output
            noisy negative utilities).
        n: optional truncation to the top ``n``.

    Item identifiers of mixed non-comparable types fall back to a
    representation-based tie-break so ranking never raises.
    """
    items = list(utilities)
    try:
        items.sort(key=lambda i: (-utilities[i], i))
    except TypeError:
        items.sort(key=lambda i: (-utilities[i], repr(i)))
    return items if n is None else items[:n]


def precision_at_n(
    recommended: Sequence[ItemId], relevant: Set[ItemId], n: int
) -> float:
    """|top-n recommended ∩ relevant| / n.

    Raises:
        ValueError: if ``n`` < 1.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    top = recommended[:n]
    if not top:
        return 0.0
    hits = sum(1 for item in top if item in relevant)
    return hits / n


def recall_at_n(
    recommended: Sequence[ItemId], relevant: Set[ItemId], n: int
) -> float:
    """|top-n recommended ∩ relevant| / |relevant| (1.0 when nothing is relevant).

    Raises:
        ValueError: if ``n`` < 1.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not relevant:
        return 1.0
    hits = sum(1 for item in recommended[:n] if item in relevant)
    return hits / len(relevant)
