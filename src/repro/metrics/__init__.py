"""Accuracy metrics and error decomposition (paper Sections 2.4 and 5.1.2).

- :func:`ndcg_at_n` / :func:`average_ndcg` — normalized discounted
  cumulative gain, the paper's primary accuracy metric (Eq. 2), computed
  against the *ideal* utilities of the non-private recommender.
- :func:`precision_at_n` / :func:`recall_at_n` — included for contrast;
  the paper explains why they are the wrong metric here.
- :mod:`repro.metrics.errors` — the approximation-error (Eq. 6) and
  expected-perturbation-error (Eq. 5) decomposition that motivates the
  clustering strategy.
"""

from repro.metrics.errors import (
    ErrorDecomposition,
    approximation_error,
    expected_perturbation_error,
)
from repro.metrics.coverage import (
    catalog_coverage,
    item_exposure,
    recommendation_gini,
)
from repro.metrics.ndcg import (
    average_ndcg,
    dcg,
    dcg_array,
    dcg_discounts,
    ndcg_at_n,
    ndcg_from_gains,
    per_user_ndcg,
)
from repro.metrics.ranking import precision_at_n, rank_items, recall_at_n

__all__ = [
    "dcg",
    "ndcg_at_n",
    "average_ndcg",
    "per_user_ndcg",
    "dcg_discounts",
    "dcg_array",
    "ndcg_from_gains",
    "rank_items",
    "precision_at_n",
    "recall_at_n",
    "approximation_error",
    "expected_perturbation_error",
    "ErrorDecomposition",
    "catalog_coverage",
    "recommendation_gini",
    "item_exposure",
]
