"""Aggregate recommendation-quality metrics beyond per-user NDCG.

Differentially private rankings do not just lose per-user accuracy — the
noise also reshapes *what the system recommends overall*.  Two standard
aggregate lenses:

- :func:`catalog_coverage` — the fraction of the item universe that
  appears in at least one user's top-N.  Laplace noise pushes coverage
  *up* (random items surface), which looks like diversity but is really
  signal loss.
- :func:`recommendation_gini` — inequality of recommendation exposure
  across items (0 = uniform exposure, 1 = one item takes every slot).
  Noise pushes Gini *down* for the same reason.

Tracking these alongside NDCG shows whether a private recommender is
still making deliberate choices or has started spraying the catalog.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.types import ItemId, UserId

__all__ = ["catalog_coverage", "recommendation_gini", "item_exposure"]


def item_exposure(
    rankings: Mapping[UserId, Sequence[ItemId]],
) -> Dict[ItemId, int]:
    """item -> number of recommendation lists containing it."""
    exposure: Dict[ItemId, int] = {}
    for items in rankings.values():
        for item in items:
            exposure[item] = exposure.get(item, 0) + 1
    return exposure


def catalog_coverage(
    rankings: Mapping[UserId, Sequence[ItemId]],
    catalog: Iterable[ItemId],
) -> float:
    """Fraction of the catalog recommended to at least one user.

    Raises:
        ValueError: for an empty catalog.
    """
    catalog = set(catalog)
    if not catalog:
        raise ValueError("catalog must be non-empty")
    recommended = set()
    for items in rankings.values():
        recommended.update(items)
    return len(recommended & catalog) / len(catalog)


def recommendation_gini(
    rankings: Mapping[UserId, Sequence[ItemId]],
    catalog: Iterable[ItemId],
) -> float:
    """Gini coefficient of item exposure over the whole catalog.

    Items never recommended count with exposure zero, so a recommender
    that concentrates every list on a few blockbusters scores near 1.

    Raises:
        ValueError: for an empty catalog or no recommendations at all.
    """
    catalog = list(dict.fromkeys(catalog))
    if not catalog:
        raise ValueError("catalog must be non-empty")
    exposure = item_exposure(rankings)
    counts = np.array([exposure.get(item, 0) for item in catalog], dtype=float)
    total = counts.sum()
    if total == 0:
        raise ValueError("rankings contain no recommendations")
    counts.sort()
    n = counts.size
    if n == 1:
        return 0.0
    # Standard Gini formula over the sorted exposure counts.
    index = np.arange(1, n + 1)
    return float((2.0 * (index * counts).sum() / (n * total)) - (n + 1.0) / n)
