"""Preference-edge reconstruction through a victim's observation channel.

The Section 2.3 sybil attack gives the adversary an *observation
channel*: a fake account whose similarity set reduces to the victim, so
its utility vector is a function of the victim's private edges.  The
sybil module reads that channel as a top-N list; this module generalizes
the readout to a **per-edge recovery score** — every item in the
universe is ranked by the observer's utility, and the ranking is scored
against the victim's true edge set:

- **AUC** — probability that a random true edge outranks a random
  non-edge (1.0 = perfect reconstruction, 0.5 = chance);
- **recovery@degree** — the fraction of the victim's edges inside the
  top-``degree`` positions (the attacker's best guess at the edge set
  when told only its size).

Against the exact recommender the channel is the victim's edge
indicator itself and AUC is 1.0; against the private recommender the
released averages mix the victim into their cluster and the Laplace
noise floors the ranking — the empirical face of Theorem 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.attacks.sybil import SybilAttack
from repro.graph.preference_graph import PreferenceGraph
from repro.graph.social_graph import SocialGraph
from repro.types import ItemId, UserId

__all__ = [
    "ReconstructionResult",
    "edge_recovery_scores",
    "run_reconstruction_experiment",
    "victim_edge_mask",
]


@dataclass(frozen=True)
class ReconstructionResult:
    """Outcome of the edge-reconstruction attack on one audit cell.

    Attributes:
        victim / observer: the attacked user and the sybil account.
        repeats: independent channel observations scored (releases for
            the private mechanism, 1 for deterministic channels).
        auc: mean ranking AUC across repeats.
        recovery: mean recovery@degree across repeats.
        auc_per_repeat: per-observation AUCs, for dispersion.
        deterministic: the channel is a fixed function of the deployed
            configuration (single observation tells all).
    """

    victim: UserId
    observer: UserId
    repeats: int
    auc: float
    recovery: float
    auc_per_repeat: Tuple[float, ...]
    deterministic: bool


def edge_recovery_scores(
    scores: np.ndarray, positives: np.ndarray
) -> Tuple[float, float]:
    """Score one channel observation against the victim's true edges.

    Args:
        scores: observer utility per item (any ranking-compatible
            scale), aligned with ``positives``.
        positives: boolean mask of the victim's true preference edges.

    Returns:
        ``(auc, recovery_at_degree)``.  Ties get average rank in the
        AUC; the top-``k`` cut breaks ties by item position (stable), so
        both scores are deterministic functions of the inputs.

    Raises:
        ValueError: on shape mismatch or a degenerate mask (no
            positives, or nothing but positives).
    """
    scores = np.asarray(scores, dtype=float).ravel()
    positives = np.asarray(positives, dtype=bool).ravel()
    if scores.shape != positives.shape:
        raise ValueError(
            f"scores and positives disagree: {scores.shape} vs {positives.shape}"
        )
    k = int(positives.sum())
    if k == 0 or k == positives.size:
        raise ValueError(
            "edge recovery needs at least one true edge and one non-edge"
        )
    from scipy.stats import rankdata

    ranks = rankdata(scores, method="average")
    auc = (ranks[positives].sum() - k * (k + 1) / 2.0) / (
        k * (positives.size - k)
    )
    top = np.argsort(-scores, kind="stable")[:k]
    recovery = float(positives[top].sum()) / k
    return float(auc), recovery


def victim_edge_mask(
    preferences: PreferenceGraph, victim: UserId, items: Sequence[ItemId]
) -> np.ndarray:
    """Boolean indicator of the victim's edges over a fixed item order."""
    owned = (
        preferences.items_of(victim) if preferences.has_user(victim) else {}
    )
    return np.array([item in owned for item in items], dtype=bool)


def run_reconstruction_experiment(
    social: SocialGraph,
    preferences: PreferenceGraph,
    victim: UserId,
    recommender_factory,
    sybil_id: UserId = "__sybil__",
) -> ReconstructionResult:
    """End-to-end reconstruction against one recommender.

    Plans the sybil observation channel, fits the recommender on the
    attacked graph, and scores the observer's full utility vector
    against the victim's true edge set.  One fit, one observation —
    the deterministic-channel regression path; the audit driver's
    private path instead re-noises one release per repeat at sweep
    speed (see :mod:`repro.attacks.audit`).
    """
    attack = SybilAttack(sybil_id=sybil_id)
    attacked_graph, observer = attack.plan(social, victim)
    recommender = recommender_factory()
    recommender.fit(attacked_graph, preferences)
    items = preferences.items()
    scores = attack.readout_scores(recommender, observer, items)
    positives = victim_edge_mask(preferences, victim, items)
    auc, recovery = edge_recovery_scores(scores, positives)
    return ReconstructionResult(
        victim=victim,
        observer=observer,
        repeats=1,
        auc=auc,
        recovery=recovery,
        auc_per_repeat=(auc,),
        deterministic=True,
    )
