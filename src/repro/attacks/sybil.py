"""The Sybil inference attack of paper Section 2.3.

The attack, for the Common Neighbors (or Adamic/Adar) measure:

1. The attacker finds an immediate neighbor ``a`` of the victim with no
   other neighbors (degree exactly 1), or *creates* that situation by
   linking two Sybils and tricking the victim via profile cloning.
2. The attacker registers a fresh account ``b`` and befriends ``a``.
3. Now ``sim(b, victim) > 0`` through the shared neighbor ``a``, and —
   crucially — the victim is the *only* user similar to ``b``, so every
   recommendation ``b`` receives is a direct readout of the victim's
   private preference edges.

Against the differentially private recommender the same observation
channel exists, but Theorem 4 bounds what it can reveal; empirically the
noisy cluster averages give ``b`` a ranking dominated by cluster-level
popularity and noise rather than the victim's individual edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.base import BaseRecommender
from repro.exceptions import NodeNotFoundError, ReproError
from repro.graph.preference_graph import PreferenceGraph
from repro.graph.social_graph import SocialGraph
from repro.types import ItemId, UserId

__all__ = ["SybilAttack", "SybilAttackReport", "run_attack_experiment"]


class SybilAttack:
    """Plans and evaluates the Section 2.3 inference attack.

    Args:
        sybil_id: identifier for the attacker's fake account; must not
            collide with an existing user.
    """

    def __init__(self, sybil_id: UserId = "__sybil__") -> None:
        self.sybil_id = sybil_id

    # ------------------------------------------------------------------
    # attack planning
    # ------------------------------------------------------------------
    def find_vulnerable_anchor(
        self, graph: SocialGraph, victim: UserId
    ) -> Optional[UserId]:
        """A degree-1 neighbor of the victim, if one exists (attack step 1)."""
        if victim not in graph:
            raise NodeNotFoundError(victim)
        for nbr in sorted(graph.neighbors(victim), key=repr):
            if graph.degree(nbr) == 1:
                return nbr
        return None

    def plan(
        self, graph: SocialGraph, victim: UserId, force_anchor: bool = True
    ) -> Tuple[SocialGraph, UserId]:
        """Build the post-attack social graph (steps 1–2).

        Args:
            graph: the original social graph (not modified).
            victim: the user whose preferences the attacker targets.
            force_anchor: when the victim has no degree-1 neighbor, inject
                one (modeling the profile-cloning variant where the victim
                is tricked into accepting a Sybil friend).

        Returns:
            ``(attacked_graph, observer)`` where ``observer`` is the Sybil
            account whose recommendations the attacker reads.

        Raises:
            ReproError: if the Sybil identifier collides, or no anchor
                exists and ``force_anchor`` is False.
        """
        if self.sybil_id in graph:
            raise ReproError(f"sybil id {self.sybil_id!r} already exists in graph")
        attacked = graph.copy()
        anchor = self.find_vulnerable_anchor(graph, victim)
        if anchor is None:
            if not force_anchor:
                raise ReproError(
                    f"victim {victim!r} has no degree-1 neighbor and "
                    f"force_anchor is False"
                )
            anchor = f"{self.sybil_id}-anchor"
            if anchor in graph:
                raise ReproError(f"anchor id {anchor!r} already exists in graph")
            attacked.add_edge(victim, anchor)
        attacked.add_edge(self.sybil_id, anchor)
        return attacked, self.sybil_id

    def plan_chained(
        self,
        graph: SocialGraph,
        victim: UserId,
        chain_length: int,
        force_anchor: bool = True,
    ) -> Tuple[SocialGraph, UserId]:
        """The chained variant for distance-based measures (Section 2.3).

        Graph Distance with cutoff ``d`` (or Katz with cutoff ``k``) puts
        the victim inside the observer's similarity set as long as the
        observer is within the cutoff.  The attacker links
        ``chain_length`` Sybils in a line ending at the anchor; the far
        end is the observer, sitting ``chain_length + 1`` hops from the
        victim.  ``chain_length = 1`` reduces to :meth:`plan`.

        Args:
            graph: the original social graph (not modified).
            victim: the targeted user.
            chain_length: number of Sybil accounts to chain (>= 1).  For a
                distance cutoff ``d`` use ``d - 1``.
            force_anchor: inject a degree-1 anchor when none exists.

        Returns:
            ``(attacked_graph, observer)``.

        Raises:
            ValueError: if ``chain_length`` < 1.
            ReproError: on identifier collisions or a missing anchor with
                ``force_anchor=False``.
        """
        if chain_length < 1:
            raise ValueError(f"chain_length must be >= 1, got {chain_length}")
        attacked, first = self.plan(graph, victim, force_anchor=force_anchor)
        observer = first
        for link in range(1, chain_length):
            next_id = f"{self.sybil_id}-{link}"
            if next_id in graph:
                raise ReproError(f"sybil id {next_id!r} already exists in graph")
            attacked.add_edge(next_id, observer)
            observer = next_id
        return attacked, observer

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def readout_scores(
        self,
        recommender: BaseRecommender,
        observer: UserId,
        items: Sequence[ItemId],
    ) -> np.ndarray:
        """The observation channel: observer utility per item, as a vector.

        This is the attack's raw readout — a function of the victim's
        private edges (plus whatever noise the mechanism injected) —
        aligned with ``items``.  Items the recommender does not score
        read as 0.0.  The audit suite's reconstruction attack
        (:mod:`repro.attacks.reconstruction`) ranks this vector against
        the victim's true edge set; :meth:`infer_items` is the paper's
        top-N view of the same channel.
        """
        utilities = recommender.utilities(observer)
        return np.array(
            [float(utilities.get(item, 0.0)) for item in items]
        )

    def infer_items(
        self, recommender: BaseRecommender, observer: UserId, top_n: int
    ) -> List[ItemId]:
        """The items the attacker concludes the victim prefers.

        With the observer's similarity set reduced to (essentially) the
        victim, positive-utility recommendations map one-to-one onto the
        victim's preference edges for a non-private recommender.
        """
        ranked = recommender.recommend(observer, n=top_n)
        return [entry.item for entry in ranked if entry.utility > 0.0]


@dataclass(frozen=True)
class SybilAttackReport:
    """Outcome of one attack run.

    Attributes:
        victim: the targeted user.
        observer: the Sybil account.
        inferred: items the attacker claims the victim prefers.
        actual: the victim's true preference items.
        precision: |inferred & actual| / |inferred| (1.0 when nothing
            inferred — the attacker made no false claims).
        recall: |inferred & actual| / |actual| (0.0 when the victim has no
            items).
    """

    victim: UserId
    observer: UserId
    inferred: Tuple[ItemId, ...]
    actual: Tuple[ItemId, ...]
    precision: float
    recall: float


def run_attack_experiment(
    social: SocialGraph,
    preferences: PreferenceGraph,
    victim: UserId,
    recommender_factory,
    top_n: int = 50,
    sybil_id: UserId = "__sybil__",
) -> SybilAttackReport:
    """Run the end-to-end attack against one recommender.

    Args:
        social: the pre-attack social graph.
        preferences: the private preference graph.
        victim: the targeted user.
        recommender_factory: zero-argument callable returning an unfitted
            recommender (private or not).
        top_n: how many recommendations the attacker inspects.
        sybil_id: identifier for the fake account.

    Returns:
        A :class:`SybilAttackReport` with precision/recall of the inference.
    """
    attack = SybilAttack(sybil_id=sybil_id)
    attacked_graph, observer = attack.plan(social, victim)
    recommender = recommender_factory()
    recommender.fit(attacked_graph, preferences)
    inferred = attack.infer_items(recommender, observer, top_n)
    actual: Set[ItemId] = set()
    if preferences.has_user(victim):
        actual = set(preferences.items_of(victim))
    hit = sum(1 for item in inferred if item in actual)
    precision = hit / len(inferred) if inferred else 1.0
    recall = hit / len(actual) if actual else 0.0
    return SybilAttackReport(
        victim=victim,
        observer=observer,
        inferred=tuple(inferred),
        actual=tuple(sorted(actual, key=repr)),
        precision=precision,
        recall=recall,
    )
