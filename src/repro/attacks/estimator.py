"""Empirical epsilon lower bounds from attack trial outcomes.

An eps-DP mechanism bounds every rejection region ``S`` of any
distinguishing test between two neighbouring inputs:

    P1(S) <= e^eps * P0(S)    and    P0(S) <= e^eps * P1(S)

so any attack that *observes* a region with a large likelihood ratio
certifies a **lower bound** on the mechanism's true epsilon.  Given
samples of the attack statistic under both worlds (the victim's edge
absent / present), :func:`empirical_epsilon_lower_bound` sweeps
threshold tests over the pooled sample points and converts the observed
true/false-positive counts into a high-confidence bound via
Clopper–Pearson binomial intervals:

    eps_hat = max_tau  log( lower_CP(TPR) / upper_CP(FPR) )

with the confidence level Bonferroni-corrected over every threshold
considered, so the *whole sweep* overstates the true epsilon with
probability at most ``failure_probability``.  (The thresholds are taken
at the realized sample points; the Bonferroni union over all of them is
the standard conservative discount for that data dependence.)

Two properties the audit suite relies on, both pinned by tests:

- **Soundness** — on a pure Laplace mechanism with known epsilon the
  bound essentially never exceeds it (the hypothesis calibration test).
- **Monotonicity under common random numbers** — with the default
  ``orientation="greater"`` only threshold families whose bound is
  non-decreasing in the true separation are swept, so an audit that
  reuses one canonical unit-noise draw across an epsilon sweep (see
  :mod:`repro.attacks.membership`) produces bounds that are monotone
  non-decreasing in the configured epsilon by construction, not luck.

A mechanism whose observation channel is *deterministic* (both sample
arrays constant) admits no likelihood-ratio bound at all: if the two
worlds disagree the channel separates them perfectly and the bound is
clipped at :data:`EPS_SENTINEL` — the audit's way of reporting
"effectively unbounded" for the non-private baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "EPS_SENTINEL",
    "EmpiricalEpsilon",
    "clopper_pearson_bounds",
    "empirical_epsilon_lower_bound",
]

#: Reported epsilon for a perfectly-distinguishing (deterministic)
#: channel — "unbounded" clipped to a finite, JSON-safe value.
EPS_SENTINEL = 1e6

#: Default probability that the sweep's bound exceeds the true epsilon.
DEFAULT_FAILURE_PROBABILITY = 1e-6


@dataclass(frozen=True)
class EmpiricalEpsilon:
    """One empirical lower bound on a mechanism's epsilon.

    Attributes:
        epsilon: the certified lower bound (0.0 when no test separates
            the worlds; :data:`EPS_SENTINEL` for a deterministic channel
            that distinguishes them exactly).
        deterministic: the channel produced constant statistics in both
            worlds — no likelihood ratio exists, the bound is exact.
        clipped: the bound was cut off at ``sentinel``.
        threshold: the winning test's threshold (None when degenerate).
        direction: ``"greater"`` (reject when statistic >= threshold) or
            ``"less"``; None when degenerate.
        tpr / fpr: raw attack rates of the winning test, before the
            Clopper–Pearson discount.
        trials_without / trials_with: sample sizes per world.
        failure_probability: the bound's overall error budget.
    """

    epsilon: float
    deterministic: bool
    clipped: bool
    threshold: Optional[float]
    direction: Optional[str]
    tpr: float
    fpr: float
    trials_without: int
    trials_with: int
    failure_probability: float


def clopper_pearson_bounds(
    successes: np.ndarray, trials: int, alpha: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-entry exact binomial bounds ``(lower, upper)`` at level ``alpha``.

    ``lower[i]`` is the one-sided lower confidence bound for the success
    probability given ``successes[i]`` of ``trials`` (0.0 when no
    successes); ``upper[i]`` the one-sided upper bound (1.0 when every
    trial succeeded).  Each bound individually fails with probability at
    most ``alpha``.
    """
    from scipy.stats import beta

    k = np.asarray(successes, dtype=float)
    lower = np.zeros_like(k)
    upper = np.ones_like(k)
    some = k > 0
    lower[some] = beta.ppf(alpha, k[some], trials - k[some] + 1)
    not_all = k < trials
    upper[not_all] = beta.ppf(1.0 - alpha, k[not_all] + 1, trials - k[not_all])
    return lower, upper


def _count_ge(sorted_samples: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """How many samples are >= each threshold."""
    return sorted_samples.size - np.searchsorted(
        sorted_samples, thresholds, side="left"
    )


def _count_le(sorted_samples: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """How many samples are <= each threshold."""
    return np.searchsorted(sorted_samples, thresholds, side="right")


def empirical_epsilon_lower_bound(
    without: np.ndarray,
    with_: np.ndarray,
    failure_probability: float = DEFAULT_FAILURE_PROBABILITY,
    orientation: str = "greater",
    sentinel: float = EPS_SENTINEL,
) -> EmpiricalEpsilon:
    """The best certified epsilon lower bound over all threshold tests.

    Args:
        without: attack statistics sampled with the victim's edge absent
            (world 0).
        with_: statistics sampled with the edge present (world 1).
        failure_probability: probability budget for the whole sweep to
            overstate the true epsilon (Bonferroni-split across tests).
        orientation: ``"greater"`` (default) assumes the edge's presence
            shifts the statistic upward and sweeps only the two
            monotone-in-separation test families — required for the
            audit's epsilon-monotonicity guarantee under common random
            numbers.  ``"two-sided"`` also sweeps the mirrored families
            (for channels of unknown sign) at the cost of that
            guarantee.
        sentinel: cap for the reported epsilon (deterministic channels).

    Raises:
        ValueError: for empty or NaN inputs, an unknown orientation, or
            a failure probability outside (0, 1).
    """
    if orientation not in ("greater", "two-sided"):
        raise ValueError(
            f"orientation must be 'greater' or 'two-sided', got {orientation!r}"
        )
    if not 0.0 < failure_probability < 1.0:
        raise ValueError(
            f"failure_probability must be in (0, 1), got {failure_probability}"
        )
    x0 = np.asarray(without, dtype=float).ravel()
    x1 = np.asarray(with_, dtype=float).ravel()
    if x0.size == 0 or x1.size == 0:
        raise ValueError("both worlds need at least one sample")
    if np.isnan(x0).any() or np.isnan(x1).any():
        raise ValueError("attack statistics must not contain NaN")

    degenerate = EmpiricalEpsilon(
        epsilon=0.0,
        deterministic=True,
        clipped=False,
        threshold=None,
        direction=None,
        tpr=0.0,
        fpr=0.0,
        trials_without=x0.size,
        trials_with=x1.size,
        failure_probability=failure_probability,
    )
    if np.ptp(x0) == 0.0 and np.ptp(x1) == 0.0:
        # A deterministic channel: the mechanism maps each world to one
        # value.  Equal values -> indistinguishable; different values ->
        # a perfect test, which no finite epsilon permits.
        if x0[0] == x1[0]:
            return degenerate
        greater = x1[0] > x0[0]
        return EmpiricalEpsilon(
            epsilon=sentinel,
            deterministic=True,
            clipped=True,
            threshold=float(x1[0]),
            direction="greater" if greater else "less",
            tpr=1.0,
            fpr=0.0,
            trials_without=x0.size,
            trials_with=x1.size,
            failure_probability=failure_probability,
        )

    thresholds = np.concatenate([x0, x1])
    n0, n1 = x0.size, x1.size
    s0 = np.sort(x0)
    s1 = np.sort(x1)
    directions = 2 if orientation == "greater" else 4
    alpha = failure_probability / (directions * thresholds.size)

    candidates = []
    # Reject "edge present" when the statistic clears the threshold:
    # bound log( CP_lo(P1[x >= tau]) / CP_up(P0[x >= tau]) ).
    candidates.append(("greater", _count_ge(s1, thresholds), n1,
                       _count_ge(s0, thresholds), n0))
    # The complementary family: low statistics are evidence of absence,
    # i.e. bound log( CP_lo(P0[x <= tau]) / CP_up(P1[x <= tau]) ).
    candidates.append(("less", _count_le(s0, thresholds), n0,
                       _count_le(s1, thresholds), n1))
    if orientation == "two-sided":
        candidates.append(("greater", _count_ge(s0, thresholds), n0,
                           _count_ge(s1, thresholds), n1))
        candidates.append(("less", _count_le(s1, thresholds), n1,
                           _count_le(s0, thresholds), n0))

    best = (0.0, None, None, 0.0, 0.0)  # (eps, threshold, direction, tpr, fpr)
    for direction, num_k, num_n, den_k, den_n in candidates:
        num_lo, _ = clopper_pearson_bounds(num_k, num_n, alpha)
        _, den_up = clopper_pearson_bounds(den_k, den_n, alpha)
        with np.errstate(divide="ignore"):
            bounds = np.log(num_lo) - np.log(den_up)
        index = int(np.argmax(bounds))
        if bounds[index] > best[0]:
            # tpr/fpr report the winning test's *raw* rates in the
            # world-1-positive convention regardless of which ratio the
            # bound came from.
            if direction == "greater":
                tpr = _count_ge(s1, thresholds[index : index + 1])[0] / n1
                fpr = _count_ge(s0, thresholds[index : index + 1])[0] / n0
            else:
                tpr = _count_le(s1, thresholds[index : index + 1])[0] / n1
                fpr = _count_le(s0, thresholds[index : index + 1])[0] / n0
            best = (
                float(bounds[index]),
                float(thresholds[index]),
                direction,
                float(tpr),
                float(fpr),
            )

    epsilon, threshold, direction, tpr, fpr = best
    clipped = epsilon > sentinel or math.isinf(epsilon)
    if clipped:
        epsilon = sentinel
    if direction is None:
        # Random channel, but no test separated the worlds at this
        # confidence: the certified bound is 0.
        return EmpiricalEpsilon(
            epsilon=0.0,
            deterministic=False,
            clipped=False,
            threshold=None,
            direction=None,
            tpr=0.0,
            fpr=0.0,
            trials_without=n0,
            trials_with=n1,
            failure_probability=failure_probability,
        )
    return EmpiricalEpsilon(
        epsilon=epsilon,
        deterministic=False,
        clipped=clipped,
        threshold=threshold,
        direction=direction,
        tpr=tpr,
        fpr=fpr,
        trials_without=n0,
        trials_with=n1,
        failure_probability=failure_probability,
    )
