"""Membership inference against released noisy cluster averages.

The attack asks the canonical DP question at the paper's granularity:
*was the preference edge (victim, item) in the dataset the release was
computed from?*  The attacker knows everything except that edge — the
public social graph, the clustering, every other preference edge — so
the two candidate worlds differ in exactly one edge, the neighbouring
datasets of Theorem 4's guarantee.

Under module ``A_w`` the edge influences a single release cell: the
(item, victim's-cluster) average moves by ``Delta/|c|``, noised at scale
``Delta/(|c| eps)``.  The optimal attack therefore reads that one cell
and thresholds it; this module samples the attack statistic under both
worlds and :func:`repro.attacks.estimator.empirical_epsilon_lower_bound`
turns the outcome counts into a certified epsilon lower bound.

Sampling rules:

- **Mechanisms with an explicit randomness input** (module ``A_w`` via
  :func:`~repro.core.cluster_weights.apply_laplace_noise`) are audited
  honestly: the trial noise is drawn through that input, from one
  canonical unit-Laplace stream per measure that is *shared across the
  epsilon sweep* (common random numbers).  Each trial's statistic is
  the exact cell average plus ``scale(eps) * unit_draw`` — exactly the
  single-cell marginal of a full release, at sweep speed, and monotone
  in epsilon by the estimator's construction.
- **Mechanisms without one** (NOU / NOE / LRM / GS derive their noise
  internally from their configured seed) are audited *as deployed*: one
  fixed configuration, a deterministic observation channel.  Both
  worlds map to single values; if they differ, the channel separates
  the worlds exactly and the estimator reports the sentinel.

The vectorized trial batch is a `fault_point("attacks.trial")` site:
a crashed batch degrades to a sequential per-trial loop with
bit-identical results (same IEEE-754 operations per element), counted
under ``attacks.trial.fallback``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.attacks.estimator import (
    EmpiricalEpsilon,
    empirical_epsilon_lower_bound,
)
from repro.core.cluster_weights import ClusterItemAverages
from repro.obs.registry import incr as obs_incr
from repro.resilience.faults import fault_point
from repro.types import ItemId, UserId

__all__ = [
    "MembershipResult",
    "deterministic_membership_result",
    "run_membership_attack",
    "unit_laplace_draws",
]


@dataclass(frozen=True)
class MembershipResult:
    """Outcome of the membership-inference attack on one audit cell.

    Attributes:
        victim / item: the preference edge whose membership is attacked.
        trials: samples drawn per world (1 for deterministic channels).
        statistic_without / statistic_with: the exact (pre-noise) attack
            statistic in each world.
        estimate: the certified empirical-epsilon lower bound.
    """

    victim: UserId
    item: ItemId
    trials: int
    statistic_without: float
    statistic_with: float
    estimate: EmpiricalEpsilon

    @property
    def eps_empirical(self) -> float:
        return self.estimate.epsilon

    @property
    def deterministic(self) -> bool:
        return self.estimate.deterministic


def unit_laplace_draws(
    seed_seq: np.random.SeedSequence, trials: int
) -> np.ndarray:
    """``trials`` unit-scale Laplace draws from a dedicated stream.

    One canonical draw per (measure, world) is reused across the whole
    epsilon sweep — the common-random-numbers discipline behind the
    audit's monotonicity guarantee.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    return np.random.default_rng(seed_seq).laplace(0.0, 1.0, size=trials)


def _trial_statistics(
    center: float, scale: float, draws: np.ndarray
) -> np.ndarray:
    """``center + scale * draws`` with sequential degradation.

    The vectorized batch runs under the ``attacks.trial`` fault site;
    if it crashes, the same statistics are recomputed one trial at a
    time.  Scalar and vectorized float64 arithmetic round identically,
    so the two paths are bit-identical — pinned by the fault tests.
    """
    try:
        fault_point("attacks.trial")
        return center + scale * draws
    except Exception:
        obs_incr("attacks.trial.fallback")
        out = np.empty(draws.size)
        for index in range(draws.size):
            out[index] = center + scale * float(draws[index])
        return out


def run_membership_attack(
    averages_without: ClusterItemAverages,
    averages_with: ClusterItemAverages,
    victim: UserId,
    item: ItemId,
    epsilon: float,
    draws_without: np.ndarray,
    draws_with: np.ndarray,
) -> MembershipResult:
    """Attack module ``A_w``'s release cell for one configured epsilon.

    Args:
        averages_without / averages_with: exact cluster-item averages of
            the two neighbouring preference graphs (same clustering).
        victim / item: the attacked edge; the read cell is
            ``(item, cluster_of(victim))``.
        epsilon: the release's configured privacy parameter.
        draws_without / draws_with: canonical unit-Laplace draws (one
            per trial per world), scaled to this epsilon's noise level.

    Returns:
        A :class:`MembershipResult`; for ``epsilon = inf`` the release
        is exact, the channel deterministic, and the estimate reports
        the sentinel whenever the edge actually moves the cell.
    """
    row = averages_with.item_index[item]
    column = averages_with.clustering.cluster_of(victim)
    exact_without = float(averages_without.matrix[row, column])
    exact_with = float(averages_with.matrix[row, column])

    scales = averages_with.laplace_scales(epsilon)
    if scales is None:
        samples: Tuple[np.ndarray, np.ndarray] = (
            np.array([exact_without]),
            np.array([exact_with]),
        )
    else:
        scale = float(scales[column])
        samples = (
            _trial_statistics(exact_without, scale, draws_without),
            _trial_statistics(exact_with, scale, draws_with),
        )
    obs_incr("attacks.trials", samples[0].size + samples[1].size)

    estimate = empirical_epsilon_lower_bound(samples[0], samples[1])
    return MembershipResult(
        victim=victim,
        item=item,
        trials=max(samples[0].size, samples[1].size),
        statistic_without=exact_without,
        statistic_with=exact_with,
        estimate=estimate,
    )


def deterministic_membership_result(
    victim: UserId,
    item: ItemId,
    utility_without: float,
    utility_with: float,
) -> MembershipResult:
    """Membership outcome for a mechanism audited as deployed.

    NOU / NOE / LRM / GS take no randomness input: their noise is a
    fixed function of the configured seed, so the attacker — who knows
    the deployed configuration — faces a deterministic channel.  The
    statistic is the observer's utility for the attacked item under
    each world; any difference separates the worlds exactly.
    """
    obs_incr("attacks.trials", 2)
    estimate = empirical_epsilon_lower_bound(
        np.array([utility_without]), np.array([utility_with])
    )
    return MembershipResult(
        victim=victim,
        item=item,
        trials=1,
        statistic_without=float(utility_without),
        statistic_with=float(utility_with),
        estimate=estimate,
    )
