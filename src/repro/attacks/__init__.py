"""Privacy attacks against social recommenders — the red-team audit suite.

The package grew out of the paper's Section 2.3 sybil scenario into a
full empirical privacy audit:

- :mod:`repro.attacks.sybil` — the sybil / profile-cloning observation
  channel: a fake account whose similarity set reduces to the victim,
  so its recommendations are a function of the victim's private edges.
- :mod:`repro.attacks.membership` — membership inference against
  released noisy cluster averages: a likelihood-ratio test on
  neighbouring datasets differing in one preference edge.
- :mod:`repro.attacks.reconstruction` — per-edge recovery scores
  (AUC / recovery@degree) from the victim's observation channel.
- :mod:`repro.attacks.estimator` — Clopper–Pearson empirical-epsilon
  lower bounds from attack trial outcomes.
- :mod:`repro.attacks.audit` — the driver: both attacks across a
  (target, measure, epsilon) grid, `eps_empirical` next to the privacy
  ledger's composed `eps_analytical` per cell
  (`repro attack audit --json` on the CLI).

See ``docs/privacy_audit.md`` for the threat model and how to read the
two epsilon columns.
"""

from repro.attacks.audit import (
    AUDIT_TARGETS,
    AuditCell,
    AuditReport,
    format_audit_table,
    run_privacy_audit,
)
from repro.attacks.estimator import (
    EPS_SENTINEL,
    EmpiricalEpsilon,
    clopper_pearson_bounds,
    empirical_epsilon_lower_bound,
)
from repro.attacks.membership import (
    MembershipResult,
    deterministic_membership_result,
    run_membership_attack,
    unit_laplace_draws,
)
from repro.attacks.reconstruction import (
    ReconstructionResult,
    edge_recovery_scores,
    run_reconstruction_experiment,
    victim_edge_mask,
)
from repro.attacks.sybil import (
    SybilAttack,
    SybilAttackReport,
    run_attack_experiment,
)

__all__ = [
    "AUDIT_TARGETS",
    "AuditCell",
    "AuditReport",
    "EPS_SENTINEL",
    "EmpiricalEpsilon",
    "MembershipResult",
    "ReconstructionResult",
    "SybilAttack",
    "SybilAttackReport",
    "clopper_pearson_bounds",
    "deterministic_membership_result",
    "edge_recovery_scores",
    "empirical_epsilon_lower_bound",
    "format_audit_table",
    "run_attack_experiment",
    "run_membership_attack",
    "run_privacy_audit",
    "run_reconstruction_experiment",
    "unit_laplace_draws",
    "victim_edge_mask",
]
