"""Privacy attacks against social recommenders (paper Section 2.3).

:mod:`repro.attacks.sybil` implements the Sybil / profile-cloning inference
attack the paper uses to motivate its adversary model: an attacker who can
add a fake account next to a degree-one neighbor of the victim observes
recommendations that are a direct function of the victim's private
preference edges.  The attack recovers most of the victim's items from a
non-private recommender and almost nothing from the private one — the
empirical counterpart of Theorem 4.
"""

from repro.attacks.sybil import SybilAttack, SybilAttackReport, run_attack_experiment

__all__ = ["SybilAttack", "SybilAttackReport", "run_attack_experiment"]
