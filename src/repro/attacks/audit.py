"""The red-team audit driver: empirical epsilon vs the ledger, per cell.

:func:`run_privacy_audit` runs the membership-inference and
edge-reconstruction attacks across a (measure, epsilon, target) grid and
emits one :class:`AuditCell` per combination, placing the attacks'
certified **empirical** epsilon lower bound next to the **analytical**
epsilon the privacy ledger composed for the same release — the two
numbers the ROADMAP wants on one plot.  A cell where
``eps_empirical > eps_analytical`` is a correctness bug somewhere in the
mechanism or the ledger; :meth:`AuditReport.violations` finds them and
the CLI's ``--strict`` flag turns them into a failing exit code.

Audit protocol (fixed per run, all derived from the master seed):

1. Pick the attacked edge ``(victim, item)`` — the first social user
   with enough preference edges, their first shared item — and build
   the two neighbouring preference graphs.
2. Plan the sybil observation channel on the social graph (the service
   fits whatever graph contains the attacker's accounts) and cluster
   the attacked graph once with the paper's Louvain protocol.
3. Hoist the exact cluster-item averages of both worlds out of the
   sweep — the same factoring the vectorized sweep engine uses — so a
   membership trial costs one scaled noise draw and a reconstruction
   repeat costs one Laplace tensor.
4. Per measure, derive canonical unit-noise streams
   (``SeedSequence(seed)`` -> per-measure children) shared across the
   epsilon sweep: common random numbers make the per-measure bounds
   monotone in epsilon by construction, and the whole report
   bit-reproducible from the master seed.
5. Per cell, window the active telemetry registry's privacy ledger:
   ``eps_analytical`` is the per-release composed epsilon
   (:class:`~repro.obs.ledger.PrivacyLedgerView`; repeats are
   Monte-Carlo observations of one deployed release, so the *per
   release* value — not the across-repeat total — is the claim under
   audit).  Mechanisms that never record a release (the baselines and
   competitors carry no ledger instrumentation) get ``None``:
   analytically unaccounted, which no empirical bound can violate.

Everything runs under an ``attacks.audit`` span with per-cell
``attacks.cell`` spans and ``attacks.*`` counters; when no registry is
active the audit installs a local one so the ledger read-out always
works.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.estimator import EPS_SENTINEL
from repro.attacks.membership import (
    MembershipResult,
    deterministic_membership_result,
    run_membership_attack,
    unit_laplace_draws,
)
from repro.attacks.reconstruction import (
    ReconstructionResult,
    edge_recovery_scores,
    victim_edge_mask,
)
from repro.attacks.sybil import SybilAttack
from repro.core.baselines import NoiseOnEdges, NoiseOnUtility
from repro.core.cluster_weights import (
    ClusterItemAverages,
    apply_laplace_noise,
    cluster_item_averages,
)
from repro.core.private import covering_clustering, louvain_strategy
from repro.datasets.dataset import SocialRecDataset
from repro.exceptions import ExperimentError
from repro.obs.ledger import PrivacyLedgerView
from repro.obs.registry import Telemetry, get_telemetry
from repro.obs.registry import incr as obs_incr
from repro.obs.registry import telemetry as obs_telemetry
from repro.obs.spans import span
from repro.similarity.base import SimilarityCache, get_measure
from repro.types import ItemId, UserId

__all__ = [
    "AUDIT_TARGETS",
    "AuditCell",
    "AuditReport",
    "format_audit_table",
    "run_privacy_audit",
]

#: Mechanisms the audit knows how to attack.
AUDIT_TARGETS = ("private", "nou", "noe", "lrm", "gs")


@dataclass(frozen=True)
class AuditCell:
    """One (target, measure, epsilon) audit outcome.

    ``eps_analytical`` is None when the target recorded no ledger
    release — an analytically unaccounted mechanism, treated as
    unbounded by :meth:`AuditCell.violates`.
    """

    target: str
    measure: str
    epsilon: float
    membership: MembershipResult
    reconstruction: ReconstructionResult
    eps_analytical: Optional[float]
    ledger_releases: int
    ledger_total_epsilon: float

    @property
    def eps_empirical(self) -> float:
        return self.membership.eps_empirical

    def violates(self, slack: float = 1e-9) -> bool:
        """True when the empirical bound exceeds the analytical claim."""
        if self.eps_analytical is None:
            return False
        return self.eps_empirical > self.eps_analytical + slack

    def to_jsonable(self) -> Dict:
        estimate = self.membership.estimate
        return {
            "target": self.target,
            "measure": self.measure,
            "epsilon": self.epsilon,
            "eps_empirical": self.eps_empirical,
            "eps_analytical": self.eps_analytical,
            "deterministic": estimate.deterministic,
            "clipped": estimate.clipped,
            "ledger_releases": self.ledger_releases,
            "ledger_total_epsilon": self.ledger_total_epsilon,
            "membership": {
                "trials": self.membership.trials,
                "tpr": estimate.tpr,
                "fpr": estimate.fpr,
                "threshold": estimate.threshold,
                "direction": estimate.direction,
                "failure_probability": estimate.failure_probability,
            },
            "reconstruction": {
                "repeats": self.reconstruction.repeats,
                "auc": self.reconstruction.auc,
                "recovery": self.reconstruction.recovery,
            },
        }


@dataclass(frozen=True)
class AuditReport:
    """The full audit: configuration, attacked edge, and every cell."""

    victim: UserId
    observer: UserId
    item: ItemId
    seed: int
    trials: int
    repeats: int
    backend: str
    sentinel: float
    cells: Tuple[AuditCell, ...]

    def cell(self, target: str, measure: str, epsilon: float) -> AuditCell:
        for candidate in self.cells:
            if (
                candidate.target == target
                and candidate.measure == measure
                and candidate.epsilon == epsilon
            ):
                return candidate
        raise KeyError((target, measure, epsilon))

    def violations(self, slack: float = 1e-9) -> List[AuditCell]:
        """Cells whose empirical bound exceeds the ledger's claim."""
        return [cell for cell in self.cells if cell.violates(slack)]

    def to_jsonable(self) -> Dict:
        return {
            "version": 1,
            "kind": "privacy-audit",
            "config": {
                "victim": repr(self.victim),
                "observer": repr(self.observer),
                "item": repr(self.item),
                "seed": self.seed,
                "trials": self.trials,
                "repeats": self.repeats,
                "backend": self.backend,
                "sentinel": self.sentinel,
            },
            "cells": [cell.to_jsonable() for cell in self.cells],
        }


def format_audit_table(report: AuditReport) -> str:
    """A human-readable per-cell table of the audit outcome."""
    header = (
        f"{'target':<8} {'measure':<7} {'eps':>6} "
        f"{'eps_empirical':>14} {'eps_analytical':>14} "
        f"{'recon_auc':>9} {'recovery':>8}"
    )
    lines = [
        f"privacy audit: victim={report.victim!r} item={report.item!r} "
        f"observer={report.observer!r} trials={report.trials} "
        f"seed={report.seed}",
        header,
        "-" * len(header),
    ]
    for cell in report.cells:
        if cell.membership.estimate.clipped:
            empirical = f">= {report.sentinel:.0e}"
        else:
            empirical = f"{cell.eps_empirical:.4f}"
        analytical = (
            "unaccounted"
            if cell.eps_analytical is None
            else f"{cell.eps_analytical:.4f}"
        )
        lines.append(
            f"{cell.target:<8} {cell.measure:<7} {cell.epsilon:>6g} "
            f"{empirical:>14} {analytical:>14} "
            f"{cell.reconstruction.auc:>9.3f} "
            f"{cell.reconstruction.recovery:>8.3f}"
        )
    violations = report.violations()
    if violations:
        lines.append(
            f"VIOLATIONS: {len(violations)} cell(s) exceed the ledger claim"
        )
    else:
        lines.append("all cells satisfy eps_empirical <= eps_analytical")
    return "\n".join(lines)


@contextmanager
def _active_registry() -> Iterator[Telemetry]:
    """The active telemetry registry, installing a local one if needed.

    The ledger read-out needs *some* registry; a caller-provided one
    (e.g. the CLI's ``--profile``) is reused so the audit's spans and
    ledger land in the run's trace.
    """
    existing = get_telemetry()
    if existing is not None:
        yield existing
        return
    with obs_telemetry(Telemetry(trace=False)) as registry:
        yield registry


def _choose_attacked_edge(
    dataset: SocialRecDataset,
    victim: Optional[UserId],
    item: Optional[ItemId],
) -> Tuple[UserId, ItemId]:
    """The attacked edge: deterministic, and safe to remove.

    The item must be shared with another user so the neighbouring
    world keeps the same item universe alignment, and the victim must
    keep at least one edge so reconstruction still has a target.
    """
    preferences = dataset.preferences
    if victim is None:
        for candidate in dataset.social.users():
            if (
                preferences.has_user(candidate)
                and preferences.user_degree(candidate) >= 2
            ):
                victim = candidate
                break
        if victim is None:
            raise ExperimentError(
                "no social user with >= 2 preference edges to attack"
            )
    if not preferences.has_user(victim) or not preferences.user_degree(victim):
        raise ExperimentError(f"victim {victim!r} has no preference edges")
    if item is None:
        owned = preferences.items_of(victim)
        shared = [i for i in owned if preferences.item_degree(i) >= 2]
        item = shared[0] if shared else next(iter(owned))
    if not preferences.has_edge(victim, item):
        raise ExperimentError(f"edge ({victim!r}, {item!r}) not in the dataset")
    return victim, item


def _observer_cluster_vector(
    measure_name: str,
    attacked_graph,
    observer: UserId,
    clustering,
    backend: str,
    store,
) -> np.ndarray:
    """``sim_sum(observer, c)`` per cluster, backend-independent.

    Accumulates the observer's similarity row in a sorted user order so
    python and vectorized rows (bit-identical for CN/GD/KZ) sum in the
    same sequence — extending the backend-equivalence contract to the
    attack scoring path.
    """
    measure = get_measure(measure_name)
    cache = SimilarityCache(measure, attacked_graph, backend=backend)
    if store is not None and backend != "python":
        from repro.compute.kernels import build_kernel, supports_vectorized_kernel

        if supports_vectorized_kernel(measure):
            lookup = store.get_or_compute(
                attacked_graph,
                measure,
                lambda: build_kernel(attacked_graph, measure, backend=backend),
            )
            cache.adopt_kernel(lookup.matrix)
    vector = np.zeros(clustering.num_clusters)
    row = cache.row(observer)
    for user, score in sorted(row.items(), key=lambda kv: repr(kv[0])):
        if user in clustering:
            vector[clustering.cluster_of(user)] += score
    return vector


def _fit_deployed_target(
    target: str,
    measure_name: str,
    epsilon: float,
    attacked_graph,
    preferences,
    seed: int,
):
    """One deployed (fixed-seed) mechanism, fitted on the attacked graph."""
    measure = get_measure(measure_name)
    if target == "nou":
        recommender = NoiseOnUtility(measure, epsilon, seed=seed)
    elif target == "noe":
        recommender = NoiseOnEdges(measure, epsilon, seed=seed)
    elif target == "lrm":
        from repro.competitors.lrm import LowRankMechanism

        recommender = LowRankMechanism(measure, epsilon, seed=seed)
    elif target == "gs":
        from repro.competitors.gs import GroupAndSmooth

        recommender = GroupAndSmooth(measure, epsilon, seed=seed)
    else:
        raise ExperimentError(f"unknown audit target {target!r}")
    recommender.fit(attacked_graph, preferences)
    return recommender


def _ledger_window(
    registry: Telemetry, start: int
) -> Tuple[Optional[float], int, float]:
    """``(eps_analytical, releases, total_epsilon)`` since ``start``.

    ``eps_analytical`` is the per-release composed epsilon (max across
    the window's releases — they are repeats of one deployed release
    and all compose to the same value for a correct mechanism).
    """
    entries = registry.ledger_entries[start:]
    view = PrivacyLedgerView(entries)
    per_release = view.release_epsilons()
    if not per_release:
        return None, 0, 0.0
    return max(per_release.values()), len(per_release), view.total_epsilon()


def _audit_private_cell(
    averages: Tuple[ClusterItemAverages, ClusterItemAverages],
    victim: UserId,
    item: ItemId,
    epsilon: float,
    draws: Tuple[np.ndarray, np.ndarray],
    sim_vector: np.ndarray,
    positives: np.ndarray,
    observer: UserId,
    repeat_streams: Sequence[np.random.SeedSequence],
) -> Tuple[MembershipResult, ReconstructionResult]:
    averages_without, averages_with = averages
    membership = run_membership_attack(
        averages_without,
        averages_with,
        victim,
        item,
        epsilon,
        draws[0],
        draws[1],
    )
    aucs: List[float] = []
    recoveries: List[float] = []
    for stream in repeat_streams:
        rng = np.random.default_rng(stream)
        released = apply_laplace_noise(averages_with, epsilon, rng=rng)
        scores = released @ sim_vector
        auc, recovery = edge_recovery_scores(scores, positives)
        aucs.append(auc)
        recoveries.append(recovery)
    reconstruction = ReconstructionResult(
        victim=victim,
        observer=observer,
        repeats=len(repeat_streams),
        auc=float(np.mean(aucs)),
        recovery=float(np.mean(recoveries)),
        auc_per_repeat=tuple(aucs),
        deterministic=False,
    )
    return membership, reconstruction


def _audit_deployed_cell(
    target: str,
    measure_name: str,
    epsilon: float,
    attacked_graph,
    worlds: Tuple,
    victim: UserId,
    item: ItemId,
    observer: UserId,
    items: Sequence[ItemId],
    positives: np.ndarray,
    seed: int,
    attack: SybilAttack,
) -> Tuple[MembershipResult, ReconstructionResult]:
    preferences_without, preferences_with = worlds
    fitted_without = _fit_deployed_target(
        target, measure_name, epsilon, attacked_graph, preferences_without, seed
    )
    fitted_with = _fit_deployed_target(
        target, measure_name, epsilon, attacked_graph, preferences_with, seed
    )
    scores_without = attack.readout_scores(fitted_without, observer, items)
    scores_with = attack.readout_scores(fitted_with, observer, items)
    item_position = list(items).index(item)
    membership = deterministic_membership_result(
        victim,
        item,
        float(scores_without[item_position]),
        float(scores_with[item_position]),
    )
    auc, recovery = edge_recovery_scores(scores_with, positives)
    reconstruction = ReconstructionResult(
        victim=victim,
        observer=observer,
        repeats=1,
        auc=auc,
        recovery=recovery,
        auc_per_repeat=(auc,),
        deterministic=True,
    )
    return membership, reconstruction


def run_privacy_audit(
    dataset: SocialRecDataset,
    measures: Sequence[str] = ("cn",),
    epsilons: Sequence[float] = (0.1, 0.5, 1.0, 2.0),
    targets: Sequence[str] = ("private", "nou", "noe"),
    trials: int = 1000,
    repeats: int = 3,
    seed: int = 0,
    backend: str = "auto",
    store=None,
    victim: Optional[UserId] = None,
    item: Optional[ItemId] = None,
    louvain_runs: int = 5,
) -> AuditReport:
    """Run the full red-team audit over a (target, measure, epsilon) grid.

    Args:
        dataset: the dataset under audit (social + preference graphs).
        measures: similarity-measure registry names.
        epsilons: the privacy sweep (``math.inf`` allowed: audited as a
            deterministic release, ledger-unaccounted by design).
        targets: mechanisms to attack, from :data:`AUDIT_TARGETS`.
        trials: membership samples per world per cell.
        repeats: fresh releases scored by the reconstruction attack
            (private target only; deployed targets are deterministic).
        seed: master seed — the entire report is a pure function of it.
        backend: similarity/averages compute backend
            (``auto | vectorized | python``).
        store: optional :class:`~repro.cache.store.SimilarityStore` for
            kernel reuse across audits.
        victim / item: override the attacked edge (default: chosen
            deterministically from the dataset).
        louvain_runs: Louvain restarts for the clustering protocol.

    Raises:
        ExperimentError: for an unknown target, an unattackable
            dataset, or an invalid grid.
    """
    unknown = [t for t in targets if t not in AUDIT_TARGETS]
    if unknown:
        raise ExperimentError(
            f"unknown audit target(s) {unknown!r}; known: {AUDIT_TARGETS}"
        )
    if not measures or not epsilons or not targets:
        raise ExperimentError("measures, epsilons, and targets must be non-empty")
    if trials < 1 or repeats < 1:
        raise ExperimentError("trials and repeats must be >= 1")

    with _active_registry() as registry, span("attacks.audit"):
        victim, item = _choose_attacked_edge(dataset, victim, item)
        preferences_with = dataset.preferences
        preferences_without = preferences_with.without_edge(victim, item)
        attack = SybilAttack()
        attacked_graph, observer = attack.plan(dataset.social, victim)

        with span("attacks.clustering"):
            clustering = covering_clustering(
                louvain_strategy(runs=louvain_runs, seed=seed, backend=backend)(
                    attacked_graph
                ),
                preferences_with,
            )
        with span("attacks.averages"):
            averages_with = cluster_item_averages(
                preferences_with, clustering, backend=backend
            )
            averages_without = cluster_item_averages(
                preferences_without, clustering, backend=backend
            )
        items = averages_with.items
        positives = victim_edge_mask(preferences_with, victim, items)

        root = np.random.SeedSequence(seed)
        measure_roots = root.spawn(len(measures))

        cells: List[AuditCell] = []
        for measure_index, measure_name in enumerate(measures):
            stream_without, stream_with, recon_root = measure_roots[
                measure_index
            ].spawn(3)
            draws = (
                unit_laplace_draws(stream_without, trials),
                unit_laplace_draws(stream_with, trials),
            )
            sim_vector = _observer_cluster_vector(
                measure_name, attacked_graph, observer, clustering, backend, store
            )
            repeat_streams = recon_root.spawn(len(epsilons) * repeats)
            for target in targets:
                for eps_index, epsilon in enumerate(epsilons):
                    with span("attacks.cell"):
                        ledger_start = len(registry.ledger_entries)
                        if target == "private":
                            membership, reconstruction = _audit_private_cell(
                                (averages_without, averages_with),
                                victim,
                                item,
                                epsilon,
                                draws,
                                sim_vector,
                                positives,
                                observer,
                                repeat_streams[
                                    eps_index * repeats : (eps_index + 1) * repeats
                                ],
                            )
                        else:
                            membership, reconstruction = _audit_deployed_cell(
                                target,
                                measure_name,
                                epsilon,
                                attacked_graph,
                                (preferences_without, preferences_with),
                                victim,
                                item,
                                observer,
                                items,
                                positives,
                                seed,
                                attack,
                            )
                        analytical, releases, ledger_total = _ledger_window(
                            registry, ledger_start
                        )
                        obs_incr("attacks.cells")
                        cells.append(
                            AuditCell(
                                target=target,
                                measure=measure_name,
                                epsilon=epsilon,
                                membership=membership,
                                reconstruction=reconstruction,
                                eps_analytical=analytical,
                                ledger_releases=releases,
                                ledger_total_epsilon=ledger_total,
                            )
                        )

        return AuditReport(
            victim=victim,
            observer=observer,
            item=item,
            seed=seed,
            trials=trials,
            repeats=repeats,
            backend=backend,
            sentinel=EPS_SENTINEL,
            cells=tuple(cells),
        )
