"""Shared CSR adjacency export, cached per graph version.

Every vectorised kernel starts from the same object: the 0/1 CSR
adjacency of the social graph in the canonical
:meth:`~repro.graph.social_graph.SocialGraph.stable_user_order`, plus the
degree vector.  Building it is O(|U| + |E|) Python work, which would
dominate repeated small-kernel builds, so this module memoises the export
in a tiny LRU keyed by ``(id(graph), graph.version)``.  The version
counter bumps on every structural mutation, so a stale entry can never be
served for a live graph; against ``id()`` reuse after garbage collection,
a hit is only honoured when its matrix is *the same object* the graph's
own version-checked :meth:`~repro.graph.social_graph.SocialGraph.to_csr`
cache returns — an identity a recycled address cannot forge.

The export accepts any :class:`~repro.graph.protocol.GraphLike` — for an
out-of-core :class:`~repro.graph.bigcsr.BigCSRGraph` the matrix is the
artifact's mmap'd buffers, ``users`` is a ``range`` (never a
materialised list), and ``index`` is an O(1) identity mapping — so a
million-user export allocates no per-user Python objects at all.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.types import UserId

__all__ = ["CSRAdjacency", "adjacency_csr", "clear_adjacency_cache"]

#: Cached adjacency exports; a handful covers every realistic workload
#: (the experiments touch one social graph per dataset).
_CACHE_MAX_ENTRIES = 8

_cache: "OrderedDict[Tuple[int, int], CSRAdjacency]" = OrderedDict()


class _IdentityIndex(Mapping):
    """``{0: 0, 1: 1, ..., n-1: n-1}`` without storing n dict entries.

    The position index of a graph whose stable user order is
    ``range(n)`` — lookups are range checks, not hash probes, and the
    object is O(1) regardless of graph size.
    """

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = n

    def __getitem__(self, user: UserId) -> int:
        if (
            isinstance(user, (int, np.integer))
            and not isinstance(user, bool)
            and 0 <= int(user) < self._n
        ):
            return int(user)
        raise KeyError(user)

    def __contains__(self, user: object) -> bool:
        try:
            self[user]
        except KeyError:
            return False
        return True

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n


class CSRAdjacency:
    """A social graph's adjacency in vectorisable form.

    Attributes:
        matrix: symmetric 0/1 CSR adjacency (float64, sorted indices).
        users: row/column order (the graph's stable user order); a
            ``list`` for in-memory graphs, a ``range`` for out-of-core
            CSR graphs.
        index: user -> row position mapping.
        degrees: float64 degree vector aligned with ``users``.
    """

    __slots__ = ("matrix", "users", "index", "degrees")

    def __init__(
        self,
        matrix: sp.csr_matrix,
        users: Sequence[UserId],
        index: Mapping[UserId, int],
        degrees: np.ndarray,
    ) -> None:
        self.matrix = matrix
        self.users = users
        self.index = index
        self.degrees = degrees

    @property
    def num_users(self) -> int:
        return len(self.users)


def _export(graph) -> CSRAdjacency:
    matrix, users = graph.to_csr()
    if isinstance(users, range) and users == range(len(users)):
        # Out-of-core path: identity order, no per-user Python objects.
        index: Mapping[UserId, int] = _IdentityIndex(len(users))
        degrees = graph.degree_array()
    else:
        index = {user: i for i, user in enumerate(users)}
        degrees = graph.degree_array(users)
    return CSRAdjacency(
        matrix=matrix,
        users=users,
        index=index,
        degrees=degrees,
    )


def adjacency_csr(graph, cache: bool = True) -> CSRAdjacency:
    """The (memoised) CSR adjacency export of ``graph``.

    Args:
        graph: any :class:`~repro.graph.protocol.GraphLike` — in-memory
            ``SocialGraph`` or mmap-backed ``BigCSRGraph``.
        cache: set False to bypass the LRU entirely (useful when a caller
            knows the graph is about to be mutated).

    Returns:
        A :class:`CSRAdjacency`; treat it as immutable — it may be shared
        with every other caller that passed the same graph.
    """
    if not cache:
        return _export(graph)
    key = (id(graph), graph.version)
    hit = _cache.get(key)
    if hit is not None:
        # Guard against id() reuse: the hit is only valid if its matrix is
        # the very object the graph's own to_csr cache holds right now.
        matrix, _ = graph.to_csr()
        if hit.matrix is matrix:
            _cache.move_to_end(key)
            return hit
        del _cache[key]
    exported = _export(graph)
    _cache[key] = exported
    while len(_cache) > _CACHE_MAX_ENTRIES:
        _cache.popitem(last=False)
    return exported


def clear_adjacency_cache() -> Optional[int]:
    """Drop every memoised export; returns how many were cached."""
    count = len(_cache)
    _cache.clear()
    return count
