"""Shared CSR adjacency export, cached per graph version.

Every vectorised kernel starts from the same object: the 0/1 CSR
adjacency of the social graph in the canonical
:meth:`~repro.graph.social_graph.SocialGraph.stable_user_order`, plus the
degree vector.  Building it is O(|U| + |E|) Python work, which would
dominate repeated small-kernel builds, so this module memoises the export
in a tiny LRU keyed by ``(id(graph), graph.version)``.  The version
counter bumps on every structural mutation, so a stale entry can never be
served for a live graph; against ``id()`` reuse after garbage collection,
a hit is only honoured when its matrix is *the same object* the graph's
own version-checked :meth:`~repro.graph.social_graph.SocialGraph.to_csr`
cache returns — an identity a recycled address cannot forge.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graph.social_graph import SocialGraph
from repro.types import UserId

__all__ = ["CSRAdjacency", "adjacency_csr", "clear_adjacency_cache"]

#: Cached adjacency exports; a handful covers every realistic workload
#: (the experiments touch one social graph per dataset).
_CACHE_MAX_ENTRIES = 8

_cache: "OrderedDict[Tuple[int, int], CSRAdjacency]" = OrderedDict()


@dataclass(frozen=True)
class CSRAdjacency:
    """A social graph's adjacency in vectorisable form.

    Attributes:
        matrix: symmetric 0/1 CSR adjacency (float64, sorted indices).
        users: row/column order (the graph's stable user order).
        index: user -> row position.
        degrees: float64 degree vector aligned with ``users``.
    """

    matrix: sp.csr_matrix
    users: List[UserId]
    index: Dict[UserId, int]
    degrees: np.ndarray

    @property
    def num_users(self) -> int:
        return len(self.users)


def _export(graph: SocialGraph) -> CSRAdjacency:
    matrix, users = graph.to_csr()
    return CSRAdjacency(
        matrix=matrix,
        users=users,
        index={user: i for i, user in enumerate(users)},
        degrees=graph.degree_array(users),
    )


def adjacency_csr(graph: SocialGraph, cache: bool = True) -> CSRAdjacency:
    """The (memoised) CSR adjacency export of ``graph``.

    Args:
        graph: the social graph.
        cache: set False to bypass the LRU entirely (useful when a caller
            knows the graph is about to be mutated).

    Returns:
        A :class:`CSRAdjacency`; treat it as immutable — it may be shared
        with every other caller that passed the same graph.
    """
    if not cache:
        return _export(graph)
    key = (id(graph), graph.version)
    hit = _cache.get(key)
    if hit is not None:
        # Guard against id() reuse: the hit is only valid if its matrix is
        # the very object the graph's own to_csr cache holds right now.
        matrix, _ = graph.to_csr()
        if hit.matrix is matrix:
            _cache.move_to_end(key)
            return hit
        del _cache[key]
    exported = _export(graph)
    _cache[key] = exported
    while len(_cache) > _CACHE_MAX_ENTRIES:
        _cache.popitem(last=False)
    return exported


def clear_adjacency_cache() -> Optional[int]:
    """Drop every memoised export; returns how many were cached."""
    count = len(_cache)
    _cache.clear()
    return count
