"""Blocked, vectorised construction of all-pairs similarity kernels.

The per-user ``similarity_row`` implementations are the semantic ground
truth but run at Python speed — one BFS/DP sweep per user.  This module
builds the same kernels with scipy CSR algebra, **one row block at a
time** so peak memory stays bounded by
``block_size * avg_row_density`` instead of the full |U|² product:

- Common Neighbors:    ``A[B] @ A`` off the diagonal
- Adamic/Adar:         ``A[B] @ diag(1/log deg) @ A``
- Resource Allocation: ``A[B] @ diag(1/deg) @ A``
- Katz (l <= 3):       simple-path closed forms, evaluated per block
- Graph Distance:      multi-source blocked BFS by boolean sparse
  algebra — ``frontier @ A`` per level, minus already-visited pairs,
  scoring ``1/d`` exactly; this covers *any* cutoff, not just the
  paper's d <= 2.

Every closed form decomposes row-wise, so blocks can be computed
independently and fanned out across a ``ProcessPoolExecutor`` (workers
receive the shared CSR buffers once and return CSR block buffers); the
assembled kernel streams into :class:`~repro.similarity.matrix.SimilarityMatrix`
without a dense intermediate.

Equivalence is the contract: each block builder reproduces the python
rows within 1e-9 (Katz and Graph Distance bit-exactly — integer path
counts and exact ``1/d`` scores), property-tested in
``tests/property/test_compute_properties.py``.
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.compute.adjacency import CSRAdjacency, adjacency_csr
from repro.compute.stats import ComputeStats, validate_backend
from repro.exceptions import ReproError
from repro.graph.protocol import GraphLike
from repro.obs.adapters import publish_compute_stats
from repro.obs.spans import span
from repro.resilience.faults import fault_point
from repro.similarity.matrix import SimilarityMatrix

__all__ = [
    "build_kernel",
    "python_kernel",
    "resolve_backend",
    "supports_vectorized_kernel",
]

#: Rows per construction block; at lastfm scale one block of the densest
#: kernel (Katz l=3) stays in the tens of megabytes.
DEFAULT_BLOCK_SIZE = 2048

#: Estimated bytes of working memory per stored kernel entry while a
#: block is being built: 8 (float64 data) + 8 (worst-case int64 index)
#: doubled for scipy's product temporaries.
_BUDGET_BYTES_PER_ENTRY = 32


# ----------------------------------------------------------------------
# capability / backend resolution
# ----------------------------------------------------------------------
def _kernel_params(measure: Any) -> Optional[Dict[str, Any]]:
    """The block-builder parameters for ``measure``, or None if unsupported.

    Dispatch is duck-typed on the registry ``name`` plus the public
    parameters, so custom subclasses that change the semantics without
    changing the name should override ``name`` as well.
    """
    name = getattr(measure, "name", "")
    if name in ("cn", "aa", "ra"):
        return {"kind": name}
    if name == "gd":
        max_distance = getattr(measure, "max_distance", None)
        if isinstance(max_distance, int) and max_distance >= 1:
            return {"kind": "gd", "max_distance": max_distance}
        return None
    if name == "kz":
        max_length = getattr(measure, "max_length", None)
        alpha = getattr(measure, "alpha", None)
        if isinstance(max_length, int) and 1 <= max_length <= 3:
            return {"kind": "kz", "max_length": max_length, "alpha": alpha}
        return None
    return None


def supports_vectorized_kernel(measure: Any) -> bool:
    """Whether ``measure`` has a blocked vectorised builder as configured.

    Covers cn/aa/ra, Graph Distance at *any* cutoff, and Katz up to the
    paper's l <= 3 (longer simple paths have no sparse closed form).
    """
    return _kernel_params(measure) is not None


def resolve_backend(backend: str, measure: Any = None) -> str:
    """Map a backend request to the concrete backend that should run.

    ``auto`` resolves to ``vectorized`` when the measure supports it
    (always, when no measure is given) and ``python`` otherwise.

    Raises:
        ValueError: for an unknown backend name.
    """
    validate_backend(backend)
    if backend != "auto":
        return backend
    if measure is None or supports_vectorized_kernel(measure):
        return "vectorized"
    return "python"


# ----------------------------------------------------------------------
# block builders (pure functions of the shared CSR adjacency)
# ----------------------------------------------------------------------
def _zero_own_column(block: sp.csr_matrix, start: int) -> sp.csr_matrix:
    """Zero entry ``(i, start + i)`` of each block row — the diagonal of
    the full kernel restricted to this block — and drop explicit zeros."""
    block = sp.csr_matrix(block, copy=True)
    n_rows, n_cols = block.shape
    limit = min(n_rows, max(0, n_cols - start))
    if limit > 0:
        rows = np.arange(limit)
        # csr fancy assignment is slow; mask via the lil of just the diag.
        diag_mask = sp.csr_matrix(
            (np.ones(limit), (rows, rows + start)), shape=block.shape
        )
        block = block - block.multiply(diag_mask)
    block = sp.csr_matrix(block)
    block.eliminate_zeros()
    return block


def _degree_weights(kind: str, degrees: np.ndarray) -> np.ndarray:
    if kind == "aa":
        with np.errstate(divide="ignore"):
            weights = np.where(degrees >= 2, 1.0 / np.log(degrees), 0.0)
        return weights
    # resource allocation
    with np.errstate(divide="ignore"):
        return np.where(degrees > 0, 1.0 / degrees, 0.0)


def _two_hop_block(
    adjacency: sp.csr_matrix,
    degrees: np.ndarray,
    start: int,
    stop: int,
    kind: str,
) -> sp.csr_matrix:
    block = adjacency[start:stop, :]
    if kind == "cn":
        scores = block @ adjacency
    else:
        scores = (block @ sp.diags(_degree_weights(kind, degrees))) @ adjacency
    return _zero_own_column(scores, start)


def _katz_block(
    adjacency: sp.csr_matrix,
    degrees: np.ndarray,
    start: int,
    stop: int,
    max_length: int,
    alpha: float,
) -> sp.csr_matrix:
    """Damped simple-path counts for one row block (closed forms, l <= 3).

    Mirrors :func:`repro.similarity.matrix.katz_matrix` restricted to rows
    ``start:stop``; every term is a row slice of the full-matrix identity,
    so blocks concatenate to exactly the unblocked kernel.
    """
    block = adjacency[start:stop, :]
    total = sp.csr_matrix(block * alpha)
    if max_length >= 2:
        a2_block = sp.csr_matrix(block @ adjacency)
        paths2 = _zero_own_column(a2_block, start)
        total = total + paths2 * alpha**2
    if max_length >= 3:
        degree_diag = sp.diags(degrees)
        a3_block = a2_block @ adjacency
        paths3 = (
            a3_block
            - block @ degree_diag
            - sp.diags(degrees[start:stop]) @ block
            + block
        )
        paths3 = _zero_own_column(paths3, start)
        total = total + paths3 * alpha**3
    return _zero_own_column(total, start)


def _graph_distance_block(
    adjacency: sp.csr_matrix,
    start: int,
    stop: int,
    max_distance: int,
) -> sp.csr_matrix:
    """Multi-source BFS over the CSR structure for rows ``start:stop``.

    Levels advance by boolean sparse algebra: the next frontier is
    ``sign(frontier @ A)`` minus everything already visited.  Newly
    reached pairs at depth ``d`` score exactly ``1/d``, matching the
    python measure bit for bit at any cutoff.
    """
    num_rows = stop - start
    num_users = adjacency.shape[1]
    rows = np.arange(num_rows)
    frontier = sp.csr_matrix(
        (np.ones(num_rows), (rows, rows + start)), shape=(num_rows, num_users)
    )
    visited = frontier.copy()
    scores = sp.csr_matrix((num_rows, num_users))
    for depth in range(1, max_distance + 1):
        reached = sp.csr_matrix(frontier @ adjacency).sign()
        fresh = sp.csr_matrix(reached - reached.multiply(visited))
        fresh.eliminate_zeros()
        if fresh.nnz == 0:
            break
        scores = scores + fresh * (1.0 / depth)
        visited = visited + fresh
        frontier = fresh
    return sp.csr_matrix(scores)


# ----------------------------------------------------------------------
# memory budgeting: adaptive block bounds + block spill
# ----------------------------------------------------------------------
def _estimated_row_cost(adj: CSRAdjacency, params: Dict[str, Any]) -> np.ndarray:
    """Per-row upper-bound estimate of a kernel block's stored entries.

    One spmv: ``(A @ deg)[u]`` is the number of two-hop walk endpoints
    from ``u`` counted with multiplicity — an upper bound on row ``u``'s
    nnz in any two-hop kernel (cn/aa/ra, Katz l<=2, gd d<=2).  Deeper
    kernels scale the walk estimate by the extra hop count.  Always >= 1
    so empty rows still advance the block partition.
    """
    degrees = adj.degrees
    two_hop = adj.matrix @ degrees
    kind = params["kind"]
    if kind == "kz":
        hops = int(params.get("max_length") or 1)
    elif kind == "gd":
        hops = int(params.get("max_distance") or 2)
    else:
        hops = 2
    factor = max(1.0, float(hops) - 1.0)
    return np.maximum(two_hop * factor + degrees + 1.0, 1.0)


def _budget_bounds(
    adj: CSRAdjacency,
    params: Dict[str, Any],
    memory_budget_bytes: int,
    block_size: int,
) -> List[Tuple[int, int]]:
    """Variable row-block bounds whose estimated working set fits the budget.

    A greedy cut over the cumulative row-cost estimate: each block takes
    rows until the next row would push the estimated product working set
    past ``memory_budget_bytes`` (a single pathological row still gets a
    singleton block — rows cannot split).  ``block_size`` stays an upper
    bound on rows per block, so a generous budget degenerates to the
    fixed-size partition.
    """
    cumulative = np.cumsum(_estimated_row_cost(adj, params))
    budget_entries = max(1.0, memory_budget_bytes / _BUDGET_BYTES_PER_ENTRY)
    n = adj.num_users
    bounds: List[Tuple[int, int]] = []
    start = 0
    consumed = 0.0
    while start < n:
        stop = int(
            np.searchsorted(cumulative, consumed + budget_entries, side="right")
        )
        stop = min(max(stop, start + 1), start + block_size, n)
        bounds.append((start, stop))
        consumed = float(cumulative[stop - 1])
        start = stop
    return bounds


class _BlockSpiller:
    """Spills finished kernel row blocks to ``.npy`` scratch files.

    Under a memory budget, holding every finished block until the final
    ``vstack`` would defeat the budget: the blocks *are* the kernel.
    Instead each finished block's CSR buffers go to disk immediately and
    :meth:`assemble` streams them back one at a time into preallocated
    final arrays — peak memory is one in-flight block plus the final
    kernel, never the 2x of ``vstack``'s concatenate-then-copy.
    """

    def __init__(self, directory: str, stats: ComputeStats) -> None:
        self._dir = directory
        self._stats = stats
        self._blocks: List[Tuple[int, int]] = []  # (nnz, rows) per block

    def _prefix(self, i: int) -> str:
        return os.path.join(self._dir, f"block-{i:05d}")

    def add(self, block: sp.csr_matrix) -> None:
        prefix = self._prefix(len(self._blocks))
        np.save(prefix + ".data.npy", block.data)
        np.save(prefix + ".indices.npy", block.indices)
        np.save(prefix + ".indptr.npy", block.indptr)
        self._blocks.append((int(block.nnz), int(block.shape[0])))
        self._stats.spill_blocks += 1
        self._stats.spill_bytes += (
            block.data.nbytes + block.indices.nbytes + block.indptr.nbytes
        )

    def assemble(self, num_cols: int) -> sp.csr_matrix:
        total_nnz = sum(nnz for nnz, _ in self._blocks)
        total_rows = sum(rows for _, rows in self._blocks)
        limit = np.iinfo(np.int32).max
        idx_dtype = (
            np.int64 if (total_nnz > limit or num_cols > limit) else np.int32
        )
        data = np.empty(total_nnz, dtype=np.float64)
        indices = np.empty(total_nnz, dtype=idx_dtype)
        indptr = np.zeros(total_rows + 1, dtype=idx_dtype)
        nnz_offset = 0
        row_offset = 0
        for i, (nnz, rows) in enumerate(self._blocks):
            prefix = self._prefix(i)
            data[nnz_offset : nnz_offset + nnz] = np.load(prefix + ".data.npy")
            indices[nnz_offset : nnz_offset + nnz] = np.load(
                prefix + ".indices.npy"
            )
            block_indptr = np.load(prefix + ".indptr.npy").astype(np.int64)
            indptr[row_offset + 1 : row_offset + rows + 1] = (
                block_indptr[1:] + nnz_offset
            )
            nnz_offset += nnz
            row_offset += rows
        matrix = sp.csr_matrix(
            (data, indices, indptr), shape=(total_rows, num_cols), copy=False
        )
        # Blocks come out of scipy ops in canonical form; skip the O(nnz)
        # re-verification.
        matrix.has_sorted_indices = True
        return matrix


def _build_block(
    adjacency: sp.csr_matrix,
    degrees: np.ndarray,
    start: int,
    stop: int,
    params: Dict[str, Any],
) -> sp.csr_matrix:
    kind = params["kind"]
    if kind in ("cn", "aa", "ra"):
        return _two_hop_block(adjacency, degrees, start, stop, kind)
    if kind == "gd":
        return _graph_distance_block(adjacency, start, stop, params["max_distance"])
    if kind == "kz":
        return _katz_block(
            adjacency, degrees, start, stop, params["max_length"], params["alpha"]
        )
    raise ReproError(f"unknown kernel kind {kind!r}")  # pragma: no cover


_CsrParts = Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]]


def _block_worker(
    adjacency_parts: _CsrParts,
    degrees: np.ndarray,
    start: int,
    stop: int,
    params: Dict[str, Any],
) -> _CsrParts:
    """Pool-worker entry point: build one row block from shared buffers.

    Module-level so it pickles under every start method; returns the
    block's CSR buffers (cheaper to transfer than a pickled spmatrix).
    """
    data, indices, indptr, shape = adjacency_parts
    adjacency = sp.csr_matrix((data, indices, indptr), shape=shape)
    block = _build_block(adjacency, degrees, start, stop, params)
    return block.data, block.indices, block.indptr, block.shape


# ----------------------------------------------------------------------
# kernel construction
# ----------------------------------------------------------------------
def python_kernel(
    graph: GraphLike,
    measure: Any,
    adjacency: Optional[CSRAdjacency] = None,
) -> SimilarityMatrix:
    """The reference kernel: one ``similarity_row`` call per user.

    Rows follow the same stable user order as the vectorised path, so the
    two backends produce directly comparable (and identically cacheable)
    matrices.
    """
    adj = adjacency if adjacency is not None else adjacency_csr(graph)
    index = adj.index
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for i, user in enumerate(adj.users):
        for other, score in measure.similarity_row(graph, user).items():
            j = index.get(other)
            if j is not None and score != 0.0:
                rows.append(i)
                cols.append(j)
                vals.append(score)
    n = adj.num_users
    matrix = sp.csr_matrix(
        (np.asarray(vals), (rows, cols)), shape=(n, n)
    )
    return SimilarityMatrix.from_csr(matrix, adj.users)


def _vectorized_kernel(
    graph: GraphLike,
    measure: Any,
    params: Dict[str, Any],
    block_size: int,
    workers: Optional[int],
    memory_budget_bytes: Optional[int],
    stats: ComputeStats,
) -> SimilarityMatrix:
    stage_start = time.perf_counter()
    adj = adjacency_csr(graph)
    stats.add_stage("adjacency", time.perf_counter() - stage_start)

    n = adj.num_users
    if n == 0:
        return SimilarityMatrix.from_csr(sp.csr_matrix((0, 0)), [])
    if memory_budget_bytes is not None:
        bounds = _budget_bounds(adj, params, memory_budget_bytes, block_size)
    else:
        bounds = [(s, min(s + block_size, n)) for s in range(0, n, block_size)]
    stats.blocks = len(bounds)

    if memory_budget_bytes is not None:
        with tempfile.TemporaryDirectory(prefix="kernel-spill-") as spill_dir:
            return _run_blocks(
                adj, bounds, params, workers, stats,
                spiller=_BlockSpiller(spill_dir, stats),
            )
    return _run_blocks(adj, bounds, params, workers, stats, spiller=None)


def _run_blocks(
    adj: CSRAdjacency,
    bounds: List[Tuple[int, int]],
    params: Dict[str, Any],
    workers: Optional[int],
    stats: ComputeStats,
    spiller: Optional[_BlockSpiller],
) -> SimilarityMatrix:
    n = adj.num_users
    stage_start = time.perf_counter()
    blocks: List[sp.csr_matrix] = []

    def _finish_block(block: sp.csr_matrix) -> None:
        if spiller is not None:
            spiller.add(block)
        else:
            blocks.append(block)

    if workers is not None and workers > 1 and len(bounds) > 1:
        stats.workers = workers
        adjacency_parts = (
            adj.matrix.data,
            adj.matrix.indices,
            adj.matrix.indptr,
            adj.matrix.shape,
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _block_worker, adjacency_parts, adj.degrees, start, stop, params
                )
                for start, stop in bounds
            ]
            for future in futures:
                data, indices, indptr, shape = future.result()
                _finish_block(
                    sp.csr_matrix((data, indices, indptr), shape=shape)
                )
    else:
        for start, stop in bounds:
            with span("compute.kernel.block"):
                fault_point("compute.kernel.block")
                _finish_block(
                    _build_block(adj.matrix, adj.degrees, start, stop, params)
                )
    stats.add_stage("blocks", time.perf_counter() - stage_start)

    stage_start = time.perf_counter()
    if spiller is not None:
        matrix = spiller.assemble(n)
    else:
        matrix = sp.csr_matrix(sp.vstack(blocks, format="csr"))
    result = SimilarityMatrix.from_csr(matrix, adj.users)
    stats.add_stage("assemble", time.perf_counter() - stage_start)
    return result


def build_kernel(
    graph: GraphLike,
    measure: Any,
    *,
    backend: str = "auto",
    block_size: int = DEFAULT_BLOCK_SIZE,
    workers: Optional[int] = None,
    memory_budget_bytes: Optional[int] = None,
    stats: Optional[ComputeStats] = None,
) -> SimilarityMatrix:
    """Build the all-pairs similarity kernel for ``measure`` on ``graph``.

    Args:
        graph: the (public) social graph — either an in-memory
            ``SocialGraph`` or an mmap-backed
            :class:`~repro.graph.bigcsr.BigCSRGraph`; any
            :class:`~repro.graph.protocol.GraphLike` works.
        measure: any registered similarity measure.
        backend: ``"auto"`` (vectorised when supported, python fallback on
            any vectorised failure), ``"vectorized"`` (fail rather than
            fall back), or ``"python"`` (reference row loop).
        block_size: kernel rows per construction block; bounds peak
            memory on the vectorised path.
        workers: with ``workers >= 2``, fan row blocks out across a
            process pool (vectorised path only).
        memory_budget_bytes: hard target for the construction working
            set (vectorised path).  When set, block bounds are derived
            adaptively from a per-row cost estimate so each block's
            product stays within the budget, and finished blocks spill
            to ``.npy`` scratch files instead of accumulating in memory
            (``compute.spill.*`` counters record the traffic).  The
            *result* kernel still materialises — the budget governs
            construction overhead, not output size.
        stats: optional :class:`ComputeStats` to fill with per-stage wall
            times, throughput, and the backend actually used.

    Returns:
        A :class:`~repro.similarity.matrix.SimilarityMatrix` whose rows
        follow the graph's stable user order under either backend.

    Raises:
        ValueError: for an unknown backend or invalid ``block_size`` /
            ``memory_budget_bytes``.
        ReproError: when ``backend="vectorized"`` and the measure has no
            vectorised builder as configured.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if memory_budget_bytes is not None and memory_budget_bytes < 1:
        raise ValueError(
            f"memory_budget_bytes must be >= 1, got {memory_budget_bytes}"
        )
    if stats is None:
        stats = ComputeStats()
    if memory_budget_bytes is not None:
        stats.memory_budget_bytes = memory_budget_bytes
    with span("compute.build_kernel"):
        try:
            return _build_kernel(
                graph,
                measure,
                backend=backend,
                block_size=block_size,
                workers=workers,
                memory_budget_bytes=memory_budget_bytes,
                stats=stats,
            )
        finally:
            # Mirror the construction counters into the active telemetry
            # registry (no-op when disabled or nothing ran).
            publish_compute_stats(stats)


def _build_kernel(
    graph: GraphLike,
    measure: Any,
    *,
    backend: str,
    block_size: int,
    workers: Optional[int],
    memory_budget_bytes: Optional[int],
    stats: ComputeStats,
) -> SimilarityMatrix:
    stats.requested = backend
    stats.measure = getattr(measure, "name", type(measure).__name__)
    resolved = resolve_backend(backend, measure)
    total_start = time.perf_counter()

    if resolved == "vectorized":
        params = _kernel_params(measure)
        if params is None:
            raise ReproError(
                f"measure {measure!r} has no vectorised similarity kernel; "
                f"use backend='python' or 'auto'"
            )
        try:
            fault_point("compute.kernel")
            result = _vectorized_kernel(
                graph,
                measure,
                params,
                block_size,
                workers,
                memory_budget_bytes,
                stats,
            )
            stats.backend = "vectorized"
            stats.finish(
                result.num_users, result.nnz, time.perf_counter() - total_start
            )
            return result
        except Exception:
            if backend == "vectorized":
                raise
            # auto: degrade to the reference implementation — slower,
            # never wrong (same ladder shape as serving degradation).
            stats.fallbacks += 1

    stage_start = time.perf_counter()
    result = python_kernel(graph, measure)
    stats.add_stage("rows", time.perf_counter() - stage_start)
    stats.backend = "python"
    stats.finish(result.num_users, result.nnz, time.perf_counter() - total_start)
    return result
