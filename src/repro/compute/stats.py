"""Backend names and perf counters for the vectorised compute layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["BACKENDS", "ComputeStats", "validate_backend"]

#: Valid backend selectors, everywhere a backend choice is threaded:
#: ``auto`` picks the vectorised path when the measure supports it and
#: degrades to python on failure; the other two force one path.
BACKENDS: Tuple[str, ...] = ("auto", "vectorized", "python")


def validate_backend(backend: str) -> str:
    """Return ``backend`` unchanged, or raise ``ValueError`` if unknown."""
    if backend not in BACKENDS:
        known = ", ".join(BACKENDS)
        raise ValueError(f"unknown compute backend {backend!r}; choose from {known}")
    return backend


@dataclass
class ComputeStats:
    """Counters for one kernel (or clustering) construction.

    Attributes:
        requested: the backend the caller asked for.
        backend: the backend that actually produced the result
            (``"python"`` after an auto-fallback; empty until a build ran).
        measure: registry name of the measure built, when applicable.
        rows: kernel rows produced.
        nnz: stored non-zero entries in the result.
        blocks: row blocks the construction was split into.
        workers: processes used (1 = in-process).
        fallbacks: vectorised attempts that degraded to the python path.
        memory_budget_bytes: the caller's peak-memory target for block
            construction (0 = unbudgeted).
        spill_blocks: finished row blocks spilled to ``.npy`` scratch
            files instead of held in memory.
        spill_bytes: total bytes written to spill files.
        stage_seconds: wall time per construction stage
            (``adjacency``, ``blocks``, ``assemble``, ``rows``).
        total_seconds: end-to-end construction wall time.
        rows_per_second: ``rows / total_seconds``.
    """

    requested: str = "auto"
    backend: str = ""
    measure: str = ""
    rows: int = 0
    nnz: int = 0
    blocks: int = 0
    workers: int = 1
    fallbacks: int = 0
    memory_budget_bytes: int = 0
    spill_blocks: int = 0
    spill_bytes: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    rows_per_second: float = 0.0

    def add_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall time for one named construction stage."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def finish(self, rows: int, nnz: int, total_seconds: float) -> None:
        """Record the final size and derive the throughput counters."""
        self.rows = rows
        self.nnz = nnz
        self.total_seconds = total_seconds
        self.rows_per_second = rows / total_seconds if total_seconds > 0 else 0.0
