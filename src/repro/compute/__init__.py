"""Vectorised sparse compute backends for kernels and clustering.

``repro.compute`` is the construction-speed layer: it builds the same
similarity kernels and Louvain partitions as the pure-python reference
implementations, but on scipy CSR algebra and flat numpy arrays, with a
``auto | vectorized | python`` backend switch threaded through
:class:`~repro.similarity.base.SimilarityCache`, the recommenders,
:func:`~repro.core.batch.batch_recommend_all`, and the CLI.  ``auto``
degrades to the python path on any vectorised failure — the same
never-wrong-only-slower ladder as the serving degradation machinery.
"""

from repro.compute.adjacency import (
    CSRAdjacency,
    adjacency_csr,
    clear_adjacency_cache,
)
from repro.compute.kernels import (
    DEFAULT_BLOCK_SIZE,
    build_kernel,
    python_kernel,
    resolve_backend,
    supports_vectorized_kernel,
)
from repro.compute.stats import BACKENDS, ComputeStats, validate_backend

__all__ = [
    "BACKENDS",
    "CSRAdjacency",
    "ComputeStats",
    "DEFAULT_BLOCK_SIZE",
    "adjacency_csr",
    "build_kernel",
    "clear_adjacency_cache",
    "python_kernel",
    "resolve_backend",
    "supports_vectorized_kernel",
    "validate_backend",
]
