"""Privacy-budget accounting under sequential and parallel composition.

Theorem 2 (sequential composition): computations over *overlapping* data
add their epsilons.  Theorem 3 (parallel composition): computations over
*disjoint* data cost only the maximum epsilon.

:class:`PrivacyBudget` is a simple decrementing allowance for sequential
spending.  :class:`BudgetLedger` additionally records named charges and can
account for parallel groups, which is how the end-to-end recommender
documents that its per-item, per-cluster releases together cost only
epsilon (every preference edge is touched exactly once).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import BudgetExhaustedError, PrivacyError
from repro.privacy.mechanisms import validate_epsilon

__all__ = ["PrivacyBudget", "BudgetLedger"]


class PrivacyBudget:
    """A decrementing epsilon allowance (sequential composition).

    Example:
        >>> budget = PrivacyBudget(1.0)
        >>> budget.spend(0.4)
        >>> round(budget.remaining, 10)
        0.6
    """

    def __init__(self, epsilon: float) -> None:
        self._total = validate_epsilon(epsilon)
        self._spent = 0.0

    @property
    def total(self) -> float:
        return self._total

    @property
    def spent(self) -> float:
        return self._spent

    @property
    def remaining(self) -> float:
        if math.isinf(self._total):
            return math.inf
        return max(0.0, self._total - self._spent)

    def can_spend(self, epsilon: float) -> bool:
        """Whether ``epsilon`` fits in the remaining allowance."""
        epsilon = validate_epsilon(epsilon)
        if math.isinf(self._total):
            return True
        # Tolerate float round-off so N sequential charges of total/N pass.
        return epsilon <= self.remaining + 1e-12

    def spend(self, epsilon: float) -> None:
        """Consume ``epsilon`` from the allowance.

        Raises:
            BudgetExhaustedError: if the allowance cannot cover the charge.
            InvalidEpsilonError: if the charge is not a positive number.
        """
        epsilon = validate_epsilon(epsilon)
        if not self.can_spend(epsilon):
            raise BudgetExhaustedError(epsilon, self.remaining)
        if not math.isinf(self._total):
            self._spent += epsilon

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(total={self._total}, spent={self._spent}, "
            f"remaining={self.remaining})"
        )


@dataclass
class _Charge:
    label: str
    epsilon: float
    group: str


@dataclass
class BudgetLedger:
    """Named epsilon charges with parallel-composition groups.

    Charges in the same *group* are assumed to touch disjoint portions of
    the sensitive data, so the group costs ``max`` of its members
    (Theorem 3); different groups compose sequentially (Theorem 2).  The
    caller is responsible for the disjointness claim — the ledger is an
    accounting device, not a proof checker.

    Example (Algorithm 1's structure):
        >>> ledger = BudgetLedger()
        >>> for item in ("i1", "i2"):
        ...     ledger.charge(f"averages[{item}]", 0.5, group="per-item")
        >>> ledger.total_epsilon()
        0.5
    """

    charges: List[_Charge] = field(default_factory=list)

    def charge(self, label: str, epsilon: float, group: str = "") -> None:
        """Record a charge; an empty group composes sequentially by itself.

        Raises:
            PrivacyError: for an infinite charge — a ledger records real
                spending, and ``epsilon = inf`` means no mechanism ran.
        """
        epsilon = validate_epsilon(epsilon)
        if math.isinf(epsilon):
            raise PrivacyError("cannot record an infinite epsilon charge")
        group_key = group if group else f"__seq_{len(self.charges)}"
        self.charges.append(_Charge(label=label, epsilon=epsilon, group=group_key))

    def group_epsilons(self) -> Dict[str, float]:
        """Max epsilon per parallel group."""
        groups: Dict[str, float] = {}
        for charge in self.charges:
            groups[charge.group] = max(groups.get(charge.group, 0.0), charge.epsilon)
        return groups

    def total_epsilon(self) -> float:
        """Overall epsilon: sum over groups of the per-group max."""
        return sum(self.group_epsilons().values())

    def summary(self) -> List[Tuple[str, float]]:
        """(group, epsilon) pairs sorted by group name."""
        return sorted(self.group_epsilons().items())
