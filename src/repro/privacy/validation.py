"""Empirical differential-privacy validation by Monte-Carlo estimation.

Proofs cover mechanisms as designed; this module tests mechanisms as
*implemented*.  :func:`estimate_privacy_loss` runs a mechanism many times
on two neighbouring inputs, histograms a scalar projection of the outputs,
and returns the largest observed log-probability ratio — an empirical
lower bound on the mechanism's effective epsilon.  A correct eps-DP
implementation must produce estimates at or below eps (up to sampling
error); a broken one (wrong sensitivity, reused noise, data-dependent
branching) typically blows far past it.

This is the library form of the checks the test suite applies to the
Laplace mechanism and to module A_w, exposed so downstream users can
validate their own clustering strategies or mechanism changes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.exceptions import PrivacyError

__all__ = ["PrivacyLossEstimate", "estimate_privacy_loss"]


@dataclass(frozen=True)
class PrivacyLossEstimate:
    """Result of a Monte-Carlo privacy-loss estimation.

    Attributes:
        epsilon_lower_bound: the largest observed |log(P1/P2)| over the
            well-populated histogram buckets — an empirical lower bound on
            the mechanism's effective epsilon.
        samples: number of mechanism invocations per input.
        buckets_compared: how many histogram buckets had enough mass on
            both sides to compare.
    """

    epsilon_lower_bound: float
    samples: int
    buckets_compared: int

    def is_consistent_with(self, epsilon: float, slack: float = 0.2) -> bool:
        """Whether the estimate is compatible with a claimed epsilon.

        Args:
            epsilon: the claimed privacy parameter.
            slack: multiplicative tolerance for sampling error (0.2 means
                estimates up to 1.2x the claim still pass).
        """
        return self.epsilon_lower_bound <= epsilon * (1.0 + slack)


def estimate_privacy_loss(
    mechanism: Callable[[object, np.random.Generator], float],
    input_a: object,
    input_b: object,
    samples: int = 100_000,
    bins: int = 40,
    min_bucket_count: int = 200,
    seed: int = 0,
    bin_range: Optional[tuple] = None,
) -> PrivacyLossEstimate:
    """Estimate the empirical privacy loss between two neighbouring inputs.

    Args:
        mechanism: callable ``(input, rng) -> float`` running one noisy
            release and returning a scalar output (or a scalar projection
            of a structured output).  It must draw all randomness from the
            provided generator.
        input_a / input_b: the two neighbouring inputs (differing in one
            record, per the DP definition in use).
        samples: invocations per input; more samples tighten the bound.
        bins: histogram resolution.
        min_bucket_count: buckets with fewer samples on either side are
            skipped (their ratio estimates are dominated by noise).
        seed: RNG seed; two independent streams are derived from it.
        bin_range: optional fixed ``(lo, hi)``; by default the pooled
            sample range is used.

    Returns:
        A :class:`PrivacyLossEstimate`.

    Raises:
        PrivacyError: if no bucket is populated enough to compare — the
            caller should increase ``samples`` or reduce ``bins``.
        ValueError: for non-positive samples or bins.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    if bins < 2:
        raise ValueError(f"bins must be >= 2, got {bins}")

    seeds = np.random.SeedSequence(seed).spawn(2)
    rng_a = np.random.default_rng(seeds[0])
    rng_b = np.random.default_rng(seeds[1])
    out_a = np.array([mechanism(input_a, rng_a) for _ in range(samples)])
    out_b = np.array([mechanism(input_b, rng_b) for _ in range(samples)])

    if bin_range is None:
        lo = float(min(out_a.min(), out_b.min()))
        hi = float(max(out_a.max(), out_b.max()))
        if lo == hi:  # deterministic mechanism: distinguishable iff different
            distinguishable = not np.array_equal(out_a, out_b)
            return PrivacyLossEstimate(
                epsilon_lower_bound=math.inf if distinguishable else 0.0,
                samples=samples,
                buckets_compared=1,
            )
        bin_range = (lo, hi)
    edges = np.linspace(bin_range[0], bin_range[1], bins + 1)
    hist_a, _ = np.histogram(out_a, bins=edges)
    hist_b, _ = np.histogram(out_b, bins=edges)

    # Disjoint support: a bucket that one input populates heavily and the
    # other never hits is conclusive evidence of unbounded privacy loss.
    disjoint = ((hist_a >= min_bucket_count) & (hist_b == 0)) | (
        (hist_b >= min_bucket_count) & (hist_a == 0)
    )
    if bool(disjoint.any()):
        return PrivacyLossEstimate(
            epsilon_lower_bound=math.inf,
            samples=samples,
            buckets_compared=int(disjoint.sum()),
        )

    mask = (hist_a >= min_bucket_count) & (hist_b >= min_bucket_count)
    compared = int(mask.sum())
    if compared == 0:
        raise PrivacyError(
            "no histogram bucket is populated enough to compare; "
            "increase samples or reduce bins"
        )
    ratios = hist_a[mask] / hist_b[mask]
    log_ratios = np.abs(np.log(ratios))
    # Discount each bucket's sampling error: the log-ratio of two Poisson
    # counts has std ~ sqrt(1/n_a + 1/n_b).  Subtracting two sigmas keeps
    # the estimate a (conservative) lower bound rather than an upward-
    # biased max over noisy buckets.
    sigma = np.sqrt(1.0 / hist_a[mask] + 1.0 / hist_b[mask])
    adjusted = np.maximum(0.0, log_ratios - 2.0 * sigma)
    worst = float(np.max(adjusted))
    return PrivacyLossEstimate(
        epsilon_lower_bound=worst,
        samples=samples,
        buckets_compared=compared,
    )
