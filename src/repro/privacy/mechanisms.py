"""Noise mechanisms for epsilon-differential privacy.

The Laplace mechanism (paper Theorem 1) releases ``f(D) + Lap(Delta_f/eps)``
per output coordinate.  ``epsilon = math.inf`` is accepted everywhere and
means "no noise" — the paper uses it to isolate approximation error from
perturbation error in Figures 1–3, and supporting it in the mechanism
itself keeps experiment code free of special cases.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from repro.exceptions import InvalidEpsilonError, PrivacyError

__all__ = [
    "validate_epsilon",
    "laplace_noise",
    "LaplaceMechanism",
    "GeometricMechanism",
]


def validate_epsilon(epsilon: float) -> float:
    """Check that ``epsilon`` is a positive real number or ``math.inf``.

    Returns the value as a float.

    Raises:
        InvalidEpsilonError: for non-numbers, NaN, zero, or negatives.
    """
    try:
        value = float(epsilon)
    except (TypeError, ValueError):
        raise InvalidEpsilonError(epsilon) from None
    if math.isnan(value) or value <= 0.0:
        raise InvalidEpsilonError(epsilon)
    return value


def laplace_noise(
    scale: float,
    rng: np.random.Generator,
    size: Optional[int] = None,
) -> Union[float, np.ndarray]:
    """Zero-mean Laplace noise with the given scale.

    A scale of 0.0 (which arises from ``epsilon = inf``) returns exact
    zeros, so callers never need to branch on the no-noise case.

    Raises:
        PrivacyError: for a negative scale.
    """
    if scale < 0.0:
        raise PrivacyError(f"Laplace scale must be >= 0, got {scale}")
    if scale == 0.0:
        return 0.0 if size is None else np.zeros(size)
    return rng.laplace(loc=0.0, scale=scale, size=size)


class LaplaceMechanism:
    """The Laplace mechanism: ``release(x) = x + Lap(sensitivity/epsilon)``.

    Args:
        epsilon: privacy parameter; ``math.inf`` disables noise.
        sensitivity: the L1 global sensitivity of the query being released.
        rng: random source (pass one for reproducibility).

    Raises:
        InvalidEpsilonError: for an invalid epsilon.
        PrivacyError: for a negative sensitivity.
    """

    def __init__(
        self,
        epsilon: float,
        sensitivity: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.epsilon = validate_epsilon(epsilon)
        if sensitivity < 0.0:
            raise PrivacyError(f"sensitivity must be >= 0, got {sensitivity}")
        self.sensitivity = float(sensitivity)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def scale(self) -> float:
        """The noise scale ``sensitivity / epsilon`` (0.0 when eps = inf)."""
        if math.isinf(self.epsilon):
            return 0.0
        return self.sensitivity / self.epsilon

    @property
    def expected_error(self) -> float:
        """Expected absolute error: the std of Lap(scale) is sqrt(2)*scale."""
        return math.sqrt(2.0) * self.scale

    def release(self, value: float) -> float:
        """A single noisy release of a scalar query answer."""
        return float(value) + float(laplace_noise(self.scale, self._rng))

    def release_vector(self, values: Sequence[float]) -> np.ndarray:
        """Noisy release of a vector, independent noise per coordinate.

        Note that releasing d coordinates of the *same* record's data at
        sensitivity Delta each costs d*epsilon under sequential composition;
        use this only for queries whose joint L1 sensitivity is
        ``self.sensitivity`` (e.g. histograms) or track the budget yourself.
        """
        array = np.asarray(values, dtype=float)
        return array + laplace_noise(self.scale, self._rng, size=array.size).reshape(
            array.shape
        )


class GeometricMechanism:
    """The (two-sided) geometric mechanism for integer-valued queries.

    Adds integer noise with ``P[k] ~ alpha^|k|`` where
    ``alpha = exp(-epsilon / sensitivity)``; this is the discrete analogue
    of the Laplace mechanism and is exactly epsilon-DP for integer queries
    of the given sensitivity.
    """

    def __init__(
        self,
        epsilon: float,
        sensitivity: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.epsilon = validate_epsilon(epsilon)
        if sensitivity < 0:
            raise PrivacyError(f"sensitivity must be >= 0, got {sensitivity}")
        self.sensitivity = int(sensitivity)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def alpha(self) -> float:
        """The geometric decay parameter ``exp(-epsilon/sensitivity)``."""
        if math.isinf(self.epsilon) or self.sensitivity == 0:
            return 0.0
        return math.exp(-self.epsilon / self.sensitivity)

    def release(self, value: int) -> int:
        """A single noisy release of an integer query answer."""
        alpha = self.alpha
        if alpha == 0.0:
            return int(value)
        # Two-sided geometric = difference of two one-sided geometrics.
        p = 1.0 - alpha
        down = self._rng.geometric(p) - 1
        up = self._rng.geometric(p) - 1
        return int(value) + int(up) - int(down)
