"""Global-sensitivity calculators for social-recommendation workloads.

Adding or removing one preference edge ``(v, i)`` changes:

- every utility query ``mu_u^i`` with ``v in sim(u)`` by ``sim(u, v)``, so
  the joint L1 sensitivity of the per-item utility vector released by NOU is
  ``max_v sum_u sim(u, v)`` — the largest *column* sum of the similarity
  workload (:func:`utility_query_sensitivity`).  For most measures this is
  driven by the highest-degree user, which is why NOU drowns the signal.
- exactly one edge weight, by 1, for NOE
  (:func:`edge_weight_sensitivity`).
- exactly one cluster average, by ``1/|c|``, for the proposed framework
  (:func:`cluster_average_sensitivity`).

These are the quantities Theorems 1/3 calibrate the Laplace noise against.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.community.clustering import Clustering
from repro.graph.social_graph import SocialGraph
from repro.similarity.base import SimilarityCache, SimilarityMeasure
from repro.types import UserId

__all__ = [
    "utility_query_sensitivity",
    "edge_weight_sensitivity",
    "cluster_average_sensitivity",
    "similarity_column_sums",
]


def similarity_column_sums(
    graph: SocialGraph,
    measure: SimilarityMeasure,
    cache: Optional[SimilarityCache] = None,
) -> Dict[UserId, float]:
    """``sum_u sim(u, v)`` for every user ``v``.

    This is how much total utility mass a single user's preference edge can
    inject across all other users' queries for one item.

    Args:
        graph: the social graph.
        measure: the similarity measure (ignored when ``cache`` is given).
        cache: optional pre-warmed row cache to reuse.
    """
    if cache is None:
        cache = SimilarityCache(measure, graph)
    sums: Dict[UserId, float] = {u: 0.0 for u in graph.users()}
    for u in graph.users():
        for v, score in cache.row(u).items():
            sums[v] = sums.get(v, 0.0) + score
    return sums


def utility_query_sensitivity(
    graph: SocialGraph,
    measure: SimilarityMeasure,
    cache: Optional[SimilarityCache] = None,
) -> float:
    """Global sensitivity of the per-item utility vector (NOU's Delta).

    ``Delta_A = max_v sum_u sim(u, v)`` — the paper's Section 5.1.1.
    Returns 0.0 for an empty graph.
    """
    sums = similarity_column_sums(graph, measure, cache=cache)
    if not sums:
        return 0.0
    return max(sums.values())


def edge_weight_sensitivity() -> float:
    """Sensitivity of a single unweighted preference edge (NOE's Delta): 1."""
    return 1.0


def cluster_average_sensitivity(
    clustering: Clustering, cluster_index: int
) -> float:
    """Sensitivity of one cluster's average edge weight: ``1/|c|``.

    Adding/removing one preference edge changes exactly one cluster's
    average (the cluster holding the edge's user), by at most ``1/|c|`` —
    the key quantity in Algorithm 1's noise calibration.
    """
    return 1.0 / clustering.size_of(cluster_index)
