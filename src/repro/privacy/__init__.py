"""Differential-privacy primitives (paper Section 3).

- :class:`LaplaceMechanism` / :func:`laplace_noise` — the workhorse
  mechanism (Theorem 1): add ``Lap(sensitivity / epsilon)`` noise.
- :class:`GeometricMechanism` — the discrete analogue, provided for
  integer-valued counts.
- :class:`PrivacyBudget` — epsilon accounting under sequential (Theorem 2)
  and parallel (Theorem 3) composition.
- :mod:`repro.privacy.sensitivity` — global-sensitivity calculators for the
  utility-query workloads of the recommenders (the quantities the NOU and
  cluster mechanisms calibrate their noise against).
"""

from repro.privacy.budget import BudgetLedger, PrivacyBudget
from repro.privacy.mechanisms import (
    GeometricMechanism,
    LaplaceMechanism,
    laplace_noise,
    validate_epsilon,
)
from repro.privacy.sensitivity import (
    cluster_average_sensitivity,
    edge_weight_sensitivity,
    utility_query_sensitivity,
)

__all__ = [
    "LaplaceMechanism",
    "GeometricMechanism",
    "laplace_noise",
    "validate_epsilon",
    "PrivacyBudget",
    "BudgetLedger",
    "utility_query_sensitivity",
    "edge_weight_sensitivity",
    "cluster_average_sensitivity",
]
