"""Clustering post-processing heuristics (paper Section 7, future work).

The paper proposes "post-processing heuristics to clean up the clustering
by, for example, pruning low-quality clusters".  Two heuristics are
provided:

- :func:`merge_small_clusters` — absorb clusters below a minimum size into
  the neighbouring cluster they share the most social edges with.  Small
  clusters are the framework's worst case: their averages carry noise of
  scale ``1/(|c| eps)``, so a size-1 cluster is as noisy as raw NOE.
- :func:`split_large_clusters` — re-run Louvain *inside* clusters above a
  maximum size.  Oversized clusters are the opposite failure: their
  averages wash out the tastes of members whose similarity sets are a
  small fraction of the cluster (the paper's Figure 3 effect).

Both operate only on the public social graph, so composing them with any
public-graph strategy keeps the framework's privacy guarantee intact.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.community.clustering import Clustering
from repro.graph.social_graph import SocialGraph

__all__ = ["merge_small_clusters", "split_large_clusters"]


def merge_small_clusters(
    clustering: Clustering,
    graph: SocialGraph,
    min_size: int,
) -> Clustering:
    """Merge every cluster smaller than ``min_size`` into a neighbour.

    The target is the other cluster with the most social edges to the
    small cluster's members; a small cluster with no outside edges (an
    isolated component) merges with the largest other small-or-regular
    cluster only if edges exist — otherwise it is left alone, since no
    social evidence links it anywhere.

    Args:
        clustering: the input partition (not modified).
        graph: the public social graph.
        min_size: clusters strictly smaller than this are merged.

    Returns:
        A new partition; clusters are the surviving groups.

    Raises:
        ValueError: if ``min_size`` < 1.
    """
    if min_size < 1:
        raise ValueError(f"min_size must be >= 1, got {min_size}")
    assignment = clustering.assignment()
    sizes: Dict[int, int] = {
        i: clustering.size_of(i) for i in range(clustering.num_clusters)
    }
    # Process smallest clusters first so chains of tiny clusters coalesce.
    order = sorted(sizes, key=lambda c: sizes[c])
    for cluster in order:
        if sizes[cluster] >= min_size or sizes[cluster] == 0:
            continue
        members = [u for u, c in assignment.items() if c == cluster]
        edge_counts: Dict[int, int] = {}
        for u in members:
            if u not in graph:
                continue
            for nbr in graph.neighbors(u):
                target = assignment.get(nbr)
                if target is not None and target != cluster:
                    edge_counts[target] = edge_counts.get(target, 0) + 1
        if not edge_counts:
            continue  # socially isolated cluster: leave it alone
        best = max(sorted(edge_counts), key=lambda c: edge_counts[c])
        for u in members:
            assignment[u] = best
        sizes[best] += sizes[cluster]
        sizes[cluster] = 0
    return Clustering.from_assignment(assignment)


def split_large_clusters(
    clustering: Clustering,
    graph: SocialGraph,
    max_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Clustering:
    """Split clusters above ``max_size`` by clustering their subgraphs.

    Louvain re-runs on the induced subgraph of each oversized cluster; if
    it finds no finer structure (a single community), the cluster is kept
    as is.

    Args:
        clustering: the input partition (not modified).
        graph: the public social graph.
        max_size: clusters strictly larger than this are split.
        rng: random source for the inner Louvain runs.

    Raises:
        ValueError: if ``max_size`` < 1.
    """
    from repro.community.louvain import louvain

    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    if rng is None:
        rng = np.random.default_rng(0)
    groups: List[List] = []
    for index in range(clustering.num_clusters):
        members = clustering.members_of(index)
        if len(members) <= max_size:
            groups.append(list(members))
            continue
        in_graph = [u for u in members if u in graph]
        outside = [u for u in members if u not in graph]
        sub = graph.subgraph(in_graph)
        result = louvain(sub, rng=rng)
        if result.clustering.num_clusters <= 1:
            groups.append(list(members))
            continue
        sub_groups = [list(c) for c in result.clustering]
        # Members outside the graph stay with the largest fragment.
        if outside:
            sub_groups[int(np.argmax([len(g) for g in sub_groups]))].extend(outside)
        groups.extend(sub_groups)
    return Clustering(groups)
