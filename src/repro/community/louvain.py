"""The Louvain method for community detection, with multi-level refinement.

This is a from-scratch implementation of the algorithm the paper adopts for
its clustering phase:

- greedy local moving of nodes between communities to maximise modularity
  (Blondel et al., "Fast unfolding of communities in large networks", 2008),
- aggregation of each community into a super-node and repetition on the
  coarser graph, until modularity stops improving,
- the multi-level refinement step of Rotta & Noack (JEA 2011): after the
  hierarchy is built, the partition is projected back down level by level
  and local moving re-runs at every level, which stabilises the output
  under different initial node orderings — exactly why the paper adds it.

The paper runs Louvain 10 times with different random node orderings and
keeps the most modular result; :func:`best_louvain_clustering` packages
that protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.community.clustering import Clustering
from repro.community.modularity import modularity
from repro.graph.social_graph import SocialGraph
from repro.types import UserId

__all__ = ["louvain", "best_louvain_clustering", "LouvainResult"]

# Minimum modularity improvement for another level of aggregation.
_MIN_LEVEL_GAIN = 1e-7


class _AggregateGraph:
    """Weighted graph used internally across Louvain's aggregation levels.

    Nodes are integers.  ``adjacency[u][v]`` is the weight between distinct
    nodes; ``loops[u]`` is the self-loop weight (internal weight of a
    collapsed community).  ``total_weight`` is the sum of all edge weights,
    counting each undirected edge once and each loop once.
    """

    __slots__ = ("adjacency", "loops", "total_weight")

    def __init__(self, num_nodes: int) -> None:
        self.adjacency: List[Dict[int, float]] = [{} for _ in range(num_nodes)]
        self.loops: List[float] = [0.0] * num_nodes
        self.total_weight = 0.0

    @property
    def num_nodes(self) -> int:
        return len(self.adjacency)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        if u == v:
            self.loops[u] += weight
        else:
            self.adjacency[u][v] = self.adjacency[u].get(v, 0.0) + weight
            self.adjacency[v][u] = self.adjacency[v].get(u, 0.0) + weight
        self.total_weight += weight

    def weighted_degree(self, u: int) -> float:
        """Degree counting loops twice (standard modularity convention)."""
        return sum(self.adjacency[u].values()) + 2.0 * self.loops[u]

    @classmethod
    def from_social_graph(
        cls, graph: SocialGraph
    ) -> Tuple["_AggregateGraph", List[UserId]]:
        """Convert a social graph; returns the graph and the node-id order."""
        users = graph.users()
        index = {user: i for i, user in enumerate(users)}
        agg = cls(len(users))
        for u, v in graph.edges():
            agg.add_edge(index[u], index[v], 1.0)
        return agg, users


def _one_level(
    graph: _AggregateGraph,
    node2com: List[int],
    rng: np.random.Generator,
) -> bool:
    """Run local moving until no node move improves modularity.

    ``node2com`` is modified in place; returns True when at least one move
    happened.
    """
    m = graph.total_weight
    if m <= 0.0:
        return False

    # Community totals: sum of weighted degrees, maintained incrementally.
    com_degree: Dict[int, float] = {}
    for node in range(graph.num_nodes):
        com = node2com[node]
        com_degree[com] = com_degree.get(com, 0.0) + graph.weighted_degree(node)

    order = np.arange(graph.num_nodes)
    rng.shuffle(order)

    moved_any = False
    improved = True
    while improved:
        improved = False
        for node in order:
            node = int(node)
            com = node2com[node]
            k_i = graph.weighted_degree(node)
            k_i_over_2m = k_i / (2.0 * m)

            # Weight from `node` to each neighboring community.
            links_to_com: Dict[int, float] = {}
            for nbr, weight in graph.adjacency[node].items():
                c = node2com[nbr]
                links_to_com[c] = links_to_com.get(c, 0.0) + weight

            # Remove the node from its community for the comparison.
            com_degree[com] -= k_i
            base = links_to_com.get(com, 0.0) - com_degree[com] * k_i_over_2m

            best_com = com
            best_gain = base
            for c, dnc in links_to_com.items():
                if c == com:
                    continue
                gain = dnc - com_degree.get(c, 0.0) * k_i_over_2m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_com = c

            com_degree[best_com] = com_degree.get(best_com, 0.0) + k_i
            if best_com != com:
                node2com[node] = best_com
                improved = True
                moved_any = True
    return moved_any


def _renumber(node2com: List[int]) -> Tuple[List[int], int]:
    """Map community labels to 0..k-1 in order of first appearance."""
    mapping: Dict[int, int] = {}
    renumbered = []
    for com in node2com:
        if com not in mapping:
            mapping[com] = len(mapping)
        renumbered.append(mapping[com])
    return renumbered, len(mapping)


def _induced_graph(
    graph: _AggregateGraph, node2com: List[int], num_coms: int
) -> _AggregateGraph:
    """Collapse each community into a super-node, summing edge weights."""
    coarse = _AggregateGraph(num_coms)
    for node in range(graph.num_nodes):
        cu = node2com[node]
        coarse.loops[cu] += graph.loops[node]
        coarse.total_weight += graph.loops[node]
        for nbr, weight in graph.adjacency[node].items():
            if nbr < node:
                continue  # count each undirected edge once
            cv = node2com[nbr]
            if cu == cv:
                coarse.loops[cu] += weight
                coarse.total_weight += weight
            else:
                coarse.adjacency[cu][cv] = coarse.adjacency[cu].get(cv, 0.0) + weight
                coarse.adjacency[cv][cu] = coarse.adjacency[cv].get(cu, 0.0) + weight
                coarse.total_weight += weight
    return coarse


def _flat_partition(levels: List[List[int]], num_base_nodes: int) -> List[int]:
    """Compose per-level assignments into a base-node -> community map."""
    assignment = list(range(num_base_nodes))
    for level in levels:
        assignment = [level[c] for c in assignment]
    return assignment


@dataclass(frozen=True)
class LouvainResult:
    """Outcome of one Louvain run.

    Attributes:
        clustering: the detected communities as a validated partition.
        modularity: Q of the clustering on the input graph.
        num_levels: number of aggregation levels the run used.
        refined: whether multi-level refinement ran.
    """

    clustering: Clustering
    modularity: float
    num_levels: int
    refined: bool


def louvain(
    graph: SocialGraph,
    rng: Optional[np.random.Generator] = None,
    refine: bool = True,
) -> LouvainResult:
    """Detect communities in ``graph`` with the Louvain method.

    Args:
        graph: the social graph to cluster.
        rng: random source controlling node visit order (defaults to a
            fresh seeded generator, so pass one for reproducibility).
        refine: run the Rotta–Noack multi-level refinement pass (the paper
            enables it).

    Returns:
        A :class:`LouvainResult`; for an edgeless graph every node becomes
        its own community.
    """
    if rng is None:
        rng = np.random.default_rng(0)

    base, users = _AggregateGraph.from_social_graph(graph)
    n = base.num_nodes
    if n == 0:
        return LouvainResult(Clustering([]), 0.0, 0, refined=False)
    if base.total_weight == 0.0:
        singletons = Clustering([[u] for u in users])
        return LouvainResult(singletons, 0.0, 0, refined=False)

    graphs: List[_AggregateGraph] = [base]
    levels: List[List[int]] = []
    current = base
    prev_q = -1.0
    while True:
        node2com = list(range(current.num_nodes))
        _one_level(current, node2com, rng)
        node2com, num_coms = _renumber(node2com)
        flat = _flat_partition(levels + [node2com], n)
        q = _partition_modularity(base, flat)
        if q - prev_q <= _MIN_LEVEL_GAIN and levels:
            break
        prev_q = q
        levels.append(node2com)
        if num_coms == current.num_nodes:
            break
        current = _induced_graph(current, node2com, num_coms)
        graphs.append(current)

    if refine and len(levels) > 1:
        _refine_levels(graphs, levels, rng)

    flat = _flat_partition(levels, n)
    assignment = {users[i]: flat[i] for i in range(n)}
    clustering = Clustering.from_assignment(assignment)
    return LouvainResult(
        clustering=clustering,
        modularity=modularity(graph, clustering),
        num_levels=len(levels),
        refined=refine and len(levels) > 1,
    )


def _partition_modularity(base: _AggregateGraph, assignment: List[int]) -> float:
    """Modularity of a base-node assignment on the internal weighted graph."""
    m = base.total_weight
    if m <= 0.0:
        return 0.0
    intra: Dict[int, float] = {}
    deg: Dict[int, float] = {}
    for node in range(base.num_nodes):
        c = assignment[node]
        deg[c] = deg.get(c, 0.0) + base.weighted_degree(node)
        intra[c] = intra.get(c, 0.0) + base.loops[node]
        for nbr, weight in base.adjacency[node].items():
            if nbr < node:
                continue
            if assignment[nbr] == c:
                intra[c] = intra.get(c, 0.0) + weight
    q = 0.0
    two_m = 2.0 * m
    for c in deg:
        q += intra.get(c, 0.0) / m - (deg[c] / two_m) ** 2
    return q


def _refine_levels(
    graphs: List[_AggregateGraph],
    levels: List[List[int]],
    rng: np.random.Generator,
) -> None:
    """Multi-level refinement: re-run local moving from coarse to fine.

    At each level below the coarsest, the nodes of that level's graph start
    from the community assignment implied by the levels above them; local
    moving then polishes the assignment, and the improvement propagates
    downward.  ``levels`` is rewritten in place.
    """
    for li in range(len(levels) - 2, -1, -1):
        # Assignment of level-li nodes implied by the coarser levels.
        coarse = levels[li]
        node2com = list(coarse)
        for upper in levels[li + 1 :]:
            node2com = [upper[c] for c in node2com]
        _one_level(graphs[li], node2com, rng)
        node2com, _num = _renumber(node2com)
        # Collapse everything above level li into this single refined level.
        del levels[li + 1 :]
        levels[li] = node2com


def best_louvain_clustering(
    graph: SocialGraph,
    runs: int = 10,
    seed: int = 0,
    refine: bool = True,
) -> LouvainResult:
    """The paper's clustering protocol: best of ``runs`` Louvain restarts.

    Each run uses an independent random node ordering; the run with the
    highest modularity wins (ties keep the earliest run, so results are
    deterministic in ``seed``).

    Raises:
        ValueError: if ``runs`` < 1.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    seeds = np.random.SeedSequence(seed).spawn(runs)
    best: Optional[LouvainResult] = None
    for child in seeds:
        result = louvain(graph, rng=np.random.default_rng(child), refine=refine)
        if best is None or result.modularity > best.modularity:
            best = result
    assert best is not None
    return best
