"""The Louvain method for community detection, with multi-level refinement.

This is a from-scratch implementation of the algorithm the paper adopts for
its clustering phase:

- greedy local moving of nodes between communities to maximise modularity
  (Blondel et al., "Fast unfolding of communities in large networks", 2008),
- aggregation of each community into a super-node and repetition on the
  coarser graph, until modularity stops improving,
- the multi-level refinement step of Rotta & Noack (JEA 2011): after the
  hierarchy is built, the partition is projected back down level by level
  and local moving re-runs at every level, which stabilises the output
  under different initial node orderings — exactly why the paper adds it.

The paper runs Louvain 10 times with different random node orderings and
keeps the most modular result; :func:`best_louvain_clustering` packages
that protocol.

Two interchangeable backends drive the same level loop:

- ``python`` — the original dict-of-dicts implementation below, kept as
  the semantic reference;
- ``vectorized`` — the same algorithm on flat numpy arrays (CSR-style
  ``indptr``/``indices``/``weights``, a node→community vector, community
  weight accumulators).  Tie-breaking is replicated exactly — candidate
  communities are visited in first-appearance order and compared with the
  same ``> best + 1e-12`` rule — and every edge weight in the hierarchy
  is an integer-valued float (sums of 1.0), so all gain arithmetic is
  exact and the two backends produce **identical partitions** for the
  same rng (property-tested).  ``backend="auto"`` (the default) runs
  vectorized and falls back to python on any failure, replaying the same
  rng stream.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.community.clustering import Clustering
from repro.community.modularity import modularity
from repro.compute.stats import validate_backend
from repro.graph.protocol import GraphLike
from repro.obs.registry import incr as obs_incr
from repro.obs.spans import span
from repro.resilience.faults import fault_point
from repro.types import UserId

__all__ = ["louvain", "best_louvain_clustering", "LouvainResult"]

# Minimum modularity improvement for another level of aggregation.
_MIN_LEVEL_GAIN = 1e-7


class _AggregateGraph:
    """Weighted graph used internally across Louvain's aggregation levels.

    Nodes are integers.  ``adjacency[u][v]`` is the weight between distinct
    nodes; ``loops[u]`` is the self-loop weight (internal weight of a
    collapsed community).  ``total_weight`` is the sum of all edge weights,
    counting each undirected edge once and each loop once.
    """

    __slots__ = ("adjacency", "loops", "total_weight")

    def __init__(self, num_nodes: int) -> None:
        self.adjacency: List[Dict[int, float]] = [{} for _ in range(num_nodes)]
        self.loops: List[float] = [0.0] * num_nodes
        self.total_weight = 0.0

    @property
    def num_nodes(self) -> int:
        return len(self.adjacency)

    def add_edge(self, u: int, v: int, weight: float) -> None:
        if u == v:
            self.loops[u] += weight
        else:
            self.adjacency[u][v] = self.adjacency[u].get(v, 0.0) + weight
            self.adjacency[v][u] = self.adjacency[v].get(u, 0.0) + weight
        self.total_weight += weight

    def weighted_degree(self, u: int) -> float:
        """Degree counting loops twice (standard modularity convention)."""
        return sum(self.adjacency[u].values()) + 2.0 * self.loops[u]

    @classmethod
    def from_social_graph(
        cls, graph: GraphLike
    ) -> Tuple["_AggregateGraph", List[UserId]]:
        """Convert a social graph; returns the graph and the node-id order.

        Edges are ingested in *canonical sorted order* regardless of how
        the input representation iterates them.  The adjacency dicts'
        insertion order decides modularity tie-breaks during local
        moving, so without a canonical order the same graph stored as an
        in-memory ``SocialGraph`` and as an mmap-backed ``BigCSRGraph``
        could yield different partitions for the same seed.
        """
        users = graph.users()
        if isinstance(users, range) and users == range(len(users)):
            agg = cls(len(users))
            pairs = sorted(graph.edges())
        else:
            index = {user: i for i, user in enumerate(users)}
            agg = cls(len(users))
            pairs = sorted(
                (index[u], index[v]) if index[u] <= index[v] else (index[v], index[u])
                for u, v in graph.edges()
            )
        for u, v in pairs:
            agg.add_edge(u, v, 1.0)
        return agg, users


def _one_level(
    graph: _AggregateGraph,
    node2com: List[int],
    rng: np.random.Generator,
) -> bool:
    """Run local moving until no node move improves modularity.

    ``node2com`` is modified in place; returns True when at least one move
    happened.
    """
    m = graph.total_weight
    if m <= 0.0:
        return False

    # Community totals: sum of weighted degrees, maintained incrementally.
    com_degree: Dict[int, float] = {}
    for node in range(graph.num_nodes):
        com = node2com[node]
        com_degree[com] = com_degree.get(com, 0.0) + graph.weighted_degree(node)

    order = np.arange(graph.num_nodes)
    rng.shuffle(order)

    moved_any = False
    improved = True
    while improved:
        improved = False
        for node in order:
            node = int(node)
            com = node2com[node]
            k_i = graph.weighted_degree(node)
            k_i_over_2m = k_i / (2.0 * m)

            # Weight from `node` to each neighboring community.
            links_to_com: Dict[int, float] = {}
            for nbr, weight in graph.adjacency[node].items():
                c = node2com[nbr]
                links_to_com[c] = links_to_com.get(c, 0.0) + weight

            # Remove the node from its community for the comparison.
            com_degree[com] -= k_i
            base = links_to_com.get(com, 0.0) - com_degree[com] * k_i_over_2m

            best_com = com
            best_gain = base
            for c, dnc in links_to_com.items():
                if c == com:
                    continue
                gain = dnc - com_degree.get(c, 0.0) * k_i_over_2m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_com = c

            com_degree[best_com] = com_degree.get(best_com, 0.0) + k_i
            if best_com != com:
                node2com[node] = best_com
                improved = True
                moved_any = True
    return moved_any


def _renumber(node2com: List[int]) -> Tuple[List[int], int]:
    """Map community labels to 0..k-1 in order of first appearance."""
    mapping: Dict[int, int] = {}
    renumbered = []
    for com in node2com:
        if com not in mapping:
            mapping[com] = len(mapping)
        renumbered.append(mapping[com])
    return renumbered, len(mapping)


def _induced_graph(
    graph: _AggregateGraph, node2com: List[int], num_coms: int
) -> _AggregateGraph:
    """Collapse each community into a super-node, summing edge weights."""
    coarse = _AggregateGraph(num_coms)
    for node in range(graph.num_nodes):
        cu = node2com[node]
        coarse.loops[cu] += graph.loops[node]
        coarse.total_weight += graph.loops[node]
        for nbr, weight in graph.adjacency[node].items():
            if nbr < node:
                continue  # count each undirected edge once
            cv = node2com[nbr]
            if cu == cv:
                coarse.loops[cu] += weight
                coarse.total_weight += weight
            else:
                coarse.adjacency[cu][cv] = coarse.adjacency[cu].get(cv, 0.0) + weight
                coarse.adjacency[cv][cu] = coarse.adjacency[cv].get(cu, 0.0) + weight
                coarse.total_weight += weight
    return coarse


def _flat_partition(levels: List[List[int]], num_base_nodes: int) -> List[int]:
    """Compose per-level assignments into a base-node -> community map."""
    assignment = list(range(num_base_nodes))
    for level in levels:
        assignment = [level[c] for c in assignment]
    return assignment


def _partition_modularity(base: _AggregateGraph, assignment: List[int]) -> float:
    """Modularity of a base-node assignment on the internal weighted graph."""
    m = base.total_weight
    if m <= 0.0:
        return 0.0
    intra: Dict[int, float] = {}
    deg: Dict[int, float] = {}
    for node in range(base.num_nodes):
        c = assignment[node]
        deg[c] = deg.get(c, 0.0) + base.weighted_degree(node)
        intra[c] = intra.get(c, 0.0) + base.loops[node]
        for nbr, weight in base.adjacency[node].items():
            if nbr < node:
                continue
            if assignment[nbr] == c:
                intra[c] = intra.get(c, 0.0) + weight
    q = 0.0
    two_m = 2.0 * m
    for c in deg:
        q += intra.get(c, 0.0) / m - (deg[c] / two_m) ** 2
    return q


# ----------------------------------------------------------------------
# vectorized backend: the same algorithm on flat numpy arrays
# ----------------------------------------------------------------------
class _FlatGraph:
    """CSR-style weighted graph for the vectorized Louvain backend.

    Per-node neighbor runs (``indices[indptr[u]:indptr[u+1]]``) keep the
    exact insertion order of the dict-based :class:`_AggregateGraph`, so
    first-appearance community iteration — the tie-breaking order — is
    identical between backends.
    """

    __slots__ = ("indptr", "indices", "weights", "loops", "total_weight", "_wdeg")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        loops: np.ndarray,
        total_weight: float,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.loops = loops
        self.total_weight = total_weight
        self._wdeg: Optional[np.ndarray] = None

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    def weighted_degrees(self) -> np.ndarray:
        """Per-node weighted degree, loops counted twice (cached)."""
        if self._wdeg is None:
            n = self.num_nodes
            wdeg = np.zeros(n)
            src = np.repeat(np.arange(n), np.diff(self.indptr))
            np.add.at(wdeg, src, self.weights)
            self._wdeg = wdeg + 2.0 * self.loops
        return self._wdeg

    @classmethod
    def from_adjacency_lists(
        cls,
        nbr_lists: List[List[int]],
        wt_lists: List[List[float]],
        loops: np.ndarray,
        total_weight: float,
    ) -> "_FlatGraph":
        n = len(nbr_lists)
        counts = np.fromiter((len(row) for row in nbr_lists), np.int64, n)
        nnz = int(counts.sum()) if n else 0
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.fromiter((j for row in nbr_lists for j in row), np.int64, nnz)
        weights = np.fromiter((w for row in wt_lists for w in row), np.float64, nnz)
        return cls(indptr, indices, weights, loops, total_weight)

    @classmethod
    def from_social_graph(
        cls, graph: GraphLike
    ) -> Tuple["_FlatGraph", List[UserId]]:
        """Convert a social graph; returns the graph and the node-id order.

        Edges are ingested in canonical sorted order (the same rule as
        ``_AggregateGraph.from_social_graph``): neighbor-run order is the
        tie-breaking order of local moving, so it must not depend on
        whether the graph arrived as a ``SocialGraph`` or a mmap-backed
        ``BigCSRGraph``.
        """
        users = graph.users()
        if isinstance(users, range) and users == range(len(users)):
            pairs = sorted(graph.edges())
        else:
            index = {user: i for i, user in enumerate(users)}
            pairs = sorted(
                (index[u], index[v]) if index[u] <= index[v] else (index[v], index[u])
                for u, v in graph.edges()
            )
        nbr_lists: List[List[int]] = [[] for _ in users]
        for iu, iv in pairs:
            nbr_lists[iu].append(iv)
            nbr_lists[iv].append(iu)
        wt_lists = [[1.0] * len(row) for row in nbr_lists]
        return (
            cls.from_adjacency_lists(
                nbr_lists, wt_lists, np.zeros(len(users)), float(graph.num_edges)
            ),
            users,
        )


def _one_level_flat(
    graph: _FlatGraph,
    node2com: np.ndarray,
    rng: np.random.Generator,
) -> bool:
    """Local moving over flat arrays; mirrors :func:`_one_level` move for move.

    The weighted-degree vector and the community-degree accumulator are
    computed vectorised once (the dict version re-sums a node's adjacency
    on *every* visit of every sweep — the single largest cost in the
    reference implementation).  The sequential move scan itself runs over
    builtin-list mirrors of the CSR arrays: local moving is inherently
    order-dependent, and element reads on lists avoid per-access numpy
    scalar boxing while holding the exact same float64 values.

    Candidate communities are visited in first-appearance order over the
    node's neighbor run — the order the dict version iterates
    ``links_to_com`` — and every link sum and community degree is an
    integer-valued float, so gains, comparisons, and therefore moves are
    bit-identical to the python backend.
    """
    m = graph.total_weight
    if m <= 0.0:
        return False

    n = graph.num_nodes
    wdeg_arr = graph.weighted_degrees()
    com_degree_arr = np.zeros(n)
    np.add.at(com_degree_arr, node2com, wdeg_arr)

    order_arr = np.arange(n)
    rng.shuffle(order_arr)

    ptr = graph.indptr.tolist()
    idx = graph.indices.tolist()
    wts = graph.weights.tolist()
    wdeg = wdeg_arr.tolist()
    com_degree = com_degree_arr.tolist()
    coms = node2com.tolist()
    order = order_arr.tolist()
    two_m = 2.0 * m

    # Per-node (neighbor, weight) runs, paired once and reused across every
    # sweep — the CSR row slices stay in neighbor order, so links_to_com
    # fills in the same first-appearance order as the dict backend.
    pairs = [
        list(zip(idx[ptr[i] : ptr[i + 1]], wts[ptr[i] : ptr[i + 1]]))
        for i in range(n)
    ]

    moved_any = False
    improved = True
    while improved:
        improved = False
        for node in order:
            com = coms[node]
            k_i = wdeg[node]
            k_i_over_2m = k_i / two_m

            links_to_com: Dict[int, float] = {}
            links_get = links_to_com.get
            for nbr, weight in pairs[node]:
                c = coms[nbr]
                links_to_com[c] = links_get(c, 0.0) + weight

            com_degree[com] -= k_i
            best_gain = links_to_com.get(com, 0.0) - com_degree[com] * k_i_over_2m
            best_com = com
            for c, dnc in links_to_com.items():
                if c == com:
                    continue
                gain = dnc - com_degree[c] * k_i_over_2m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_com = c

            com_degree[best_com] += k_i
            if best_com != com:
                coms[node] = best_com
                improved = True
                moved_any = True
    node2com[:] = coms
    return moved_any


def _renumber_flat(node2com: np.ndarray) -> Tuple[np.ndarray, int]:
    """Vectorized first-appearance renumbering (matches :func:`_renumber`)."""
    uniq, first, inverse = np.unique(
        node2com, return_index=True, return_inverse=True
    )
    rank = np.empty(len(uniq), dtype=np.int64)
    rank[np.argsort(first, kind="stable")] = np.arange(len(uniq), dtype=np.int64)
    return rank[inverse], len(uniq)


def _induced_flat(
    graph: _FlatGraph, node2com: np.ndarray, num_coms: int
) -> _FlatGraph:
    """Collapse communities into super-nodes on flat arrays.

    Coarse neighbor runs are emitted in first appearance order of each
    inter-community pair over the fine-edge scan — the same insertion
    order the dict version produces — and all weight sums are integer
    accumulations, so the coarse graph is indistinguishable from the
    python backend's.
    """
    n = graph.num_nodes
    src = np.repeat(np.arange(n), np.diff(graph.indptr))
    keep = graph.indices >= src  # count each undirected edge once
    edge_u = node2com[src[keep]]
    edge_v = node2com[graph.indices[keep]]
    edge_w = graph.weights[keep]

    loops = np.zeros(num_coms)
    np.add.at(loops, node2com, graph.loops)
    intra = edge_u == edge_v
    np.add.at(loops, edge_u[intra], edge_w[intra])

    inter = ~intra
    lo = np.minimum(edge_u[inter], edge_v[inter])
    hi = np.maximum(edge_u[inter], edge_v[inter])
    pair_key = lo.astype(np.int64) * np.int64(num_coms) + hi.astype(np.int64)
    uniq, first, inverse = np.unique(
        pair_key, return_index=True, return_inverse=True
    )
    pair_weight = np.bincount(inverse, weights=edge_w[inter])

    nbr_lists: List[List[int]] = [[] for _ in range(num_coms)]
    wt_lists: List[List[float]] = [[] for _ in range(num_coms)]
    for j in np.argsort(first, kind="stable"):
        j = int(j)
        com_a, com_b = divmod(int(uniq[j]), num_coms)
        weight = float(pair_weight[j])
        nbr_lists[com_a].append(com_b)
        wt_lists[com_a].append(weight)
        nbr_lists[com_b].append(com_a)
        wt_lists[com_b].append(weight)
    return _FlatGraph.from_adjacency_lists(
        nbr_lists, wt_lists, loops, graph.total_weight
    )


def _flat_partition_flat(
    levels: List[np.ndarray], num_base_nodes: int
) -> np.ndarray:
    assignment = np.arange(num_base_nodes, dtype=np.int64)
    for level in levels:
        assignment = level[assignment]
    return assignment


def _partition_modularity_flat(
    base: _FlatGraph, assignment: np.ndarray
) -> float:
    """Modularity on flat arrays, bit-equal to :func:`_partition_modularity`.

    The per-community terms use exact integer sums; the final float
    accumulation visits communities in the same first-appearance order the
    dict version iterates, so level-gain decisions never diverge between
    backends.
    """
    m = base.total_weight
    if m <= 0.0:
        return 0.0
    n = base.num_nodes
    num_coms = int(assignment.max()) + 1
    deg = np.bincount(assignment, weights=base.weighted_degrees(), minlength=num_coms)
    intra = np.bincount(assignment, weights=base.loops, minlength=num_coms)
    src = np.repeat(np.arange(n), np.diff(base.indptr))
    keep = (base.indices >= src) & (assignment[src] == assignment[base.indices])
    if keep.any():
        np.add.at(intra, assignment[src[keep]], base.weights[keep])

    uniq, first = np.unique(assignment, return_index=True)
    q = 0.0
    two_m = 2.0 * m
    for j in np.argsort(first, kind="stable"):
        c = int(uniq[j])
        q += intra[c] / m - (deg[c] / two_m) ** 2
    return q


class _PythonBackend:
    """Dispatch table for the reference dict-based implementation."""

    name = "python"
    from_social = staticmethod(_AggregateGraph.from_social_graph)
    one_level = staticmethod(_one_level)
    renumber = staticmethod(_renumber)
    induced = staticmethod(_induced_graph)
    partition = staticmethod(_flat_partition)
    partition_modularity = staticmethod(_partition_modularity)

    @staticmethod
    def num_nodes(graph: _AggregateGraph) -> int:
        return graph.num_nodes

    @staticmethod
    def identity(n: int) -> List[int]:
        return list(range(n))

    @staticmethod
    def copy_assignment(assignment: List[int]) -> List[int]:
        return list(assignment)

    @staticmethod
    def compose(assignment: List[int], upper: List[int]) -> List[int]:
        return [upper[c] for c in assignment]


class _VectorizedBackend:
    """Dispatch table for the flat-array implementation."""

    name = "vectorized"
    from_social = staticmethod(_FlatGraph.from_social_graph)
    one_level = staticmethod(_one_level_flat)
    renumber = staticmethod(_renumber_flat)
    induced = staticmethod(_induced_flat)
    partition = staticmethod(_flat_partition_flat)
    partition_modularity = staticmethod(_partition_modularity_flat)

    @staticmethod
    def num_nodes(graph: _FlatGraph) -> int:
        return graph.num_nodes

    @staticmethod
    def identity(n: int) -> np.ndarray:
        return np.arange(n, dtype=np.int64)

    @staticmethod
    def copy_assignment(assignment: np.ndarray) -> np.ndarray:
        return assignment.copy()

    @staticmethod
    def compose(assignment: np.ndarray, upper: np.ndarray) -> np.ndarray:
        return upper[assignment]


@dataclass(frozen=True)
class LouvainResult:
    """Outcome of one Louvain run.

    Attributes:
        clustering: the detected communities as a validated partition.
        modularity: Q of the clustering on the input graph.
        num_levels: number of aggregation levels the run used.
        refined: whether multi-level refinement ran.
        backend: which compute backend produced the result (``"python"``
            or ``"vectorized"``; the partition is identical either way).
    """

    clustering: Clustering
    modularity: float
    num_levels: int
    refined: bool
    backend: str = "python"


def _run_louvain(
    graph: GraphLike,
    rng: np.random.Generator,
    refine: bool,
    ops: Any,
) -> LouvainResult:
    """The backend-generic level loop (Blondel et al. + Rotta–Noack)."""
    base, users = ops.from_social(graph)
    n = ops.num_nodes(base)
    if n == 0:
        return LouvainResult(Clustering([]), 0.0, 0, refined=False, backend=ops.name)
    if base.total_weight == 0.0:
        singletons = Clustering([[u] for u in users])
        return LouvainResult(singletons, 0.0, 0, refined=False, backend=ops.name)

    graphs = [base]
    levels: List[Any] = []
    current = base
    prev_q = -1.0
    while True:
        node2com = ops.identity(ops.num_nodes(current))
        ops.one_level(current, node2com, rng)
        node2com, num_coms = ops.renumber(node2com)
        flat = ops.partition(levels + [node2com], n)
        q = ops.partition_modularity(base, flat)
        if q - prev_q <= _MIN_LEVEL_GAIN and levels:
            break
        prev_q = q
        levels.append(node2com)
        if num_coms == ops.num_nodes(current):
            break
        current = ops.induced(current, node2com, num_coms)
        graphs.append(current)

    if refine and len(levels) > 1:
        _refine_levels(graphs, levels, rng, ops)

    flat = ops.partition(levels, n)
    assignment = {users[i]: int(flat[i]) for i in range(n)}
    clustering = Clustering.from_assignment(assignment)
    obs_incr("louvain.levels", len(levels))
    return LouvainResult(
        clustering=clustering,
        modularity=modularity(graph, clustering),
        num_levels=len(levels),
        refined=refine and len(levels) > 1,
        backend=ops.name,
    )


def louvain(
    graph: GraphLike,
    rng: Optional[np.random.Generator] = None,
    refine: bool = True,
    backend: str = "auto",
) -> LouvainResult:
    """Detect communities in ``graph`` with the Louvain method.

    Args:
        graph: the social graph to cluster.
        rng: random source controlling node visit order (defaults to a
            fresh seeded generator, so pass one for reproducibility).
        refine: run the Rotta–Noack multi-level refinement pass (the paper
            enables it).
        backend: ``"auto"`` (vectorized, falling back to python on any
            failure with the same rng stream), ``"vectorized"``, or
            ``"python"``.  The partition does not depend on the choice.

    Returns:
        A :class:`LouvainResult`; for an edgeless graph every node becomes
        its own community.

    Raises:
        ValueError: for an unknown backend name.
    """
    validate_backend(backend)
    if rng is None:
        rng = np.random.default_rng(0)
    with span("community.louvain"):
        obs_incr("louvain.runs")
        if backend == "python":
            obs_incr("louvain.backend.python")
            return _run_louvain(graph, rng, refine, _PythonBackend)
        # Snapshot the generator so a fallback replays the identical
        # stream — the python rerun then produces the exact partition the
        # vectorized run would have.
        rng_snapshot = copy.deepcopy(rng)
        try:
            fault_point("compute.louvain")
            result = _run_louvain(graph, rng, refine, _VectorizedBackend)
            obs_incr("louvain.backend.vectorized")
            return result
        except Exception:
            if backend == "vectorized":
                raise
            obs_incr("louvain.fallbacks")
            obs_incr("louvain.backend.python")
            return _run_louvain(graph, rng_snapshot, refine, _PythonBackend)


def _refine_levels(
    graphs: List[Any],
    levels: List[Any],
    rng: np.random.Generator,
    ops: Any = _PythonBackend,
) -> None:
    """Multi-level refinement: re-run local moving from coarse to fine.

    At each level below the coarsest, the nodes of that level's graph start
    from the community assignment implied by the levels above them; local
    moving then polishes the assignment, and the improvement propagates
    downward.  ``levels`` is rewritten in place.
    """
    for li in range(len(levels) - 2, -1, -1):
        # Assignment of level-li nodes implied by the coarser levels.
        node2com = ops.copy_assignment(levels[li])
        for upper in levels[li + 1 :]:
            node2com = ops.compose(node2com, upper)
        ops.one_level(graphs[li], node2com, rng)
        node2com, _num = ops.renumber(node2com)
        # Collapse everything above level li into this single refined level.
        del levels[li + 1 :]
        levels[li] = node2com


def best_louvain_clustering(
    graph: GraphLike,
    runs: int = 10,
    seed: int = 0,
    refine: bool = True,
    backend: str = "auto",
) -> LouvainResult:
    """The paper's clustering protocol: best of ``runs`` Louvain restarts.

    Each run uses an independent random node ordering; the run with the
    highest modularity wins (ties keep the earliest run, so results are
    deterministic in ``seed`` — and independent of ``backend``).

    Raises:
        ValueError: if ``runs`` < 1 or the backend name is unknown.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    validate_backend(backend)
    seeds = np.random.SeedSequence(seed).spawn(runs)
    best: Optional[LouvainResult] = None
    for child in seeds:
        result = louvain(
            graph, rng=np.random.default_rng(child), refine=refine, backend=backend
        )
        if best is None or result.modularity > best.modularity:
            best = result
    assert best is not None
    return best
