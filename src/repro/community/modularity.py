"""Modularity of a clustering (paper Eq. 8).

``Q(Phi) = sum_c [ |E_c| / |E_s| - (sum_{u in c} deg(u) / (2|E_s|))^2 ]``

(The paper's Eq. 8 writes ``|E_c| / 2|E_s|`` with ``E_c`` counting each
intra-cluster edge from both endpoints; we count undirected edges once and
divide by ``|E_s|``, which is the same quantity.)

Modularity compares the density of intra-cluster edges against the expected
density in a degree-preserving random rewiring; it is the objective the
Louvain method greedily maximises.
"""

from __future__ import annotations

import numpy as np

from repro.community.clustering import Clustering
from repro.exceptions import ClusteringError
from repro.graph.social_graph import SocialGraph

__all__ = ["modularity"]


def modularity(graph: SocialGraph, clustering: Clustering) -> float:
    """The modularity ``Q`` of ``clustering`` on ``graph``.

    The per-cluster intra-edge and degree tallies run vectorised over the
    shared CSR adjacency export (integer counts, so the totals are exact);
    the final float accumulation visits clusters in ascending label order,
    matching the original pure-python loop bit for bit.

    Args:
        graph: the social graph.
        clustering: a partition covering exactly the graph's users.

    Returns:
        Q in [-0.5, 1.0]; 0.0 for a graph with no edges.

    Raises:
        ClusteringError: if the clustering does not cover the graph's users.
    """
    if clustering.users() != set(graph.users()):
        raise ClusteringError("clustering must cover exactly the graph's users")
    m = graph.num_edges
    if m == 0:
        return 0.0

    from repro.compute.adjacency import adjacency_csr

    adjacency = adjacency_csr(graph)
    cluster_of = clustering.cluster_of
    num_users = adjacency.num_users
    num_clusters = clustering.num_clusters
    assignment = np.fromiter(
        (cluster_of(u) for u in adjacency.users), np.int64, num_users
    )
    degree_sum = np.bincount(
        assignment, weights=adjacency.degrees, minlength=num_clusters
    )
    matrix = adjacency.matrix
    src = np.repeat(np.arange(num_users), np.diff(matrix.indptr))
    upper = matrix.indices > src  # count each undirected edge once
    intra_edges = upper & (assignment[src] == assignment[matrix.indices])
    intra = np.bincount(
        assignment[src[intra_edges]], minlength=num_clusters
    ).astype(np.float64)

    two_m = 2.0 * m
    q = 0.0
    for c in range(num_clusters):
        q += float(intra[c]) / m - (float(degree_sum[c]) / two_m) ** 2
    return q
