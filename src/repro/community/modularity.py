"""Modularity of a clustering (paper Eq. 8).

``Q(Phi) = sum_c [ |E_c| / |E_s| - (sum_{u in c} deg(u) / (2|E_s|))^2 ]``

(The paper's Eq. 8 writes ``|E_c| / 2|E_s|`` with ``E_c`` counting each
intra-cluster edge from both endpoints; we count undirected edges once and
divide by ``|E_s|``, which is the same quantity.)

Modularity compares the density of intra-cluster edges against the expected
density in a degree-preserving random rewiring; it is the objective the
Louvain method greedily maximises.
"""

from __future__ import annotations

from typing import Dict

from repro.community.clustering import Clustering
from repro.exceptions import ClusteringError
from repro.graph.social_graph import SocialGraph

__all__ = ["modularity"]


def modularity(graph: SocialGraph, clustering: Clustering) -> float:
    """The modularity ``Q`` of ``clustering`` on ``graph``.

    Args:
        graph: the social graph.
        clustering: a partition covering exactly the graph's users.

    Returns:
        Q in [-0.5, 1.0]; 0.0 for a graph with no edges.

    Raises:
        ClusteringError: if the clustering does not cover the graph's users.
    """
    if clustering.users() != set(graph.users()):
        raise ClusteringError("clustering must cover exactly the graph's users")
    m = graph.num_edges
    if m == 0:
        return 0.0

    intra: Dict[int, int] = {}
    degree_sum: Dict[int, int] = {}
    cluster_of = clustering.cluster_of
    for u in graph.users():
        c = cluster_of(u)
        degree_sum[c] = degree_sum.get(c, 0) + graph.degree(u)
    for u, v in graph.edges():
        cu, cv = cluster_of(u), cluster_of(v)
        if cu == cv:
            intra[cu] = intra.get(cu, 0) + 1

    two_m = 2.0 * m
    q = 0.0
    for c in range(clustering.num_clusters):
        q += intra.get(c, 0) / m - (degree_sum.get(c, 0) / two_m) ** 2
    return q
