"""Community detection and clustering strategies (paper Section 5.1.2).

The framework's noise reduction comes from grouping users into disjoint
clusters derived *only* from the public social graph.  This package
provides:

- :class:`Clustering` — the validated disjoint-cover-of-users value type
  consumed by the private recommender,
- :func:`louvain` / :class:`LouvainResult` — the Louvain method (Blondel et
  al. 2008) with the multi-level refinement of Rotta & Noack (2011), the
  clustering strategy the paper adopts,
- :func:`modularity` — Eq. 8 of the paper,
- alternative strategies (random, singleton, single-cluster, degree
  buckets, label propagation) used as baselines and ablations.
"""

from repro.community.clustering import Clustering
from repro.community.label_propagation import label_propagation_clustering
from repro.community.louvain import LouvainResult, best_louvain_clustering, louvain
from repro.community.modularity import modularity
from repro.community.postprocess import merge_small_clusters, split_large_clusters
from repro.community.strategies import (
    degree_bucket_clustering,
    random_clustering,
    single_cluster_clustering,
    singleton_clustering,
)

__all__ = [
    "Clustering",
    "louvain",
    "best_louvain_clustering",
    "LouvainResult",
    "modularity",
    "random_clustering",
    "singleton_clustering",
    "single_cluster_clustering",
    "degree_bucket_clustering",
    "label_propagation_clustering",
    "merge_small_clusters",
    "split_large_clusters",
]
