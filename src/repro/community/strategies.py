"""Non-community clustering strategies, used as baselines and ablations.

The paper argues that community structure is what makes the cluster-based
mechanism accurate.  These strategies hold everything else fixed while
replacing the clustering, which is how the ablation benchmarks isolate the
contribution of community detection:

- :func:`random_clustering` — the strawman discussed in Section 5.1.2
  (random edge grouping, no regard for similarity structure),
- :func:`singleton_clustering` — every user alone; the framework then
  degenerates to the NOE baseline (noise of scale 1/eps on every edge),
- :func:`single_cluster_clustering` — everyone together; minimal noise,
  maximal approximation error,
- :func:`degree_bucket_clustering` — group users by social degree, a
  plausible-but-wrong heuristic that ignores *who* the neighbors are.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.community.clustering import Clustering
from repro.graph.social_graph import SocialGraph
from repro.types import UserId

__all__ = [
    "random_clustering",
    "singleton_clustering",
    "single_cluster_clustering",
    "degree_bucket_clustering",
]


def random_clustering(
    users: Sequence[UserId],
    num_clusters: int,
    rng: Optional[np.random.Generator] = None,
) -> Clustering:
    """Partition ``users`` into ``num_clusters`` near-equal random groups.

    Raises:
        ValueError: if ``num_clusters`` is not in ``[1, len(users)]``.
    """
    if not 1 <= num_clusters <= len(users):
        raise ValueError(
            f"num_clusters must be in [1, {len(users)}], got {num_clusters}"
        )
    if rng is None:
        rng = np.random.default_rng(0)
    order = list(users)
    rng.shuffle(order)
    groups: List[List[UserId]] = [[] for _ in range(num_clusters)]
    for position, user in enumerate(order):
        groups[position % num_clusters].append(user)
    return Clustering(groups)


def singleton_clustering(users: Sequence[UserId]) -> Clustering:
    """Every user in a cluster of one (degenerates the framework to NOE)."""
    return Clustering([[u] for u in users])


def single_cluster_clustering(users: Sequence[UserId]) -> Clustering:
    """All users in one cluster (minimal noise, maximal averaging error).

    Raises:
        ValueError: if ``users`` is empty (a clustering cannot have an
            empty cluster).
    """
    if not users:
        raise ValueError("cannot build a single cluster over zero users")
    return Clustering([list(users)])


def degree_bucket_clustering(graph: SocialGraph, num_buckets: int) -> Clustering:
    """Group users into ``num_buckets`` quantile buckets by social degree.

    Users are sorted by ``(degree, user-insertion-order)`` and sliced into
    contiguous near-equal buckets, so the split is deterministic.

    Raises:
        ValueError: if the graph is empty or ``num_buckets`` is invalid.
    """
    users = graph.users()
    if not users:
        raise ValueError("cannot cluster an empty graph")
    if not 1 <= num_buckets <= len(users):
        raise ValueError(
            f"num_buckets must be in [1, {len(users)}], got {num_buckets}"
        )
    position = {u: i for i, u in enumerate(users)}
    ranked = sorted(users, key=lambda u: (graph.degree(u), position[u]))
    buckets: List[List[UserId]] = [[] for _ in range(num_buckets)]
    size = len(ranked) / num_buckets
    for i, user in enumerate(ranked):
        buckets[min(int(i / size), num_buckets - 1)].append(user)
    return Clustering([b for b in buckets if b])
