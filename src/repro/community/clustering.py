"""The :class:`Clustering` value type: a disjoint partition of the users.

Algorithm 1 requires the clusters to (a) cover every user and (b) be
mutually disjoint — both are essential to the privacy proof (parallel
composition over clusters relies on each preference edge landing in exactly
one cluster average).  The constructor validates both properties so a
malformed clustering can never silently reach the mechanism.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

from repro.exceptions import ClusteringError
from repro.types import UserId

__all__ = ["Clustering"]


class Clustering:
    """An immutable partition of a user set into disjoint clusters.

    Args:
        clusters: the member sets.  Empty clusters are rejected.
        universe: if given, the clustering must cover exactly this user set;
            otherwise the universe is taken to be the union of the clusters.

    Raises:
        ClusteringError: on overlap, empty clusters, or coverage mismatch.
    """

    __slots__ = ("_clusters", "_assignment")

    def __init__(
        self,
        clusters: Sequence[Iterable[UserId]],
        universe: Optional[Iterable[UserId]] = None,
    ) -> None:
        frozen: List[FrozenSet[UserId]] = []
        assignment: Dict[UserId, int] = {}
        for index, members in enumerate(clusters):
            cluster = frozenset(members)
            if not cluster:
                raise ClusteringError(f"cluster {index} is empty")
            for user in cluster:
                if user in assignment:
                    raise ClusteringError(
                        f"user {user!r} appears in clusters "
                        f"{assignment[user]} and {index}"
                    )
                assignment[user] = index
            frozen.append(cluster)
        if universe is not None:
            expected = set(universe)
            actual = set(assignment)
            if expected != actual:
                missing = expected - actual
                extra = actual - expected
                raise ClusteringError(
                    f"clustering does not cover the universe: "
                    f"{len(missing)} users missing, {len(extra)} unexpected"
                )
        self._clusters: tuple = tuple(frozen)
        self._assignment = assignment

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_assignment(cls, assignment: Dict[UserId, int]) -> "Clustering":
        """Build from a ``user -> label`` mapping; labels may be arbitrary."""
        groups: Dict[int, Set[UserId]] = {}
        for user, label in assignment.items():
            groups.setdefault(label, set()).add(user)
        # Sort labels for a deterministic cluster order where possible.
        try:
            ordered = sorted(groups)
        except TypeError:
            ordered = list(groups)
        return cls([groups[label] for label in ordered])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        return len(self._clusters)

    @property
    def num_users(self) -> int:
        return len(self._assignment)

    def __len__(self) -> int:
        return len(self._clusters)

    def __iter__(self) -> Iterator[FrozenSet[UserId]]:
        return iter(self._clusters)

    def __getitem__(self, index: int) -> FrozenSet[UserId]:
        return self._clusters[index]

    def __contains__(self, user: UserId) -> bool:
        return user in self._assignment

    def clusters(self) -> List[FrozenSet[UserId]]:
        """All clusters, in construction order."""
        return list(self._clusters)

    def cluster_of(self, user: UserId) -> int:
        """The index of the cluster containing ``user``.

        Raises:
            ClusteringError: if the user is not covered.
        """
        try:
            return self._assignment[user]
        except KeyError:
            raise ClusteringError(f"user {user!r} is not in any cluster") from None

    def members_of(self, index: int) -> FrozenSet[UserId]:
        """The members of cluster ``index``."""
        return self._clusters[index]

    def size_of(self, index: int) -> int:
        """``size(c)`` in Algorithm 1: the number of users in the cluster."""
        return len(self._clusters[index])

    def sizes(self) -> List[int]:
        """All cluster sizes, in construction order."""
        return [len(c) for c in self._clusters]

    def assignment(self) -> Dict[UserId, int]:
        """A copy of the ``user -> cluster index`` mapping."""
        return dict(self._assignment)

    def users(self) -> Set[UserId]:
        """All covered users."""
        return set(self._assignment)

    def co_clustered(self, u: UserId, v: UserId) -> bool:
        """Whether two users share a cluster."""
        return self.cluster_of(u) == self.cluster_of(v)

    def restricted_to(self, users: Iterable[UserId]) -> "Clustering":
        """The clustering induced on a subset of the users.

        Clusters that lose all members disappear.
        """
        keep = set(users)
        reduced = [c & keep for c in self._clusters]
        return Clustering([c for c in reduced if c])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clustering):
            return NotImplemented
        # Partitions are equal when the same groups exist, order-insensitively.
        return set(self._clusters) == set(other._clusters)

    def __hash__(self) -> int:
        return hash(frozenset(self._clusters))

    def __repr__(self) -> str:
        sizes = self.sizes()
        preview = ", ".join(str(s) for s in sizes[:8])
        if len(sizes) > 8:
            preview += ", ..."
        return (
            f"{type(self).__name__}(num_clusters={self.num_clusters}, "
            f"num_users={self.num_users}, sizes=[{preview}])"
        )
