"""Label propagation community detection (Raghavan et al. 2007).

A second, independent community-detection algorithm, used in ablations to
test whether the framework's accuracy depends on Louvain specifically or on
community structure in general.  Each node repeatedly adopts the label most
common among its neighbors (ties broken uniformly at random) until labels
stabilise.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.community.clustering import Clustering
from repro.graph.social_graph import SocialGraph
from repro.types import UserId

__all__ = ["label_propagation_clustering"]


def label_propagation_clustering(
    graph: SocialGraph,
    rng: Optional[np.random.Generator] = None,
    max_iterations: int = 100,
) -> Clustering:
    """Cluster ``graph`` by synchronous-free (asynchronous) label propagation.

    Args:
        graph: the social graph.
        rng: random source for visit order and tie-breaking.
        max_iterations: safety cap on full sweeps; label propagation almost
            always converges in a handful of sweeps on social graphs.

    Returns:
        The final label partition; isolated nodes keep their own labels.
    """
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    if rng is None:
        rng = np.random.default_rng(0)

    users = graph.users()
    labels: Dict[UserId, int] = {u: i for i, u in enumerate(users)}
    if not users:
        return Clustering([])

    order = np.arange(len(users))
    for _sweep in range(max_iterations):
        rng.shuffle(order)
        changed = False
        for idx in order:
            user = users[int(idx)]
            neighbors = graph.neighbors(user)
            if not neighbors:
                continue
            counts: Dict[int, int] = {}
            for nbr in neighbors:
                lab = labels[nbr]
                counts[lab] = counts.get(lab, 0) + 1
            top = max(counts.values())
            candidates = sorted(lab for lab, c in counts.items() if c == top)
            choice = candidates[int(rng.integers(len(candidates)))]
            if choice != labels[user]:
                labels[user] = choice
                changed = True
        if not changed:
            break
    return Clustering.from_assignment(labels)
