"""Vectorised, sharded, cache-backed batch recommendation.

``PrivateSocialRecommender.recommend`` computes one user's similarity row
in Python per call; for producing recommendations for *every* user (the
paper's deployment: "outputs, for each target user, a personalized
recommendation list"), this module replaces the per-user loop with sparse
matrix algebra:

    estimates  =  (S @ C) @ W_hat^T

where ``S`` is the all-pairs similarity matrix
(:mod:`repro.similarity.matrix`), ``C`` the 0/1 user-to-cluster indicator
matrix, and ``W_hat`` the released noisy averages.  The result is
identical to the sequential path — the tests assert bit-equal rankings —
but runs at BLAS speed, chunked to bound memory.

Two throughput layers sit on top of the kernel:

- **A persistent similarity cache** (:mod:`repro.cache`): ``S`` reads
  only the *public* social graph, so it can be computed once, persisted
  as a checksummed artifact, and reused across runs and processes at
  zero privacy cost.  Pass a :class:`~repro.cache.store.SimilarityStore`
  to skip recomputation entirely on a warm cache.
- **User-sharded parallel execution**: with ``workers >= 2`` the target
  users are split into contiguous shards scored across a process pool.
  Workers *memory-map* the cached kernel artifact instead of receiving
  (or recomputing) the matrix, so per-worker startup cost is bounded by
  page-cache reads.  A shard whose worker fails falls back to the
  in-parent sequential kernel, then to the per-user path — the same
  degradation ladder as the sequential mode.

Measures without a vectorised kernel (or with non-default cutoffs the
kernels do not cover) fall back to the per-user path transparently.
Every call returns a :class:`BatchResult` — a plain dict of
user -> :class:`~repro.types.RecommendationList` carrying a
:class:`BatchStats` with cache hit/miss counters, per-shard wall times,
and overall rows/sec.
"""

from __future__ import annotations

import math
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.cache.store import SimilarityStore, open_kernel_csr, save_kernel_artifact
from repro.compute.kernels import build_kernel, supports_vectorized_kernel
from repro.compute.stats import ComputeStats, validate_backend
from repro.core.private import PrivateSocialRecommender
from repro.exceptions import ReproError
from repro.obs.adapters import publish_batch_stats
from repro.obs.spans import span
from repro.resilience.faults import fault_point
from repro.similarity.base import SimilarityMeasure
from repro.similarity.matrix import SimilarityMatrix
from repro.types import RecommendationList, UserId

__all__ = [
    "BatchResult",
    "BatchStats",
    "batch_recommend_all",
    "compute_similarity_kernel",
    "supports_vectorised_measure",
]


def _similarity_matrix_for(
    graph,
    measure: SimilarityMeasure,
    backend: str = "auto",
    stats: Optional[ComputeStats] = None,
) -> Optional[SimilarityMatrix]:
    """The batch kernel for ``measure``, or None when unsupported.

    Construction goes through :func:`repro.compute.build_kernel`, so the
    chosen ``backend`` (and its auto-fallback accounting) applies here and
    everywhere else a kernel is built.
    """
    if not supports_vectorized_kernel(measure):
        return None
    return build_kernel(graph, measure, backend=backend, stats=stats)


def compute_similarity_kernel(
    graph,
    measure: SimilarityMeasure,
    backend: str = "auto",
    stats: Optional[ComputeStats] = None,
) -> SimilarityMatrix:
    """The all-pairs kernel for ``measure`` (cache-warming entry point).

    Raises:
        ReproError: when ``measure`` has no vectorised kernel with its
            current settings (see :func:`supports_vectorised_measure`).
    """
    matrix = _similarity_matrix_for(graph, measure, backend=backend, stats=stats)
    if matrix is None:
        raise ReproError(
            f"measure {measure!r} has no vectorised similarity kernel"
        )
    return matrix


def supports_vectorised_measure(measure: SimilarityMeasure) -> bool:
    """Whether ``measure`` has a batch kernel (with its current settings).

    Delegates to :func:`repro.compute.supports_vectorized_kernel`: cn/aa/ra
    always, Graph Distance at *any* cutoff (the blocked BFS kernel), and
    Katz up to the paper's l <= 3.
    """
    return supports_vectorized_kernel(measure)


@dataclass
class BatchStats:
    """Perf counters for one :func:`batch_recommend_all` call.

    Attributes:
        mode: ``"parallel"``, ``"sequential"``, or ``"per-user"`` (no
            vectorised kernel, or the kernel failed outright).
        users_served: number of recommendation lists produced.
        wall_seconds: end-to-end wall time of the call.
        rows_per_second: ``users_served / wall_seconds``.
        num_shards: shards (parallel) or chunks (sequential) scored.
        shard_seconds: wall time per shard/chunk, in completion order.
        fallback_shards: shards/chunks that degraded off the pooled or
            vectorised path.
        fallback_users: users served by the per-user path (degraded
            shards plus zero-signal users routed through the ladder).
        cache_hits / cache_misses: similarity-store lookups during this
            call (both zero when no store was passed).
        kernel_seconds: time spent obtaining the similarity kernel
            (near zero on a warm cache).
        compute: the :class:`~repro.compute.stats.ComputeStats` of the
            kernel construction, when one ran during this call (None on a
            warm cache or the per-user path).
        tier_transitions: degradation-ladder transitions, keyed by edge
            (``"kernel->per-user"``, ``"pool->parent"``,
            ``"parent->per-user"``, ``"vectorized->per-user"``).
            ``fallback_shards``/``fallback_users`` count *work items*;
            this counts *transitions*, so a pool that degrades to the
            in-parent ladder mid-run is visible even when every shard
            still gets served.
    """

    mode: str = "sequential"
    users_served: int = 0
    wall_seconds: float = 0.0
    rows_per_second: float = 0.0
    num_shards: int = 0
    shard_seconds: List[float] = field(default_factory=list)
    fallback_shards: int = 0
    fallback_users: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    kernel_seconds: float = 0.0
    compute: Optional[ComputeStats] = None
    tier_transitions: Dict[str, int] = field(default_factory=dict)

    def record_transition(self, edge: str) -> None:
        """Count one degradation-ladder transition (e.g. ``"pool->parent"``)."""
        self.tier_transitions[edge] = self.tier_transitions.get(edge, 0) + 1


class BatchResult(Dict[UserId, RecommendationList]):
    """A dict of user -> recommendation list with a ``stats`` attribute.

    Behaves exactly like the plain dict previous versions returned;
    ``stats`` carries the :class:`BatchStats` perf counters.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stats = BatchStats()


def _score_positions(
    kernel: sp.csr_matrix,
    indicator: sp.csr_matrix,
    release_t: np.ndarray,
    positions: Sequence[int],
) -> Tuple[np.ndarray, List[int]]:
    """Utility estimates for a block of users given by kernel row positions.

    ``positions[i] == -1`` marks a user absent from the kernel (zero
    similarity row).  Returns the dense ``(len(positions), num_items)``
    estimate matrix plus the indices of rows with no similarity signal —
    those users must be served by the per-user degradation ladder so
    their reported tier matches ``recommender.recommend`` exactly.
    """
    present = [p for p in positions if p >= 0]
    dense = np.zeros((len(positions), indicator.shape[1]))
    if present:
        cluster_rows = kernel[present, :] @ indicator
        dense_present = np.asarray(cluster_rows.todense())
        cursor = 0
        for i, p in enumerate(positions):
            if p >= 0:
                dense[i, :] = dense_present[cursor, :]
                cursor += 1
    estimates = dense @ release_t
    zero_rows = [i for i in range(len(positions)) if not dense[i, :].any()]
    return estimates, zero_rows


def _score_shard_worker(
    artifact_path: str,
    positions: List[int],
    indicator_parts: Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]],
    release_t: np.ndarray,
) -> Tuple[np.ndarray, List[int]]:
    """Pool-worker entry point: score one user shard from the cached kernel.

    The kernel is memory-mapped straight out of the artifact — workers
    never recompute similarities and share one page-cache copy of the
    buffers.  Module-level so it pickles under every start method.
    """
    kernel = open_kernel_csr(artifact_path)
    data, indices, indptr, shape = indicator_parts
    indicator = sp.csr_matrix((data, indices, indptr), shape=shape)
    return _score_positions(kernel, indicator, release_t, positions)


def batch_recommend_all(
    recommender: PrivateSocialRecommender,
    users: Optional[Iterable[UserId]] = None,
    n: Optional[int] = None,
    chunk_size: int = 512,
    *,
    store: Optional[SimilarityStore] = None,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    backend: str = "auto",
) -> BatchResult:
    """Top-N recommendations for many users at once.

    Args:
        recommender: a *fitted* private recommender.
        users: target users (default: every social-graph user).
        n: list length (default: the recommender's ``n``).
        chunk_size: users per dense chunk on the sequential path; bounds
            peak memory at roughly ``chunk_size * num_items`` floats.
        store: optional persistent similarity cache; the kernel is
            loaded from (or written to) it instead of being recomputed,
            and hit/miss counters are reported on the result's stats.
        workers: with ``workers >= 2``, score contiguous user shards
            across a process pool whose workers memory-map the cached
            kernel artifact.  Default (None or 1) stays in-process.
        shard_size: users per pool shard (default: spread the target
            users over ``4 * workers`` shards so a slow shard cannot
            stall the whole batch).
        backend: kernel construction backend
            (``auto | vectorized | python``; see
            :func:`repro.compute.build_kernel`).  Affects construction
            speed only — scoring happens on the assembled kernel either
            way.  Construction counters land on ``stats.compute``.

    Returns:
        :class:`BatchResult` — user -> :class:`RecommendationList`,
        identical to calling ``recommender.recommend`` per user, with
        perf counters on ``.stats``.

    Raises:
        NotFittedError: when the recommender has not been fitted.
        ReproError: if the recommender has no released weights.
        ValueError: for invalid ``n``, ``chunk_size``, ``workers``, or
            ``shard_size``.
    """
    with span("batch.recommend_all"):
        return _batch_recommend_all(
            recommender,
            users,
            n,
            chunk_size,
            store=store,
            workers=workers,
            shard_size=shard_size,
            backend=backend,
        )


def _batch_recommend_all(
    recommender: PrivateSocialRecommender,
    users: Optional[Iterable[UserId]] = None,
    n: Optional[int] = None,
    chunk_size: int = 512,
    *,
    store: Optional[SimilarityStore] = None,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    backend: str = "auto",
) -> BatchResult:
    start_time = time.perf_counter()
    state = recommender.state
    weights = recommender.noisy_weights_
    clustering = recommender.clustering_
    if weights is None or clustering is None:
        raise ReproError("recommender has no released weights; fit it first")
    limit = recommender.n if n is None else n
    if limit < 1:
        raise ValueError(f"n must be >= 1, got {limit}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if shard_size is not None and shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    validate_backend(backend)

    target_users = list(users) if users is not None else state.social.users()
    results = BatchResult()
    stats = results.stats
    compute_stats = ComputeStats(requested=backend)

    artifact_path: Optional[str] = None
    kernel_start = time.perf_counter()
    try:
        fault_point("batch.kernel")
        if store is not None and supports_vectorised_measure(recommender.measure):
            before = store.stats.snapshot()
            lookup = store.get_or_compute(
                state.social,
                recommender.measure,
                lambda: compute_similarity_kernel(
                    state.social,
                    recommender.measure,
                    backend=backend,
                    stats=compute_stats,
                ),
            )
            sim_matrix: Optional[SimilarityMatrix] = lookup.matrix
            artifact_path = lookup.path
            stats.cache_hits = store.stats.hits - before.hits
            stats.cache_misses = store.stats.misses - before.misses
        else:
            sim_matrix = _similarity_matrix_for(
                state.social, recommender.measure, backend=backend, stats=compute_stats
            )
    except Exception:
        # A failing kernel degrades the whole batch to the (slower but
        # independent) per-user path rather than killing the run.
        sim_matrix = None
        stats.record_transition("kernel->per-user")
    stats.kernel_seconds = time.perf_counter() - kernel_start
    if compute_stats.backend:  # a construction actually ran
        stats.compute = compute_stats

    if sim_matrix is None:
        # No vectorised kernel: fall back to the per-user path.
        stats.mode = "per-user"
        for user in target_users:
            results[user] = recommender.recommend(user, n=limit)
        stats.fallback_users = len(target_users)
        _finalise_stats(stats, len(results), start_time)
        return results

    indicator = recommender.cluster_indicator(sim_matrix.users)
    release_t = np.ascontiguousarray(weights.matrix.T)  # (clusters x items)

    parallel = workers is not None and workers > 1 and len(target_users) > 1
    if parallel:
        _run_parallel(
            recommender,
            results,
            target_users,
            limit,
            sim_matrix,
            indicator,
            release_t,
            artifact_path,
            workers,
            shard_size,
        )
    else:
        _run_sequential(
            recommender,
            results,
            target_users,
            limit,
            sim_matrix,
            indicator,
            release_t,
            chunk_size,
        )
    _finalise_stats(stats, len(results), start_time)
    return results


def _finalise_stats(stats: BatchStats, served: int, start_time: float) -> None:
    stats.users_served = served
    stats.wall_seconds = time.perf_counter() - start_time
    if stats.wall_seconds > 0:
        stats.rows_per_second = served / stats.wall_seconds
    # Mirror the finished call's counters into the active telemetry
    # registry (no-op when observability is disabled).
    publish_batch_stats(stats)


def _merge_block(
    recommender: PrivateSocialRecommender,
    results: BatchResult,
    block_users: Sequence[UserId],
    estimates: np.ndarray,
    zero_rows: Sequence[int],
    limit: int,
) -> None:
    """Turn a scored block into recommendation lists.

    Zero-signal users route through the per-user path so the degradation
    ladder (and its reported tier) matches ``recommender.recommend``
    exactly.
    """
    weights = recommender.noisy_weights_
    zero_set = set(zero_rows)
    for i, user in enumerate(block_users):
        if i in zero_set:
            results[user] = recommender.recommend(user, n=limit)
            results.stats.fallback_users += 1
        else:
            results[user] = recommender._recommend_from_vector(
                user, weights.items, estimates[i, :], limit
            )


def _run_sequential(
    recommender: PrivateSocialRecommender,
    results: BatchResult,
    target_users: Sequence[UserId],
    limit: int,
    sim_matrix: SimilarityMatrix,
    indicator: sp.csr_matrix,
    release_t: np.ndarray,
    chunk_size: int,
) -> None:
    """The in-process path: one pass of chunked dense products."""
    stats = results.stats
    stats.mode = "sequential"
    cluster_sims = sim_matrix.matrix @ indicator  # (users x clusters)
    num_clusters = indicator.shape[1]
    for start in range(0, len(target_users), chunk_size):
        chunk = target_users[start : start + chunk_size]
        chunk_start = time.perf_counter()
        stats.num_shards += 1
        with span("batch.chunk"):
            try:
                fault_point("batch.chunk")
                chunk_rows = [sim_matrix.index.get(user) for user in chunk]
                present = [p for p in chunk_rows if p is not None]
                dense = np.zeros((len(chunk), num_clusters))
                if present:
                    dense_present = np.asarray(
                        cluster_sims[present, :].todense()
                    )
                    cursor = 0
                    for i, p in enumerate(chunk_rows):
                        if p is not None:
                            dense[i, :] = dense_present[cursor, :]
                            cursor += 1
                estimates = dense @ release_t  # (chunk x items)
                zero_rows = [
                    i for i in range(len(chunk)) if not dense[i, :].any()
                ]
                _merge_block(
                    recommender, results, chunk, estimates, zero_rows, limit
                )
            except Exception:
                # A chunk that fails mid-kernel (bad BLAS call, injected
                # fault, memory pressure) degrades to the per-user path for
                # just that chunk; the rest of the batch stays vectorised.
                stats.fallback_shards += 1
                stats.record_transition("vectorized->per-user")
                for user in chunk:
                    results[user] = recommender.recommend(user, n=limit)
                stats.fallback_users += len(chunk)
        stats.shard_seconds.append(time.perf_counter() - chunk_start)


def _run_parallel(
    recommender: PrivateSocialRecommender,
    results: BatchResult,
    target_users: Sequence[UserId],
    limit: int,
    sim_matrix: SimilarityMatrix,
    indicator: sp.csr_matrix,
    release_t: np.ndarray,
    artifact_path: Optional[str],
    workers: int,
    shard_size: Optional[int],
) -> None:
    """The pooled path: contiguous user shards scored across processes."""
    stats = results.stats
    stats.mode = "parallel"
    if shard_size is None:
        shard_size = max(1, math.ceil(len(target_users) / (workers * 4)))

    ephemeral: Optional[tempfile.TemporaryDirectory] = None
    try:
        if artifact_path is None or not os.path.exists(artifact_path):
            # No persistent store: spill the kernel to a temp artifact so
            # workers can still map it instead of pickling the matrix.
            ephemeral = tempfile.TemporaryDirectory(prefix="repro-kernel-")
            artifact_path = os.path.join(ephemeral.name, "kernel.npz")
            save_kernel_artifact(
                artifact_path, sim_matrix, "ephemeral", recommender.measure
            )

        shards = [
            list(target_users[start : start + shard_size])
            for start in range(0, len(target_users), shard_size)
        ]
        positions_per_shard = [
            [sim_matrix.index.get(user, -1) for user in shard] for shard in shards
        ]
        indicator_parts = (
            indicator.data,
            indicator.indices,
            indicator.indptr,
            indicator.shape,
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _score_shard_worker,
                    artifact_path,
                    positions,
                    indicator_parts,
                    release_t,
                )
                for positions in positions_per_shard
            ]
            for shard, positions, future in zip(shards, positions_per_shard, futures):
                shard_start = time.perf_counter()
                stats.num_shards += 1
                with span("batch.shard"):
                    try:
                        fault_point("batch.shard")
                        estimates, zero_rows = future.result()
                    except Exception:
                        # Worker died or was told to fail: rescore this
                        # shard with the in-parent kernel (same math, same
                        # result), then per-user if even that fails.
                        stats.fallback_shards += 1
                        stats.record_transition("pool->parent")
                        try:
                            estimates, zero_rows = _score_positions(
                                sim_matrix.matrix,
                                indicator,
                                release_t,
                                positions,
                            )
                        except Exception:
                            stats.record_transition("parent->per-user")
                            for user in shard:
                                results[user] = recommender.recommend(
                                    user, n=limit
                                )
                            stats.fallback_users += len(shard)
                            stats.shard_seconds.append(
                                time.perf_counter() - shard_start
                            )
                            continue
                    _merge_block(
                        recommender, results, shard, estimates, zero_rows, limit
                    )
                stats.shard_seconds.append(time.perf_counter() - shard_start)
    finally:
        if ephemeral is not None:
            ephemeral.cleanup()
