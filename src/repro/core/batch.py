"""Vectorised batch recommendation for the private framework.

``PrivateSocialRecommender.recommend`` computes one user's similarity row
in Python per call; for producing recommendations for *every* user (the
paper's deployment: "outputs, for each target user, a personalized
recommendation list"), this module replaces the per-user loop with sparse
matrix algebra:

    estimates  =  (S @ C) @ W_hat^T

where ``S`` is the all-pairs similarity matrix
(:mod:`repro.similarity.matrix`), ``C`` the 0/1 user-to-cluster indicator
matrix, and ``W_hat`` the released noisy averages.  The result is
identical to the sequential path — the tests assert bit-equal rankings —
but runs at BLAS speed, chunked to bound memory.

Measures without a vectorised kernel (or with non-default cutoffs the
kernels do not cover) fall back to the per-user path transparently.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np
import scipy.sparse as sp

from repro.core.private import PrivateSocialRecommender
from repro.exceptions import ReproError
from repro.resilience.faults import fault_point
from repro.similarity.base import SimilarityMeasure
from repro.similarity.graph_distance import GraphDistance
from repro.similarity.katz import Katz
from repro.similarity.matrix import (
    SimilarityMatrix,
    adamic_adar_matrix,
    common_neighbors_matrix,
    graph_distance_matrix,
    katz_matrix,
    resource_allocation_matrix,
)
from repro.types import RecommendationList, UserId

__all__ = ["batch_recommend_all", "supports_vectorised_measure"]


def _similarity_matrix_for(graph, measure: SimilarityMeasure) -> Optional[SimilarityMatrix]:
    """The vectorised kernel for ``measure``, or None when unsupported."""
    name = measure.name
    if name == "cn":
        return common_neighbors_matrix(graph)
    if name == "aa":
        return adamic_adar_matrix(graph)
    if name == "ra":
        return resource_allocation_matrix(graph)
    if name == "gd" and isinstance(measure, GraphDistance):
        if measure.max_distance == 2:
            return graph_distance_matrix(graph)
        return None
    if name == "kz" and isinstance(measure, Katz):
        if measure.max_length <= 3:
            return katz_matrix(graph, measure.max_length, measure.alpha)
        return None
    return None


def supports_vectorised_measure(measure: SimilarityMeasure) -> bool:
    """Whether ``measure`` has a batch kernel (with its current settings)."""
    if measure.name in ("cn", "aa", "ra"):
        return True
    if measure.name == "gd" and isinstance(measure, GraphDistance):
        return measure.max_distance == 2
    if measure.name == "kz" and isinstance(measure, Katz):
        return measure.max_length <= 3
    return False


def batch_recommend_all(
    recommender: PrivateSocialRecommender,
    users: Optional[Iterable[UserId]] = None,
    n: Optional[int] = None,
    chunk_size: int = 512,
) -> Dict[UserId, RecommendationList]:
    """Top-N recommendations for many users at once.

    Args:
        recommender: a *fitted* private recommender.
        users: target users (default: every social-graph user).
        n: list length (default: the recommender's ``n``).
        chunk_size: users per dense chunk; bounds peak memory at roughly
            ``chunk_size * num_items`` floats.

    Returns:
        user -> :class:`RecommendationList`, identical to calling
        ``recommender.recommend`` per user.

    Raises:
        NotFittedError: when the recommender has not been fitted.
        ReproError: if the recommender has no released weights.
        ValueError: for invalid ``n`` or ``chunk_size``.
    """
    state = recommender.state
    weights = recommender.noisy_weights_
    clustering = recommender.clustering_
    if weights is None or clustering is None:
        raise ReproError("recommender has no released weights; fit it first")
    limit = recommender.n if n is None else n
    if limit < 1:
        raise ValueError(f"n must be >= 1, got {limit}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")

    target_users = list(users) if users is not None else state.social.users()
    try:
        fault_point("batch.kernel")
        sim_matrix = _similarity_matrix_for(state.social, recommender.measure)
    except Exception:
        # A failing kernel degrades the whole batch to the (slower but
        # independent) per-user path rather than killing the run.
        sim_matrix = None
    if sim_matrix is None:
        # No vectorised kernel: fall back to the per-user path.
        return {u: recommender.recommend(u, n=limit) for u in target_users}

    # Cluster indicator: graph-user row -> cluster column.
    num_graph_users = len(sim_matrix.users)
    rows, cols = [], []
    for position, user in enumerate(sim_matrix.users):
        if user in clustering:
            rows.append(position)
            cols.append(clustering.cluster_of(user))
    indicator = sp.csr_matrix(
        (np.ones(len(rows)), (rows, cols)),
        shape=(num_graph_users, clustering.num_clusters),
    )
    cluster_sims = sim_matrix.matrix @ indicator  # (users x clusters)
    release_t = weights.matrix.T  # (clusters x items)

    results: Dict[UserId, RecommendationList] = {}
    for start in range(0, len(target_users), chunk_size):
        chunk = target_users[start : start + chunk_size]
        try:
            fault_point("batch.chunk")
            chunk_rows = []
            for user in chunk:
                position = sim_matrix.index.get(user)
                if position is None:
                    chunk_rows.append(None)
                else:
                    chunk_rows.append(position)
            present = [p for p in chunk_rows if p is not None]
            dense = np.zeros((len(chunk), clustering.num_clusters))
            if present:
                sub = cluster_sims[present, :]
                dense_present = np.asarray(sub.todense())
                cursor = 0
                for i, p in enumerate(chunk_rows):
                    if p is not None:
                        dense[i, :] = dense_present[cursor, :]
                        cursor += 1
            estimates = dense @ release_t  # (chunk x items)
            for i, user in enumerate(chunk):
                if not dense[i, :].any():
                    # No similarity signal: route through the per-user
                    # path so the degradation ladder (and its reported
                    # tier) matches recommender.recommend exactly.
                    results[user] = recommender.recommend(user, n=limit)
                else:
                    results[user] = recommender._recommend_from_vector(
                        user, weights.items, estimates[i, :], limit
                    )
        except Exception:
            # A chunk that fails mid-kernel (bad BLAS call, injected
            # fault, memory pressure) degrades to the per-user path for
            # just that chunk; the rest of the batch stays vectorised.
            for user in chunk:
                results[user] = recommender.recommend(user, n=limit)
    return results
