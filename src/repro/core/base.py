"""Shared recommender interface.

Every recommender follows the scikit-learn-style two-phase protocol:

1. ``fit(social_graph, preference_graph)`` — snapshot the inputs, build
   similarity caches and (for private recommenders) run the mechanism's
   data-dependent preprocessing.
2. ``utilities(user)`` / ``recommend(user)`` / ``recommend_all(users)`` —
   read-only queries against the fitted state.

The split mirrors the paper's static-snapshot assumption (Section 2.3):
recommendations for all users are generated from a single snapshot of the
graphs, and a fitted recommender never observes later mutations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import ReproError
from repro.graph.preference_graph import PreferenceGraph
from repro.graph.protocol import GraphLike
from repro.metrics.ranking import rank_items
from repro.similarity.base import SimilarityCache, SimilarityMeasure
from repro.types import ItemId, RecommendationList, UserId, as_recommendation_list

__all__ = [
    "BaseRecommender",
    "FittedState",
    "NotFittedError",
    "top_n_from_vector",
]


def top_n_from_vector(
    user: UserId,
    items: Sequence[ItemId],
    estimates: np.ndarray,
    n: int,
    tier: str = "personalized",
) -> RecommendationList:
    """Deterministic top-N selection from a dense utility vector.

    Ties are broken by item position in ``items``, so any two consumers
    scoring from the same vector (per-user, batch, release server) agree
    exactly on the ranking.
    """
    limit = min(n, estimates.size)
    if limit == 0:
        return as_recommendation_list(user, [], tier=tier)
    if limit < estimates.size:
        candidates = np.argpartition(-estimates, limit - 1)[:limit]
    else:
        candidates = np.arange(estimates.size)
    order = candidates[np.lexsort((candidates, -estimates[candidates]))]
    return as_recommendation_list(
        user, [(items[i], float(estimates[i])) for i in order], tier=tier
    )


class NotFittedError(ReproError):
    """A query method was called before ``fit``."""

    def __init__(self, recommender: object) -> None:
        super().__init__(
            f"{type(recommender).__name__} must be fitted before querying; "
            f"call fit(social_graph, preference_graph) first"
        )


@dataclass
class FittedState:
    """Inputs snapshotted at fit time, shared by all recommenders.

    Attributes:
        social: the social graph snapshot.
        preferences: the preference graph snapshot.
        similarity: row cache for the configured measure on ``social``.
        items: the item universe, in a fixed order used for vectorisation.
        item_index: item -> position in ``items``.
    """

    social: GraphLike
    preferences: PreferenceGraph
    similarity: SimilarityCache
    items: list
    item_index: Dict[ItemId, int]


class BaseRecommender(abc.ABC):
    """Common machinery for top-N social recommenders.

    Args:
        measure: the social similarity measure to personalise with.
        n: default recommendation-list length.
        compute_backend: how the similarity cache materialises rows —
            ``"auto"`` (default: vectorised when the measure supports it,
            python on failure), ``"vectorized"`` (build the whole kernel
            on the :mod:`repro.compute` CSR path), or ``"python"``
            (bit-exact reference rows).  Pass
            ``compute_backend="python"`` to force the reference path —
            e.g. when auditing the one-ulp row differences the weighted
            measures can exhibit on the vectorised path (those could flip
            exact ties); every other consumer (batch, cache, experiments)
            resolves ``"auto"`` the same way, so the default is uniform
            across the framework.

    Raises:
        ValueError: if ``n`` < 1 or the backend name is unknown.
    """

    def __init__(
        self,
        measure: SimilarityMeasure,
        n: int = 10,
        compute_backend: str = "auto",
    ) -> None:
        from repro.compute.stats import validate_backend

        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.measure = measure
        self.n = n
        self.compute_backend = validate_backend(compute_backend)
        self._state: Optional[FittedState] = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(
        self, social: GraphLike, preferences: PreferenceGraph
    ) -> "BaseRecommender":
        """Snapshot the input graphs and run model-specific preparation.

        Users present in the preference graph but absent from the social
        graph are allowed (they simply have empty similarity sets); the
        reverse is also allowed (social users with no recorded preferences).

        Returns self, for call chaining.
        """
        items = preferences.items()
        self._state = FittedState(
            social=social,
            preferences=preferences,
            similarity=SimilarityCache(
                self.measure, social, backend=self.compute_backend
            ),
            items=items,
            item_index={item: i for i, item in enumerate(items)},
        )
        self._prepare(self._state)
        return self

    def _prepare(self, state: FittedState) -> None:
        """Hook for model-specific work at fit time (default: nothing)."""

    @property
    def state(self) -> FittedState:
        """The fitted state.

        Raises:
            NotFittedError: when ``fit`` has not run yet.
        """
        if self._state is None:
            raise NotFittedError(self)
        return self._state

    @property
    def is_fitted(self) -> bool:
        return self._state is not None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def utilities(self, user: UserId) -> Dict[ItemId, float]:
        """The (possibly noisy) utility of every item for ``user``.

        Raises:
            NotFittedError: when ``fit`` has not run yet.
            NodeNotFoundError: when ``user`` is not in the social graph.
        """

    def recommend(self, user: UserId, n: Optional[int] = None) -> RecommendationList:
        """The top-N recommendation list for ``user``.

        Args:
            user: the target user.
            n: overrides the default list length for this call.
        """
        limit = self.n if n is None else n
        if limit < 1:
            raise ValueError(f"n must be >= 1, got {limit}")
        scores = self.utilities(user)
        ranked = rank_items(scores, n=limit)
        return as_recommendation_list(user, [(i, scores[i]) for i in ranked])

    def _recommend_from_vector(
        self,
        user: UserId,
        items: Sequence[ItemId],
        estimates: np.ndarray,
        n: int,
        tier: str = "personalized",
    ) -> RecommendationList:
        """Top-N selection from a dense utility vector (vectorised path).

        Ties are broken by item position in ``items``, which is fixed at
        fit time, so the selection is deterministic.  Subclasses whose
        utilities are naturally dense vectors override :meth:`recommend`
        through this helper to avoid building a full item->score dict.
        """
        return top_n_from_vector(user, items, estimates, n, tier=tier)

    def recommend_all(
        self, users: Optional[Iterable[UserId]] = None, n: Optional[int] = None
    ) -> Dict[UserId, RecommendationList]:
        """Recommendation lists for ``users`` (default: all social users)."""
        if users is None:
            users = self.state.social.users()
        return {user: self.recommend(user, n=n) for user in users}

    def __repr__(self) -> str:
        fitted = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(measure={self.measure!r}, n={self.n}, {fitted})"
