"""The non-private top-N social recommender (paper Definitions 3 and 4).

For each target user ``u`` the utility of item ``i`` is

    mu_u^i = sum_{v in sim(u)} sim(u, v) * w(v, i)

computed exactly, with full access to the private preference edges.  This
is the reference model ``A``: the private recommenders approximate it, and
NDCG scores every private ranking against the utilities computed here.
"""

from __future__ import annotations

from typing import Dict

from repro.core.base import BaseRecommender
from repro.types import ItemId, UserId

__all__ = ["SocialRecommender"]


class SocialRecommender(BaseRecommender):
    """Exact (non-private) personalised social recommender.

    Example:
        >>> from repro.similarity import CommonNeighbors
        >>> from repro.graph import SocialGraph, PreferenceGraph
        >>> social = SocialGraph([(1, 2), (2, 3), (1, 3)])
        >>> prefs = PreferenceGraph([(1, "a"), (3, "a"), (3, "b")])
        >>> rec = SocialRecommender(CommonNeighbors(), n=2)
        >>> rec.fit(social, prefs).recommend(2).item_ids()
        ['a', 'b']
    """

    def utilities(self, user: UserId) -> Dict[ItemId, float]:
        """Exact utilities of all items with non-zero score for ``user``.

        Items no similar user prefers are omitted — their utility is zero
        by Definition 3, and including the full (huge, sparse) item universe
        would only slow ranking down.  Ranking treats missing items as
        zero-utility, matching the paper.
        """
        state = self.state
        scores: Dict[ItemId, float] = {}
        for v, sim_score in state.similarity.row(user).items():
            if not state.preferences.has_user(v):
                continue
            for item, weight in state.preferences.items_of(v).items():
                scores[item] = scores.get(item, 0.0) + sim_score * weight
        return scores
