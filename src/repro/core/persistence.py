"""Persisting and serving the framework's sanitised release.

Differential privacy's post-processing guarantee means the noisy
per-cluster averages — together with the (public) clustering — are a
*publishable artifact*: once released at privacy cost epsilon, anyone can
serve recommendations from them forever, against any snapshot of the
public social graph, without touching the private preference data again.

- :class:`PublishedRelease` — the artifact: noisy weight matrix, item
  order, cluster assignment, and provenance (epsilon, measure name,
  weight cap).  Saves to / loads from a single ``.npz`` file.
- :class:`ReleaseServer` — serves top-N recommendations from a loaded
  artifact plus the public social graph.  No preference graph needed.

Identifiers must be JSON-representable (int or str) to persist; the
synthetic datasets and the HetRec loaders use ints throughout.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.community.clustering import Clustering
from repro.core.cluster_weights import NoisyClusterWeights
from repro.core.private import PrivateSocialRecommender
from repro.exceptions import DatasetError, PrivacyError
from repro.graph.social_graph import SocialGraph
from repro.metrics.ranking import rank_items
from repro.similarity.base import SimilarityCache, SimilarityMeasure, get_measure
from repro.types import ItemId, RecommendationList, UserId, as_recommendation_list

__all__ = ["PublishedRelease", "ReleaseServer"]

_FORMAT_VERSION = 1


def _check_json_ids(values, kind: str) -> None:
    for value in values:
        if not isinstance(value, (int, str)):
            raise DatasetError(
                f"{kind} identifier {value!r} is not persistable; "
                f"only int and str identifiers can be saved"
            )


@dataclass(frozen=True)
class PublishedRelease:
    """The sanitised, publishable output of one framework run.

    Attributes:
        weights: the noisy cluster-average matrix with its item order and
            clustering.
        measure_name: registry name of the similarity measure the release
            was intended for (serving with another public measure is
            privacy-safe but changes semantics).
        max_weight: the weight cap used by the mechanism.
    """

    weights: NoisyClusterWeights
    measure_name: str
    max_weight: float

    @classmethod
    def from_recommender(
        cls, recommender: PrivateSocialRecommender
    ) -> "PublishedRelease":
        """Extract the publishable artifact from a fitted recommender.

        Raises:
            PrivacyError: if the recommender has not been fitted (there is
                nothing released yet).
        """
        if recommender.noisy_weights_ is None:
            raise PrivacyError(
                "recommender must be fitted before extracting a release"
            )
        return cls(
            weights=recommender.noisy_weights_,
            measure_name=recommender.measure.name,
            max_weight=recommender.max_weight,
        )

    @property
    def epsilon(self) -> float:
        """The privacy cost the release satisfied."""
        return self.weights.epsilon

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write the artifact to ``path`` (numpy ``.npz`` container).

        Raises:
            DatasetError: for identifiers that cannot be represented in
                JSON metadata.
        """
        clustering = self.weights.clustering
        _check_json_ids(self.weights.items, "item")
        _check_json_ids(clustering.users(), "user")
        metadata = {
            "version": _FORMAT_VERSION,
            "epsilon": None if np.isinf(self.epsilon) else self.epsilon,
            "measure": self.measure_name,
            "max_weight": self.max_weight,
            "items": list(self.weights.items),
            # JSON keys must be strings; keep the original type tag so
            # integer user ids round-trip exactly.
            "assignment": [
                [user, cluster]
                for user, cluster in clustering.assignment().items()
            ],
        }
        np.savez_compressed(
            path,
            matrix=self.weights.matrix,
            metadata=np.frombuffer(
                json.dumps(metadata).encode("utf-8"), dtype=np.uint8
            ),
        )

    @classmethod
    def load(cls, path: str) -> "PublishedRelease":
        """Read an artifact previously written by :meth:`save`.

        Raises:
            DatasetError: for unreadable or wrong-version files.
        """
        try:
            archive = np.load(path)
            matrix = archive["matrix"]
            metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        except (OSError, KeyError, ValueError) as exc:
            raise DatasetError(f"cannot load release from {path!r}: {exc}") from exc
        if metadata.get("version") != _FORMAT_VERSION:
            raise DatasetError(
                f"release file {path!r} has unsupported version "
                f"{metadata.get('version')!r}"
            )
        items: List[ItemId] = [
            item if isinstance(item, (int, str)) else str(item)
            for item in metadata["items"]
        ]
        assignment: Dict[UserId, int] = {
            user: int(cluster) for user, cluster in metadata["assignment"]
        }
        clustering = Clustering.from_assignment(assignment)
        epsilon = metadata["epsilon"]
        weights = NoisyClusterWeights(
            matrix=matrix,
            items=items,
            item_index={item: i for i, item in enumerate(items)},
            clustering=clustering,
            epsilon=float("inf") if epsilon is None else float(epsilon),
        )
        return cls(
            weights=weights,
            measure_name=metadata["measure"],
            max_weight=float(metadata["max_weight"]),
        )

    def server(
        self, social: SocialGraph, measure: Optional[SimilarityMeasure] = None
    ) -> "ReleaseServer":
        """Build a :class:`ReleaseServer` over the public social graph."""
        if measure is None:
            measure = get_measure(self.measure_name)
        return ReleaseServer(self, social, measure)


class ReleaseServer:
    """Serves recommendations from a published release and public data.

    The server holds no private preference data at all: everything it
    reads is the sanitised matrix and the public social graph, so queries
    are free post-processing.
    """

    def __init__(
        self,
        release: PublishedRelease,
        social: SocialGraph,
        measure: SimilarityMeasure,
    ) -> None:
        self.release = release
        self.social = social
        self.measure = measure
        self._similarity = SimilarityCache(measure, social)

    def _cluster_similarity_vector(self, user: UserId) -> np.ndarray:
        clustering = self.release.weights.clustering
        vector = np.zeros(clustering.num_clusters)
        for v, score in self._similarity.row(user).items():
            if v in clustering:
                vector[clustering.cluster_of(v)] += score
        return vector

    def utilities(self, user: UserId) -> Dict[ItemId, float]:
        """Estimated utilities of every released item for ``user``."""
        weights = self.release.weights
        estimates = weights.matrix @ self._cluster_similarity_vector(user)
        return {item: float(estimates[i]) for i, item in enumerate(weights.items)}

    def recommend(self, user: UserId, n: int = 10) -> RecommendationList:
        """Top-N recommendations for ``user`` from the release.

        Raises:
            ValueError: if ``n`` < 1.
            NodeNotFoundError: if the user is not in the social graph.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        scores = self.utilities(user)
        ranked = rank_items(scores, n=n)
        return as_recommendation_list(user, [(i, scores[i]) for i in ranked])
