"""Persisting and serving the framework's sanitised release.

Differential privacy's post-processing guarantee means the noisy
per-cluster averages — together with the (public) clustering — are a
*publishable artifact*: once released at privacy cost epsilon, anyone can
serve recommendations from them forever, against any snapshot of the
public social graph, without touching the private preference data again.

- :class:`PublishedRelease` — the artifact: noisy weight matrix, item
  order, cluster assignment, and provenance (epsilon, measure name,
  weight cap).  Saves to / loads from a single ``.npz`` file.
- :class:`ReleaseServer` — serves top-N recommendations from a loaded
  artifact plus the public social graph.  No preference graph needed.

Identifiers must be JSON-representable (int or str) to persist; the
synthetic datasets and the HetRec loaders use ints throughout.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.community.clustering import Clustering
from repro.core.base import top_n_from_vector
from repro.core.cluster_weights import NoisyClusterWeights
from repro.core.private import PrivateSocialRecommender
from repro.exceptions import (
    DatasetError,
    NodeNotFoundError,
    PrivacyError,
    ReleaseIntegrityError,
)
from repro.graph.social_graph import SocialGraph
from repro.obs.registry import incr as obs_incr
from repro.resilience.degradation import (
    DEGRADATION_LADDER,
    TIER_PERSONALIZED,
    degradation_estimates,
)
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy
from repro.similarity.base import SimilarityCache, SimilarityMeasure, get_measure
from repro.types import ItemId, RecommendationList, UserId, as_recommendation_list

__all__ = ["PublishedRelease", "ReleaseServer", "ReleaseProvenance", "inspect_release"]

# Format 2 embeds a SHA-256 checksum over the matrix bytes and the
# metadata payload; format 1 (pre-integrity) files are still readable.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _payload_digest(matrix: np.ndarray, payload: bytes) -> str:
    """SHA-256 over the matrix bytes and the serialised metadata."""
    canonical = np.ascontiguousarray(matrix, dtype=np.float64)
    digest = hashlib.sha256()
    digest.update(canonical.tobytes())
    digest.update(b"\x00")
    digest.update(payload)
    return digest.hexdigest()


def _read_release_arrays(path: str) -> Tuple[np.ndarray, bytes, Optional[str]]:
    """Read the raw (matrix, metadata payload, checksum) triple.

    Raises:
        OSError: for IO-level failures (missing file, transient EIO) —
            left unwrapped so a :class:`RetryPolicy` can treat them as
            transient.
        ReleaseIntegrityError: for anything that reads but does not parse
            as a release container (truncated zip, bad entries, ...).
    """
    fault_point("release.load", path=path)
    try:
        with np.load(path) as archive:
            matrix = np.asarray(archive["matrix"])
            payload = bytes(archive["metadata"])
            checksum = (
                bytes(archive["checksum"]).decode("ascii")
                if "checksum" in archive.files
                else None
            )
    except OSError:
        raise
    except Exception as exc:  # BadZipFile, zlib.error, KeyError, ValueError...
        raise ReleaseIntegrityError(
            f"release file {path!r} is corrupt or not a release archive: {exc}"
        ) from exc
    return matrix, payload, checksum


def _mmap_matrix(matrix: np.ndarray, digest: str, mmap_dir: str) -> np.ndarray:
    """Return a read-only memory map of ``matrix`` cached under ``mmap_dir``.

    The cache file is named by the release's content digest, so it can
    never be stale: a different release maps to a different file.  The
    first load materialises ``<digest>.npy`` atomically (tmp + fsync +
    ``os.replace``); later loads — and other processes serving the same
    release — share the page cache instead of each holding a private
    copy of the matrix.  A cache file that fails to parse or does not
    match the verified in-memory matrix's shape/dtype is rewritten.
    """
    os.makedirs(mmap_dir, exist_ok=True)
    cache_path = os.path.join(mmap_dir, f"{digest}.npy")
    canonical = np.ascontiguousarray(matrix, dtype=np.float64)
    mapped: Optional[np.ndarray] = None
    if os.path.exists(cache_path):
        try:
            mapped = np.load(cache_path, mmap_mode="r")
        except (OSError, ValueError):
            mapped = None
        if mapped is not None and (
            mapped.shape != canonical.shape or mapped.dtype != canonical.dtype
        ):
            mapped = None
    if mapped is None:
        tmp_path = f"{cache_path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "wb") as handle:
                np.save(handle, canonical)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, cache_path)
        finally:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
        mapped = np.load(cache_path, mmap_mode="r")
    return mapped


def _check_json_ids(values, kind: str) -> None:
    for value in values:
        if not isinstance(value, (int, str)):
            raise DatasetError(
                f"{kind} identifier {value!r} is not persistable; "
                f"only int and str identifiers can be saved"
            )


@dataclass(frozen=True)
class PublishedRelease:
    """The sanitised, publishable output of one framework run.

    Attributes:
        weights: the noisy cluster-average matrix with its item order and
            clustering.
        measure_name: registry name of the similarity measure the release
            was intended for (serving with another public measure is
            privacy-safe but changes semantics).
        max_weight: the weight cap used by the mechanism.
    """

    weights: NoisyClusterWeights
    measure_name: str
    max_weight: float

    @classmethod
    def from_recommender(
        cls, recommender: PrivateSocialRecommender
    ) -> "PublishedRelease":
        """Extract the publishable artifact from a fitted recommender.

        Raises:
            PrivacyError: if the recommender has not been fitted (there is
                nothing released yet).
        """
        if recommender.noisy_weights_ is None:
            raise PrivacyError(
                "recommender must be fitted before extracting a release"
            )
        return cls(
            weights=recommender.noisy_weights_,
            measure_name=recommender.measure.name,
            max_weight=recommender.max_weight,
        )

    @property
    def epsilon(self) -> float:
        """The privacy cost the release satisfied."""
        return self.weights.epsilon

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _metadata(self) -> dict:
        clustering = self.weights.clustering
        return {
            "version": _FORMAT_VERSION,
            "epsilon": None if np.isinf(self.epsilon) else self.epsilon,
            "measure": self.measure_name,
            "max_weight": self.max_weight,
            "items": list(self.weights.items),
            # JSON keys must be strings; keep the original type tag so
            # integer user ids round-trip exactly.
            "assignment": [
                [user, cluster]
                for user, cluster in clustering.assignment().items()
            ],
        }

    def save(self, path: str) -> None:
        """Write the artifact to ``path`` atomically.

        The archive is written to a sibling temporary file, flushed and
        fsynced, and only then moved over ``path`` with ``os.replace`` —
        so a crash at any point leaves either the previous artifact or no
        file at all, never a torn one.  The archive embeds a SHA-256
        checksum over the matrix bytes and the metadata payload, verified
        on load.

        Raises:
            DatasetError: for identifiers that cannot be represented in
                JSON metadata.
            OSError: for IO failures while writing.
        """
        clustering = self.weights.clustering
        _check_json_ids(self.weights.items, "item")
        _check_json_ids(clustering.users(), "user")
        payload = json.dumps(self._metadata()).encode("utf-8")
        matrix = np.ascontiguousarray(self.weights.matrix, dtype=np.float64)
        checksum = _payload_digest(matrix, payload)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "wb") as handle:
                np.savez_compressed(
                    handle,
                    matrix=matrix,
                    metadata=np.frombuffer(payload, dtype=np.uint8),
                    checksum=np.frombuffer(checksum.encode("ascii"), dtype=np.uint8),
                )
                handle.flush()
                os.fsync(handle.fileno())
            fault_point("release.save.pre-replace", path=tmp_path)
            os.replace(tmp_path, path)
        finally:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
        directory = os.path.dirname(os.path.abspath(path))
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds; rename is still atomic
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    @classmethod
    def load(
        cls,
        path: str,
        retry: Optional[RetryPolicy] = None,
        mmap_dir: Optional[str] = None,
    ) -> "PublishedRelease":
        """Read and verify an artifact previously written by :meth:`save`.

        Args:
            path: the ``.npz`` artifact.
            retry: optional policy applied to the IO read; transient
                ``OSError`` failures are retried, integrity failures are
                permanent and never retried.
            mmap_dir: when given, the (checksum-verified) weight matrix
                is served as a read-only memory map backed by a
                content-addressed ``<digest>.npy`` cache under this
                directory, instead of a private in-RAM copy — the long
                -lived serving tier's mode, where several generations
                and processes may hold releases concurrently.

        Raises:
            ReleaseIntegrityError: for corrupt or truncated archives,
                checksum mismatches, and unsupported format versions.
            DatasetError: for unreadable files (missing, permission).
            RetryExhaustedError: when ``retry`` was given and every
                attempt failed with a transient error.
        """
        try:
            if retry is not None:
                matrix, payload, checksum = retry.call(_read_release_arrays, path)
            else:
                matrix, payload, checksum = _read_release_arrays(path)
        except OSError as exc:
            raise DatasetError(f"cannot load release from {path!r}: {exc}") from exc
        if checksum is not None:
            expected = _payload_digest(matrix, payload)
            if checksum != expected:
                raise ReleaseIntegrityError(
                    f"release file {path!r} failed its checksum "
                    f"(stored {checksum[:12]}..., computed {expected[:12]}...); "
                    f"the artifact is corrupt"
                )
        try:
            metadata = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReleaseIntegrityError(
                f"release file {path!r} carries unparseable metadata: {exc}"
            ) from exc
        version = metadata.get("version")
        if version not in _SUPPORTED_VERSIONS:
            raise ReleaseIntegrityError(
                f"release file {path!r} has unsupported version {version!r}; "
                f"this library reads versions {_SUPPORTED_VERSIONS}"
            )
        if version >= 2 and checksum is None:
            raise ReleaseIntegrityError(
                f"release file {path!r} claims format v{version} but has no "
                f"embedded checksum; the artifact is incomplete"
            )
        try:
            items: List[ItemId] = [
                item if isinstance(item, (int, str)) else str(item)
                for item in metadata["items"]
            ]
            assignment: Dict[UserId, int] = {
                user: int(cluster) for user, cluster in metadata["assignment"]
            }
            epsilon = metadata["epsilon"]
            measure_name = metadata["measure"]
            max_weight = float(metadata["max_weight"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ReleaseIntegrityError(
                f"release file {path!r} has incomplete metadata: {exc!r}"
            ) from exc
        if mmap_dir is not None:
            digest = checksum or _payload_digest(matrix, payload)
            matrix = _mmap_matrix(matrix, digest, mmap_dir)
        clustering = Clustering.from_assignment(assignment)
        weights = NoisyClusterWeights(
            matrix=matrix,
            items=items,
            item_index={item: i for i, item in enumerate(items)},
            clustering=clustering,
            epsilon=float("inf") if epsilon is None else float(epsilon),
        )
        return cls(
            weights=weights,
            measure_name=measure_name,
            max_weight=max_weight,
        )

    def server(
        self, social: SocialGraph, measure: Optional[SimilarityMeasure] = None
    ) -> "ReleaseServer":
        """Build a :class:`ReleaseServer` over the public social graph."""
        if measure is None:
            measure = get_measure(self.measure_name)
        return ReleaseServer(self, social, measure)


class ReleaseServer:
    """Serves recommendations from a published release and public data.

    The server holds no private preference data at all: everything it
    reads is the sanitised matrix and the public social graph, so queries
    are free post-processing.
    """

    def __init__(
        self,
        release: PublishedRelease,
        social: SocialGraph,
        measure: SimilarityMeasure,
    ) -> None:
        self.release = release
        self.social = social
        self.measure = measure
        self._similarity = SimilarityCache(measure, social)

    def warm(self, store=None) -> None:
        """Precompute the similarity kernel off the request path.

        With a :class:`~repro.cache.store.SimilarityStore` the kernel is
        built (or mmap'd straight back) through the persistent
        content-addressed cache, so a freshly swapped-in release costs
        one artifact read, not a kernel build.  Without one, the
        in-memory cache precomputes.  Measures with no vectorised
        kernel fall back to per-row precomputation either way.
        """
        if store is not None:
            from repro.core.batch import (
                compute_similarity_kernel,
                supports_vectorised_measure,
            )

            if supports_vectorised_measure(self.measure):
                lookup = store.warm(
                    self.social,
                    self.measure,
                    lambda: compute_similarity_kernel(self.social, self.measure),
                )
                self._similarity.adopt_kernel(lookup.matrix)
                return
        self._similarity.precompute()

    def _cluster_similarity_vector(self, user: UserId) -> np.ndarray:
        clustering = self.release.weights.clustering
        vector = np.zeros(clustering.num_clusters)
        for v, score in self._similarity.row(user).items():
            if v in clustering:
                vector[clustering.cluster_of(v)] += score
        return vector

    def utilities(self, user: UserId) -> Dict[ItemId, float]:
        """Estimated utilities of every released item for ``user``."""
        weights = self.release.weights
        estimates = weights.matrix @ self._cluster_similarity_vector(user)
        return {item: float(estimates[i]) for i, item in enumerate(weights.items)}

    def recommend(
        self, user: UserId, n: int = 10, max_tier: str = TIER_PERSONALIZED
    ) -> RecommendationList:
        """Top-N recommendations for ``user`` from the release.

        Never raises for an unservable user: queries from users outside
        the social graph, isolated users, and users whose similarity
        reaches no release cluster are answered from the degradation
        ladder (cluster-popularity, then global noisy popularity — see
        :mod:`repro.resilience.degradation`), with the served tier
        reported on the result's ``tier`` attribute.  Every tier is
        post-processing of the published matrix: no additional epsilon
        is ever spent.

        Args:
            user: the target user.
            n: list length.
            max_tier: best ladder rung to serve from.  The serving
                tier's admission control passes a lower rung under
                overload — skipping the similarity computation entirely
                — which trades personalization for latency at zero
                additional privacy cost.

        Raises:
            ValueError: if ``n`` < 1 or ``max_tier`` is not a ladder rung.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if max_tier not in DEGRADATION_LADDER:
            raise ValueError(
                f"max_tier must be one of {DEGRADATION_LADDER}, got {max_tier!r}"
            )
        weights = self.release.weights
        if max_tier == TIER_PERSONALIZED:
            try:
                sim_vector = self._cluster_similarity_vector(user)
            except NodeNotFoundError:
                sim_vector = None
            if sim_vector is not None and sim_vector.any():
                obs_incr(f"serve.tier.{TIER_PERSONALIZED}")
                estimates = weights.matrix @ sim_vector
                return top_n_from_vector(user, weights.items, estimates, n)
        estimates, tier = degradation_estimates(weights, user, max_tier=max_tier)
        if estimates is None:
            return as_recommendation_list(user, [], tier=tier)
        return top_n_from_vector(user, weights.items, estimates, n, tier=tier)


@dataclass(frozen=True)
class ReleaseProvenance:
    """What ``repro check-release`` reports about an artifact on disk.

    Attributes:
        path: the artifact location.
        version: embedded format version.
        checksum: hex SHA-256 the file carries (None for v1 artifacts).
        checksum_verified: whether the recomputed digest matched.
        epsilon: the privacy cost recorded at release time.
        measure: similarity-measure registry name.
        measure_registered: whether that measure resolves in this build.
        max_weight: the mechanism's weight cap.
        num_items / num_users / num_clusters: artifact dimensions.
    """

    path: str
    version: int
    checksum: Optional[str]
    checksum_verified: bool
    epsilon: float
    measure: str
    measure_registered: bool
    max_weight: float
    num_items: int
    num_users: int
    num_clusters: int


def inspect_release(
    path: str, retry: Optional[RetryPolicy] = None
) -> ReleaseProvenance:
    """Verify an artifact end to end and report its provenance.

    Runs the full :meth:`PublishedRelease.load` pipeline — container
    parse, checksum verification, version and metadata checks — and
    additionally records whether the release's similarity measure is
    registered in this build.

    Raises:
        ReleaseIntegrityError / DatasetError: as :meth:`PublishedRelease.load`.
    """
    try:
        if retry is not None:
            _, payload, checksum = retry.call(_read_release_arrays, path)
        else:
            _, payload, checksum = _read_release_arrays(path)
    except OSError as exc:
        raise DatasetError(f"cannot load release from {path!r}: {exc}") from exc
    release = PublishedRelease.load(path, retry=retry)
    metadata = json.loads(payload.decode("utf-8"))
    try:
        get_measure(release.measure_name)
        registered = True
    except Exception:
        registered = False
    clustering = release.weights.clustering
    return ReleaseProvenance(
        path=path,
        version=int(metadata.get("version", 0)),
        checksum=checksum,
        checksum_verified=checksum is not None,
        epsilon=release.epsilon,
        measure=release.measure_name,
        measure_registered=registered,
        max_weight=release.max_weight,
        num_items=len(release.weights.items),
        num_users=clustering.num_users,
        num_clusters=clustering.num_clusters,
    )
