"""The strawman baselines of Section 5.1.1: NOU and NOE.

Both satisfy eps-differential privacy; both are shown by the paper (and by
our Figure 4 benchmark) to destroy recommendation accuracy, which is what
motivates the cluster-based framework.

**Noise on Utility (NOU)** applies the Laplace mechanism directly to the
utility values: ``mu_hat_u^i = mu_u^i + Lap(Delta_A / eps)`` where
``Delta_A = max_v sum_u sim(u, v)`` — the largest possible impact of one
preference edge across all users' queries for one item.  The sensitivity is
driven by the best-connected user in the graph, so the noise typically
exceeds every true utility value.

**Noise on Edges (NOE)** sanitises the preference graph itself:
``w_hat(v, i) = w(v, i) + Lap(1/eps)`` for *every* (user, item) cell —
absent edges are zero-weight and must be perturbed too, or the noise
pattern would reveal which edges exist.  The exact recommender then runs on
the sanitised weights; post-processing keeps the release eps-DP.

Both implementations derive their noise deterministically from
``(seed, user)`` so that repeated queries return the same sanitised values
— the mechanism conceptually publishes one sanitised dataset, and repeated
reads of published data are free.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.core.base import BaseRecommender, FittedState
from repro.privacy.mechanisms import validate_epsilon
from repro.privacy.sensitivity import utility_query_sensitivity
from repro.similarity.base import SimilarityMeasure
from repro.types import ItemId, UserId

__all__ = ["NoiseOnUtility", "NoiseOnEdges"]


def _user_rng(seed: int, user_position: int) -> np.random.Generator:
    """A generator bound to one user so noise is stable across queries."""
    return np.random.default_rng(np.random.SeedSequence((seed, user_position)))


class NoiseOnUtility(BaseRecommender):
    """NOU: Laplace noise of scale ``Delta_A / eps`` on every utility value.

    Args:
        measure: social similarity measure.
        epsilon: privacy parameter (``math.inf`` disables noise).
        n: default list length.
        seed: noise seed.
    """

    def __init__(
        self,
        measure: SimilarityMeasure,
        epsilon: float,
        n: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__(measure, n=n)
        self.epsilon = validate_epsilon(epsilon)
        self.seed = seed
        self.sensitivity_: Optional[float] = None
        self._user_position: Dict[UserId, int] = {}

    def _prepare(self, state: FittedState) -> None:
        self.sensitivity_ = utility_query_sensitivity(
            state.social, self.measure, cache=state.similarity
        )
        self._user_position = {u: i for i, u in enumerate(state.social.users())}

    @property
    def noise_scale(self) -> float:
        """``Delta_A / eps`` (0.0 when eps = inf)."""
        if self.sensitivity_ is None:
            return 0.0
        if math.isinf(self.epsilon):
            return 0.0
        return self.sensitivity_ / self.epsilon

    def utilities(self, user: UserId) -> Dict[ItemId, float]:
        """Exact utilities plus per-item Laplace noise at NOU's scale.

        Every item in the universe receives noise — suppressing the
        zero-utility items would reveal which items the user's similarity
        set never touched.
        """
        state = self.state
        exact: Dict[ItemId, float] = {item: 0.0 for item in state.items}
        for v, sim_score in state.similarity.row(user).items():
            if not state.preferences.has_user(v):
                continue
            for item, weight in state.preferences.items_of(v).items():
                exact[item] += sim_score * weight
        scale = self.noise_scale
        if scale == 0.0:
            return exact
        position = self._user_position.get(user)
        rng = _user_rng(self.seed, position if position is not None else -1)
        noise = rng.laplace(0.0, scale, size=len(state.items))
        return {
            item: exact[item] + float(noise[i])
            for i, item in enumerate(state.items)
        }

    def _utility_vector(self, user: UserId) -> np.ndarray:
        """Dense noisy utility vector aligned with ``state.items``."""
        state = self.state
        exact = np.zeros(len(state.items))
        for v, sim_score in state.similarity.row(user).items():
            if not state.preferences.has_user(v):
                continue
            for item, weight in state.preferences.items_of(v).items():
                exact[state.item_index[item]] += sim_score * weight
        scale = self.noise_scale
        if scale > 0.0:
            position = self._user_position.get(user)
            rng = _user_rng(self.seed, position if position is not None else -1)
            exact = exact + rng.laplace(0.0, scale, size=exact.size)
        return exact

    def recommend(self, user: UserId, n: Optional[int] = None):
        """Top-N from the dense noisy vector (fast vectorised path)."""
        limit = self.n if n is None else n
        if limit < 1:
            raise ValueError(f"n must be >= 1, got {limit}")
        return self._recommend_from_vector(
            user, self.state.items, self._utility_vector(user), limit
        )


class NoiseOnEdges(BaseRecommender):
    """NOE: Laplace noise of scale ``1/eps`` on every preference-edge weight.

    The sanitised weight rows are generated lazily and deterministically per
    user (seeded by ``(seed, "edges", row)``), which keeps memory at one
    item-vector per similar user instead of the full |U| x |I| matrix while
    preserving the one-sanitised-dataset semantics.
    """

    def __init__(
        self,
        measure: SimilarityMeasure,
        epsilon: float,
        n: int = 10,
        seed: int = 0,
    ) -> None:
        super().__init__(measure, n=n)
        self.epsilon = validate_epsilon(epsilon)
        self.seed = seed
        self._user_position: Dict[UserId, int] = {}

    def _prepare(self, state: FittedState) -> None:
        users = list(state.social.users())
        for u in state.preferences.users():
            if u not in state.social:
                users.append(u)
        self._user_position = {u: i for i, u in enumerate(users)}

    @property
    def noise_scale(self) -> float:
        """``1 / eps`` — the per-edge sanitisation scale (0.0 when eps=inf)."""
        if math.isinf(self.epsilon):
            return 0.0
        return 1.0 / self.epsilon

    def _sanitised_row(self, owner: UserId) -> np.ndarray:
        """The noisy weight vector ``w_hat(owner, .)`` over all items."""
        state = self.state
        row = np.zeros(len(state.items))
        if state.preferences.has_user(owner):
            for item, weight in state.preferences.items_of(owner).items():
                row[state.item_index[item]] = weight
        scale = self.noise_scale
        if scale > 0.0:
            position = self._user_position.get(owner, -1)
            rng = np.random.default_rng(
                np.random.SeedSequence((self.seed, 1, position))
            )
            row = row + rng.laplace(0.0, scale, size=row.size)
        return row

    def utilities(self, user: UserId) -> Dict[ItemId, float]:
        """Utilities computed by the exact formula over sanitised weights."""
        state = self.state
        totals = self._utility_vector(user)
        return {item: float(totals[i]) for i, item in enumerate(state.items)}

    def _utility_vector(self, user: UserId) -> np.ndarray:
        """Dense noisy utility vector aligned with ``state.items``."""
        state = self.state
        totals = np.zeros(len(state.items))
        for v, sim_score in state.similarity.row(user).items():
            totals += sim_score * self._sanitised_row(v)
        return totals

    def recommend(self, user: UserId, n: Optional[int] = None):
        """Top-N from the dense sanitised vector (fast vectorised path)."""
        limit = self.n if n is None else n
        if limit < 1:
            raise ValueError(f"n must be >= 1, got {limit}")
        return self._recommend_from_vector(
            user, self.state.items, self._utility_vector(user), limit
        )
