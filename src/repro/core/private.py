"""The paper's contribution: the privacy-preserving social recommender.

:class:`PrivateSocialRecommender` implements Algorithm 1 end to end:

1. ``createClusters(G_s)`` — cluster users by the community structure of
   the *public* social graph (default: best-of-10 Louvain with multi-level
   refinement, the paper's protocol).  No privacy budget is spent here.
2. Module ``A_w`` — release noisy per-cluster average edge weights for
   every item (see :mod:`repro.core.cluster_weights`).  This is the only
   step that reads the private preference edges; it satisfies
   eps-differential privacy.
3. Module ``A_R`` — estimate every utility query from the noisy averages,

       mu_hat_u^i = sum_c (sum_{v in sim(u) & c} sim(u, v)) * w_hat_c^i

   and output the top-N ranking per user.  Pure post-processing of the
   sanitised averages plus public data, so the end-to-end algorithm remains
   eps-DP (paper Theorem 4).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.community.clustering import Clustering
from repro.community.louvain import best_louvain_clustering
from repro.core.base import BaseRecommender, FittedState
from repro.core.cluster_weights import NoisyClusterWeights, noisy_cluster_item_weights
from repro.exceptions import NodeNotFoundError, ReproError
from repro.graph.protocol import GraphLike
from repro.obs.registry import incr as obs_incr
from repro.privacy.budget import BudgetLedger
from repro.privacy.mechanisms import validate_epsilon
from repro.resilience.degradation import degradation_estimates
from repro.resilience.faults import fault_point
from repro.similarity.base import SimilarityMeasure
from repro.types import ItemId, UserId

__all__ = ["PrivateSocialRecommender", "covering_clustering", "louvain_strategy"]

# A clustering strategy maps the public social graph to a user partition.
ClusteringStrategy = Callable[[GraphLike], Clustering]


def covering_clustering(clustering: Clustering, preferences) -> Clustering:
    """Extend a social clustering to cover every preference-graph user.

    Users that appear only in the preference graph (no social presence)
    still hold private edges; give each a singleton cluster so their edges
    are protected with sensitivity 1 rather than crashing the mechanism.
    Socially isolated users get no utility from any similarity measure
    anyway.  Singletons are appended after the social clusters in
    ``preferences.users()`` order, so cluster indices of the input
    clustering are preserved.  Returns the input unchanged when it already
    covers every preference user.
    """
    uncovered = [u for u in preferences.users() if u not in clustering]
    if not uncovered:
        return clustering
    return Clustering(list(clustering.clusters()) + [[u] for u in uncovered])


def louvain_strategy(
    runs: int = 10, seed: int = 0, backend: str = "auto"
) -> ClusteringStrategy:
    """The paper's default strategy: best-of-``runs`` Louvain restarts.

    ``backend`` selects the Louvain implementation
    (``auto | vectorized | python``); both produce identical partitions,
    so the choice affects wall time only.
    """

    def strategy(graph: GraphLike) -> Clustering:
        fault_point("clustering.strategy")
        return best_louvain_clustering(
            graph, runs=runs, seed=seed, backend=backend
        ).clustering

    return strategy


class PrivateSocialRecommender(BaseRecommender):
    """Differentially private personalised social recommender (Algorithm 1).

    Args:
        measure: social similarity measure (operates on public data only).
        epsilon: privacy parameter; ``math.inf`` disables noise, isolating
            the approximation error as in the paper's Figures 1–3.
        n: default recommendation-list length.
        clustering_strategy: maps the social graph to a disjoint user
            partition; must use *only* the social graph (the privacy proof
            depends on it).  Defaults to the paper's Louvain protocol.
        seed: seed for the Laplace noise.
        max_weight: weight cap for weighted (ratings-style) preference
            graphs — the Section 7 extension.  Edges are clipped to this
            value and the noise is calibrated to ``max_weight/|c|``.  The
            default 1.0 is the paper's unweighted model.
        protection: ``"edge"`` (the paper's guarantee: one preference edge
            is protected) or ``"user"`` (group privacy over a user's whole
            edge set; noise scales by ``user_clamp``).
        user_clamp: per-user contribution bound under user-level
            protection.
        compute_backend: backend for the similarity cache
            (``auto | vectorized | python``; see
            :class:`~repro.core.base.BaseRecommender`).

    After :meth:`fit`, the attributes :attr:`clustering_`,
    :attr:`noisy_weights_` and :attr:`ledger_` expose the fitted clustering,
    the sanitised averages, and the privacy-budget accounting.
    """

    def __init__(
        self,
        measure: SimilarityMeasure,
        epsilon: float,
        n: int = 10,
        clustering_strategy: Optional[ClusteringStrategy] = None,
        seed: int = 0,
        max_weight: float = 1.0,
        protection: str = "edge",
        user_clamp: int = 50,
        compute_backend: str = "auto",
    ) -> None:
        super().__init__(measure, n=n, compute_backend=compute_backend)
        self.epsilon = validate_epsilon(epsilon)
        self.clustering_strategy = (
            clustering_strategy
            if clustering_strategy is not None
            else louvain_strategy()
        )
        self.seed = seed
        self.max_weight = max_weight
        self.protection = protection
        self.user_clamp = user_clamp
        self.clustering_: Optional[Clustering] = None
        self.noisy_weights_: Optional[NoisyClusterWeights] = None
        self.ledger_: Optional[BudgetLedger] = None

    # ------------------------------------------------------------------
    # fit: lines 1-7 of Algorithm 1
    # ------------------------------------------------------------------
    def _prepare(self, state: FittedState) -> None:
        clustering = covering_clustering(
            self.clustering_strategy(state.social), state.preferences
        )
        self.clustering_ = clustering
        rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        self.noisy_weights_ = noisy_cluster_item_weights(
            state.preferences,
            clustering,
            self.epsilon,
            rng=rng,
            max_weight=self.max_weight,
            protection=self.protection,
            user_clamp=self.user_clamp,
        )
        ledger = BudgetLedger()
        if not math.isinf(self.epsilon):
            for item in state.items:
                ledger.charge(
                    f"cluster-averages[{item!r}]", self.epsilon, group="per-item"
                )
        self.ledger_ = ledger

    # ------------------------------------------------------------------
    # queries: lines 8-21 of Algorithm 1 (pure post-processing)
    # ------------------------------------------------------------------
    def _cluster_similarity_vector(self, user: UserId) -> np.ndarray:
        """``sim_sum(u, c)`` for every cluster c, as a dense vector."""
        clustering = self.clustering_
        assert clustering is not None
        vector = np.zeros(clustering.num_clusters)
        for v, score in self.state.similarity.row(user).items():
            if v in clustering:
                vector[clustering.cluster_of(v)] += score
        return vector

    def utilities(self, user: UserId) -> Dict[ItemId, float]:
        """Noisy utility estimates ``mu_hat_u^i`` for every item.

        Unlike the exact recommender, *every* item in the universe gets an
        estimate: the noisy averages are dense, and a zero-preference item
        can legitimately outrank a real one under noise — suppressing such
        items would leak which items have no edges.
        """
        self.state  # raises NotFittedError before estimating anything
        weights = self.noisy_weights_
        assert weights is not None
        sim_vector = self._cluster_similarity_vector(user)
        estimates = weights.matrix @ sim_vector
        return {item: float(estimates[i]) for i, item in enumerate(weights.items)}

    def recommend(self, user: UserId, n: Optional[int] = None):
        """Top-N from the dense estimate vector (fast vectorised path).

        Degrades gracefully instead of raising: a user unknown to the
        social graph, or one with no similarity signal reaching any
        cluster, is served from the degradation ladder
        (cluster-popularity, then global noisy popularity — see
        :mod:`repro.resilience.degradation`).  The served tier is
        reported on the result's ``tier`` attribute.  Every fallback is
        post-processing of the released averages: ``total_epsilon()`` is
        unchanged.
        """
        limit = self.n if n is None else n
        if limit < 1:
            raise ValueError(f"n must be >= 1, got {limit}")
        weights = self.noisy_weights_
        assert weights is not None
        try:
            sim_vector = self._cluster_similarity_vector(user)
        except NodeNotFoundError:
            sim_vector = None
        if sim_vector is not None and sim_vector.any():
            obs_incr("serve.tier.personalized")
            estimates = weights.matrix @ sim_vector
            return self._recommend_from_vector(user, weights.items, estimates, limit)
        estimates, tier = degradation_estimates(weights, user)
        if estimates is None:
            return self._recommend_from_vector(
                user, weights.items, np.zeros(0), limit, tier=tier
            )
        return self._recommend_from_vector(
            user, weights.items, estimates, limit, tier=tier
        )

    def cluster_indicator(self, users: Sequence[UserId]) -> sp.csr_matrix:
        """The 0/1 user-to-cluster indicator matrix over ``users``.

        Row order follows ``users``; users outside the fitted clustering
        get an all-zero row.  This is the ``C`` of the batch-serving
        product ``(S @ C) @ W_hat^T`` (:mod:`repro.core.batch`) — exposed
        here so every consumer builds it from the same fitted clustering.

        Raises:
            ReproError: when the recommender has no fitted clustering.
        """
        clustering = self.clustering_
        if clustering is None:
            raise ReproError("recommender has no fitted clustering; fit it first")
        rows, cols = [], []
        for position, user in enumerate(users):
            if user in clustering:
                rows.append(position)
                cols.append(clustering.cluster_of(user))
        return sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)),
            shape=(len(users), clustering.num_clusters),
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def total_epsilon(self) -> float:
        """The end-to-end privacy cost recorded at fit time (0 before fit)."""
        return self.ledger_.total_epsilon() if self.ledger_ is not None else 0.0

    def __repr__(self) -> str:
        fitted = "fitted" if self.is_fitted else "unfitted"
        return (
            f"{type(self).__name__}(measure={self.measure!r}, "
            f"epsilon={self.epsilon}, n={self.n}, {fitted})"
        )
