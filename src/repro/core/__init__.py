"""Recommenders: the non-private model and its private counterparts.

- :class:`SocialRecommender` — the non-private top-N social recommender of
  Definitions 3/4: ``mu_u^i = sum_{v in sim(u)} sim(u,v) * w(v,i)``.
- :class:`PrivateSocialRecommender` — **the paper's contribution**
  (Algorithm 1): cluster users by social community structure, release noisy
  per-cluster average weights, estimate utilities from the averages.
- :class:`NoiseOnUtility` (NOU) and :class:`NoiseOnEdges` (NOE) — the two
  strawman baselines of Section 5.1.1.

All recommenders share the :class:`BaseRecommender` interface: ``fit`` on a
``(SocialGraph, PreferenceGraph)`` pair, then ``utilities`` / ``recommend``
/ ``recommend_all``.
"""

from repro.core.base import BaseRecommender, FittedState
from repro.core.baselines import NoiseOnEdges, NoiseOnUtility
from repro.core.batch import batch_recommend_all
from repro.core.cluster_weights import (
    ClusterItemAverages,
    NoisyClusterWeights,
    apply_laplace_noise,
    cluster_item_averages,
    noisy_cluster_item_weights,
)
from repro.core.persistence import PublishedRelease, ReleaseServer
from repro.core.private import PrivateSocialRecommender, covering_clustering
from repro.core.recommender import SocialRecommender

__all__ = [
    "BaseRecommender",
    "FittedState",
    "SocialRecommender",
    "PrivateSocialRecommender",
    "covering_clustering",
    "NoiseOnUtility",
    "NoiseOnEdges",
    "NoisyClusterWeights",
    "ClusterItemAverages",
    "cluster_item_averages",
    "apply_laplace_noise",
    "noisy_cluster_item_weights",
    "batch_recommend_all",
    "PublishedRelease",
    "ReleaseServer",
]
