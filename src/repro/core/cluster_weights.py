"""Module A_w of Algorithm 1: noisy per-cluster average edge weights.

For every item ``i`` and cluster ``c`` the mechanism releases

    w_hat_c^i = (1/|c|) * sum_{u in c} w(u, i)  +  Lap(1 / (|c| * eps))

(lines 2–7 of Algorithm 1).  Adding or removing one preference edge changes
exactly one of these averages — the one for the edge's user's cluster and
the edge's item — by at most ``1/|c|``, so each release is eps-DP by the
Laplace mechanism and the whole collection is eps-DP by parallel
composition over clusters (disjoint users) and items (disjoint edges).

The mechanism factors into two halves, exposed separately because only
the second depends on epsilon or randomness:

- :func:`cluster_item_averages` — the *exact* sums/averages, a pure
  function of the preference graph and the clustering.  Sweep drivers
  compute it once per dataset and reuse it across every epsilon and
  noise repeat (see :mod:`repro.experiments.engine`).
- :func:`apply_laplace_noise` — one calibrated noise draw on top of the
  exact averages.  A noise repeat costs exactly one Laplace tensor.

:func:`noisy_cluster_item_weights` composes the two and remains the
single entry point the recommender uses.

The averages are materialised as a dense ``(num_items, num_clusters)``
matrix: noise must be drawn for *every* cell, including the all-zero ones —
skipping empty cells would reveal which (item, cluster) pairs have no
edges, leaking exactly the information the mechanism protects.

Beyond the paper's edge-level guarantee, ``protection="user"`` offers
*user-level* differential privacy: neighbouring preference graphs differ
in one user's **entire** edge set.  One user's edges live in one cluster
column but touch up to ``user_clamp`` rows (edges beyond the clamp, in the
fixed item order, are dropped), each moving its average by ``W/|c|`` —
an L1 sensitivity of ``user_clamp * W / |c|``, which is exactly how the
noise is scaled.  This is the standard group-privacy strengthening; it
costs a factor ``user_clamp`` in noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.community.clustering import Clustering
from repro.exceptions import ClusteringError
from repro.graph.preference_graph import PreferenceGraph
from repro.obs.ledger import record_laplace_release
from repro.privacy.mechanisms import validate_epsilon
from repro.types import ItemId

__all__ = [
    "ClusterItemAverages",
    "NoisyClusterWeights",
    "cluster_item_averages",
    "apply_laplace_noise",
    "noisy_cluster_item_weights",
]


@dataclass(frozen=True)
class NoisyClusterWeights:
    """The sanitised output of module A_w.

    Attributes:
        matrix: ``(num_items, num_clusters)`` noisy average weights.
        items: item order matching the matrix rows.
        item_index: item -> row.
        clustering: the clustering used (column c = cluster c).
        epsilon: the privacy parameter the release satisfied.
    """

    matrix: np.ndarray
    items: List[ItemId]
    item_index: Dict[ItemId, int]
    clustering: Clustering
    epsilon: float

    def weight(self, item: ItemId, cluster_index: int) -> float:
        """``w_hat_c^i`` for one (item, cluster) pair.

        Raises:
            KeyError: for an unknown item.
            IndexError: for an out-of-range cluster index.
        """
        row = self.item_index[item]
        if not 0 <= cluster_index < self.clustering.num_clusters:
            raise IndexError(
                f"cluster index {cluster_index} out of range "
                f"[0, {self.clustering.num_clusters})"
            )
        return float(self.matrix[row, cluster_index])


@dataclass(frozen=True)
class ClusterItemAverages:
    """The exact (pre-noise) half of module A_w.

    This is *not* a differentially private release — it is the
    epsilon-independent intermediate that sweep drivers hoist out of
    their noise-repeat loops.  Publish it only after
    :func:`apply_laplace_noise`.

    Attributes:
        matrix: ``(num_items, num_clusters)`` exact average weights.
        items: item order matching the matrix rows.
        item_index: item -> row.
        clustering: the clustering used (column c = cluster c).
        max_weight: the weight cap ``W`` the sums were clipped to.
        protection: ``"edge"`` or ``"user"`` (fixes the sensitivity).
        user_clamp: per-user edge bound under user-level protection.
    """

    matrix: np.ndarray
    items: List[ItemId]
    item_index: Dict[ItemId, int]
    clustering: Clustering
    max_weight: float
    protection: str
    user_clamp: int

    @property
    def sensitivity(self) -> float:
        """The L1 sensitivity numerator ``Delta`` of one cluster sum.

        ``W`` under edge-level protection, ``W * user_clamp`` under
        user-level protection; cluster ``c``'s average moves by at most
        ``Delta / |c|``.
        """
        if self.protection == "edge":
            return self.max_weight
        return self.max_weight * self.user_clamp

    def laplace_scales(self, epsilon: float) -> Optional[np.ndarray]:
        """Per-cluster Laplace scale ``Delta / (|c| * eps)`` for ``epsilon``.

        Returns None when no noise is drawn (``epsilon = inf`` or an empty
        matrix).  ``Delta`` is ``W`` under edge-level protection and
        ``W * user_clamp`` under user-level protection.
        """
        epsilon = validate_epsilon(epsilon)
        if math.isinf(epsilon) or not self.matrix.size:
            return None
        sizes = np.asarray(self.clustering.sizes(), dtype=float)
        return self.sensitivity / (sizes * epsilon)


def _validate_parameters(
    max_weight: float, protection: str, user_clamp: int
) -> None:
    from repro.exceptions import PrivacyError

    if max_weight <= 0.0:
        raise PrivacyError(f"max_weight must be positive, got {max_weight}")
    if protection not in ("edge", "user"):
        raise PrivacyError(
            f"protection must be 'edge' or 'user', got {protection!r}"
        )
    if protection == "user" and user_clamp < 1:
        raise PrivacyError(f"user_clamp must be >= 1, got {user_clamp}")


def _clamped_user_items(
    preferences: PreferenceGraph,
    clustering: Clustering,
    item_index: Dict[ItemId, int],
    max_weight: float,
    protection: str,
    user_clamp: int,
):
    """Yield ``(cluster_column, item_dict)`` per contributing user.

    Applies the user-level clamp (keep each user's first ``user_clamp``
    edges in the fixed item order) and validates cluster coverage —
    shared by both accumulation backends so they agree on exactly which
    edges count.
    """
    for user in preferences.users():
        owned = preferences.items_of(user)
        if not owned:
            continue
        if user not in clustering:
            raise ClusteringError(
                f"user {user!r} has preference edges but is not in any cluster"
            )
        column = clustering.cluster_of(user)
        if protection == "user" and len(owned) > user_clamp:
            kept = sorted(owned, key=item_index.__getitem__)[:user_clamp]
            owned = {item: owned[item] for item in kept}
        yield column, owned


def _exact_sums_python(
    preferences: PreferenceGraph,
    clustering: Clustering,
    item_index: Dict[ItemId, int],
    max_weight: float,
    protection: str,
    user_clamp: int,
) -> np.ndarray:
    """The reference accumulation: one Python pass over users and edges."""
    sums = np.zeros((len(item_index), clustering.num_clusters))
    for column, owned in _clamped_user_items(
        preferences, clustering, item_index, max_weight, protection, user_clamp
    ):
        for item, weight in owned.items():
            sums[item_index[item], column] += min(weight, max_weight)
    return sums


def _exact_sums_vectorized(
    preferences: PreferenceGraph,
    clustering: Clustering,
    item_index: Dict[ItemId, int],
    max_weight: float,
    protection: str,
    user_clamp: int,
) -> np.ndarray:
    """CSR accumulation: clipped preference matrix times cluster indicator.

    Builds the (edges,) COO triplets in one pass, then reduces
    ``W_pref^T @ C`` in scipy.  For the paper's unweighted model (and any
    weight grid exactly representable in binary) the per-cell sums are
    bit-identical to the python reference; the tests pin this.
    """
    num_items = len(item_index)
    num_clusters = clustering.num_clusters
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for column, owned in _clamped_user_items(
        preferences, clustering, item_index, max_weight, protection, user_clamp
    ):
        for item, weight in owned.items():
            rows.append(item_index[item])
            cols.append(column)
            data.append(min(weight, max_weight))
    sums = sp.csr_matrix(
        (
            np.asarray(data, dtype=float),
            (np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)),
        ),
        shape=(num_items, num_clusters),
    )
    return sums.toarray()


def cluster_item_averages(
    preferences: PreferenceGraph,
    clustering: Clustering,
    max_weight: float = 1.0,
    protection: str = "edge",
    user_clamp: int = 50,
    backend: str = "auto",
) -> ClusterItemAverages:
    """Exact per-cluster average weights (lines 2–5 of Algorithm 1).

    A pure function of the preference graph and the clustering: no
    epsilon, no randomness.  Sweep drivers call it once per dataset and
    re-noise the result per repeat with :func:`apply_laplace_noise`.

    Args:
        preferences: the private preference graph.
        clustering: a partition of the users; every preference-graph user
            with at least one edge must be covered.
        max_weight: the weight cap ``W`` (edges are clipped to it).
        protection: ``"edge"`` or ``"user"`` (see module docstring).
        user_clamp: per-user edge bound under ``protection="user"``.
        backend: how the exact sums are accumulated — ``"python"`` (the
            reference loop), ``"vectorized"`` (a CSR product of the
            clipped preference matrix with the cluster indicator), or
            ``"auto"`` (vectorized; scipy is a hard dependency).  Both
            backends count exactly the same edges; the tests pin their
            equality.

    Raises:
        ClusteringError: if a user with preference edges is not clustered.
        PrivacyError: for a non-positive ``max_weight`` or ``user_clamp``,
            or an unknown protection level.
        ValueError: for an unknown backend name.
    """
    from repro.compute.stats import validate_backend

    validate_backend(backend)
    _validate_parameters(max_weight, protection, user_clamp)

    items = preferences.items()
    item_index = {item: i for i, item in enumerate(items)}
    num_clusters = clustering.num_clusters

    accumulate = (
        _exact_sums_python if backend == "python" else _exact_sums_vectorized
    )
    sums = accumulate(
        preferences, clustering, item_index, max_weight, protection, user_clamp
    )

    sizes = np.asarray(clustering.sizes(), dtype=float)
    if num_clusters:
        averages = sums / sizes[np.newaxis, :]
    else:
        averages = sums

    return ClusterItemAverages(
        matrix=averages,
        items=items,
        item_index=item_index,
        clustering=clustering,
        max_weight=max_weight,
        protection=protection,
        user_clamp=user_clamp,
    )


def apply_laplace_noise(
    averages: ClusterItemAverages,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """One calibrated noise draw on the exact averages (lines 6–7).

    Draws exactly one ``(num_items, num_clusters)`` Laplace tensor from
    ``rng`` (or none at all for ``epsilon = inf`` / an empty matrix), so
    a caller that re-seeds ``rng`` per repeat reproduces the recommender's
    noise streams bit-for-bit.

    Returns a fresh matrix; the averages object is never mutated.

    Raises:
        InvalidEpsilonError: for an invalid epsilon.
    """
    epsilon = validate_epsilon(epsilon)
    if rng is None:
        rng = np.random.default_rng(0)
    scales = averages.laplace_scales(epsilon)
    if scales is None:
        return averages.matrix.copy()
    noise = rng.laplace(
        loc=0.0, scale=scales[np.newaxis, :], size=averages.matrix.shape
    )
    record_laplace_release(
        epsilon,
        averages.clustering.sizes(),
        averages.sensitivity,
        items=len(averages.items),
    )
    return averages.matrix + noise


def noisy_cluster_item_weights(
    preferences: PreferenceGraph,
    clustering: Clustering,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
    max_weight: float = 1.0,
    protection: str = "edge",
    user_clamp: int = 50,
    backend: str = "auto",
) -> NoisyClusterWeights:
    """Run module A_w end to end: release all noisy cluster-average weights.

    Composes :func:`cluster_item_averages` and :func:`apply_laplace_noise`;
    see those for the split.  The noise stream is identical to every
    previous version of this function: one Laplace draw of the full
    ``(num_items, num_clusters)`` shape, or none for ``epsilon = inf``.

    Args:
        preferences: the private preference graph.
        clustering: a partition of the users; every preference-graph user
            with at least one edge must be covered (otherwise that user's
            edges would escape the sensitivity analysis).
        epsilon: privacy parameter; ``math.inf`` releases exact averages.
        rng: random source for the Laplace noise.
        max_weight: the weight cap ``W``.  The paper's model is unweighted
            (``W = 1``); for weighted (ratings-style) graphs — the
            extension the paper's Section 7 proposes — edges are clipped
            to ``W`` and one edge then moves a cluster average by at most
            ``W/|c|``, so the noise scale becomes ``W/(|c| eps)``.
        protection: ``"edge"`` (the paper's model: neighbouring graphs
            differ in one edge) or ``"user"`` (group privacy: neighbouring
            graphs differ in one user's entire edge set; noise scales by
            ``user_clamp``).
        user_clamp: under ``protection="user"``, only each user's first
            ``user_clamp`` edges (in the graph's fixed item order)
            contribute; this bounds the per-user sensitivity.
        backend: exact-sum accumulation backend
            (see :func:`cluster_item_averages`).

    Raises:
        ClusteringError: if a user with preference edges is not clustered.
        InvalidEpsilonError: for an invalid epsilon.
        PrivacyError: for a non-positive ``max_weight`` or ``user_clamp``,
            or an unknown protection level.
    """
    epsilon = validate_epsilon(epsilon)
    averages = cluster_item_averages(
        preferences,
        clustering,
        max_weight=max_weight,
        protection=protection,
        user_clamp=user_clamp,
        backend=backend,
    )
    matrix = apply_laplace_noise(averages, epsilon, rng=rng)
    return NoisyClusterWeights(
        matrix=matrix,
        items=averages.items,
        item_index=averages.item_index,
        clustering=clustering,
        epsilon=epsilon,
    )
