"""Module A_w of Algorithm 1: noisy per-cluster average edge weights.

For every item ``i`` and cluster ``c`` the mechanism releases

    w_hat_c^i = (1/|c|) * sum_{u in c} w(u, i)  +  Lap(1 / (|c| * eps))

(lines 2–7 of Algorithm 1).  Adding or removing one preference edge changes
exactly one of these averages — the one for the edge's user's cluster and
the edge's item — by at most ``1/|c|``, so each release is eps-DP by the
Laplace mechanism and the whole collection is eps-DP by parallel
composition over clusters (disjoint users) and items (disjoint edges).

The averages are materialised as a dense ``(num_items, num_clusters)``
matrix: noise must be drawn for *every* cell, including the all-zero ones —
skipping empty cells would reveal which (item, cluster) pairs have no
edges, leaking exactly the information the mechanism protects.

Beyond the paper's edge-level guarantee, ``protection="user"`` offers
*user-level* differential privacy: neighbouring preference graphs differ
in one user's **entire** edge set.  One user's edges live in one cluster
column but touch up to ``user_clamp`` rows (edges beyond the clamp, in the
fixed item order, are dropped), each moving its average by ``W/|c|`` —
an L1 sensitivity of ``user_clamp * W / |c|``, which is exactly how the
noise is scaled.  This is the standard group-privacy strengthening; it
costs a factor ``user_clamp`` in noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.community.clustering import Clustering
from repro.exceptions import ClusteringError
from repro.graph.preference_graph import PreferenceGraph
from repro.privacy.mechanisms import validate_epsilon
from repro.types import ItemId

__all__ = ["NoisyClusterWeights", "noisy_cluster_item_weights"]


@dataclass(frozen=True)
class NoisyClusterWeights:
    """The sanitised output of module A_w.

    Attributes:
        matrix: ``(num_items, num_clusters)`` noisy average weights.
        items: item order matching the matrix rows.
        item_index: item -> row.
        clustering: the clustering used (column c = cluster c).
        epsilon: the privacy parameter the release satisfied.
    """

    matrix: np.ndarray
    items: List[ItemId]
    item_index: Dict[ItemId, int]
    clustering: Clustering
    epsilon: float

    def weight(self, item: ItemId, cluster_index: int) -> float:
        """``w_hat_c^i`` for one (item, cluster) pair.

        Raises:
            KeyError: for an unknown item.
            IndexError: for an out-of-range cluster index.
        """
        row = self.item_index[item]
        if not 0 <= cluster_index < self.clustering.num_clusters:
            raise IndexError(
                f"cluster index {cluster_index} out of range "
                f"[0, {self.clustering.num_clusters})"
            )
        return float(self.matrix[row, cluster_index])


def noisy_cluster_item_weights(
    preferences: PreferenceGraph,
    clustering: Clustering,
    epsilon: float,
    rng: Optional[np.random.Generator] = None,
    max_weight: float = 1.0,
    protection: str = "edge",
    user_clamp: int = 50,
) -> NoisyClusterWeights:
    """Run module A_w: release all noisy cluster-average weights.

    Args:
        preferences: the private preference graph.
        clustering: a partition of the users; every preference-graph user
            with at least one edge must be covered (otherwise that user's
            edges would escape the sensitivity analysis).
        epsilon: privacy parameter; ``math.inf`` releases exact averages.
        rng: random source for the Laplace noise.
        max_weight: the weight cap ``W``.  The paper's model is unweighted
            (``W = 1``); for weighted (ratings-style) graphs — the
            extension the paper's Section 7 proposes — edges are clipped
            to ``W`` and one edge then moves a cluster average by at most
            ``W/|c|``, so the noise scale becomes ``W/(|c| eps)``.
        protection: ``"edge"`` (the paper's model: neighbouring graphs
            differ in one edge) or ``"user"`` (group privacy: neighbouring
            graphs differ in one user's entire edge set; noise scales by
            ``user_clamp``).
        user_clamp: under ``protection="user"``, only each user's first
            ``user_clamp`` edges (in the graph's fixed item order)
            contribute; this bounds the per-user sensitivity.

    Raises:
        ClusteringError: if a user with preference edges is not clustered.
        InvalidEpsilonError: for an invalid epsilon.
        PrivacyError: for a non-positive ``max_weight`` or ``user_clamp``,
            or an unknown protection level.
    """
    from repro.exceptions import PrivacyError

    epsilon = validate_epsilon(epsilon)
    if max_weight <= 0.0:
        raise PrivacyError(f"max_weight must be positive, got {max_weight}")
    if protection not in ("edge", "user"):
        raise PrivacyError(
            f"protection must be 'edge' or 'user', got {protection!r}"
        )
    if protection == "user" and user_clamp < 1:
        raise PrivacyError(f"user_clamp must be >= 1, got {user_clamp}")
    if rng is None:
        rng = np.random.default_rng(0)

    items = preferences.items()
    item_index = {item: i for i, item in enumerate(items)}
    num_items = len(items)
    num_clusters = clustering.num_clusters

    sums = np.zeros((num_items, num_clusters))
    for user in preferences.users():
        owned = preferences.items_of(user)
        if not owned:
            continue
        if user not in clustering:
            raise ClusteringError(
                f"user {user!r} has preference edges but is not in any cluster"
            )
        column = clustering.cluster_of(user)
        if protection == "user" and len(owned) > user_clamp:
            kept = sorted(owned, key=item_index.__getitem__)[:user_clamp]
            owned = {item: owned[item] for item in kept}
        for item, weight in owned.items():
            sums[item_index[item], column] += min(weight, max_weight)

    sizes = np.asarray(clustering.sizes(), dtype=float)
    if num_clusters:
        averages = sums / sizes[np.newaxis, :]
    else:
        averages = sums

    if not math.isinf(epsilon) and num_items and num_clusters:
        # Per-column scale Delta/(|c| * eps) with Delta = W (edge level) or
        # W * user_clamp (user level); one draw per (item, cluster) cell.
        sensitivity = max_weight if protection == "edge" else max_weight * user_clamp
        scales = sensitivity / (sizes * epsilon)
        noise = rng.laplace(
            loc=0.0, scale=scales[np.newaxis, :], size=(num_items, num_clusters)
        )
        averages = averages + noise

    return NoisyClusterWeights(
        matrix=averages,
        items=items,
        item_index=item_index,
        clustering=clustering,
        epsilon=epsilon,
    )
