"""Private recommendations over dynamic graphs (paper Section 7).

The paper computes recommendations from a single static snapshot and
names dynamic graphs the main direction for future work.  This module
provides the standard composition-based treatment: a
:class:`DynamicPrivateRecommender` holds a total privacy budget and fits a
fresh :class:`PrivateSocialRecommender` per snapshot, charging the budget
under sequential composition (Theorem 2) — successive preference
snapshots overlap, so their releases compose sequentially.

Two allocation policies are provided:

- ``uniform(T)`` — plan for ``T`` snapshots and spend ``epsilon/T`` each.
- ``decay(factor)`` — geometric decay: snapshot ``t`` gets
  ``epsilon * (1-f) * f^t``; the budget never exhausts, at the cost of
  ever-noisier late snapshots.  This is the textbook answer when the
  number of snapshots is unknown.

This is deliberately conservative.  Exploiting *overlap* between
consecutive snapshots (most preference edges persist) to spend less than
sequential composition requires continual-observation machinery beyond
this paper's scope; the budget ledger makes the conservative cost explicit
instead of hiding it.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.private import ClusteringStrategy, PrivateSocialRecommender
from repro.exceptions import BudgetExhaustedError, PrivacyError
from repro.graph.preference_graph import PreferenceGraph
from repro.graph.social_graph import SocialGraph
from repro.privacy.budget import PrivacyBudget
from repro.privacy.mechanisms import validate_epsilon
from repro.similarity.base import SimilarityMeasure

__all__ = ["DynamicPrivateRecommender", "uniform_allocation", "decay_allocation"]

# A policy maps the snapshot index (0-based) to that snapshot's epsilon.
AllocationPolicy = Callable[[int], float]


def uniform_allocation(total_epsilon: float, num_snapshots: int) -> AllocationPolicy:
    """Spend ``total_epsilon / num_snapshots`` on each planned snapshot.

    Fitting more than ``num_snapshots`` snapshots exhausts the budget and
    raises at fit time.

    Raises:
        ValueError: if ``num_snapshots`` < 1.
    """
    validate_epsilon(total_epsilon)
    if num_snapshots < 1:
        raise ValueError(f"num_snapshots must be >= 1, got {num_snapshots}")
    per_snapshot = total_epsilon / num_snapshots
    return lambda index: per_snapshot


def decay_allocation(total_epsilon: float, factor: float = 0.5) -> AllocationPolicy:
    """Geometric decay: snapshot ``t`` gets ``total * (1-factor) * factor^t``.

    The series sums to ``total_epsilon``, so any number of snapshots fits.

    Raises:
        ValueError: if ``factor`` is outside (0, 1).
    """
    validate_epsilon(total_epsilon)
    if not 0.0 < factor < 1.0:
        raise ValueError(f"factor must be in (0, 1), got {factor}")
    return lambda index: total_epsilon * (1.0 - factor) * factor**index


class DynamicPrivateRecommender:
    """Budgeted sequence of private recommenders over graph snapshots.

    Args:
        measure: social similarity measure.
        total_epsilon: the end-to-end privacy budget across all snapshots.
        allocation: per-snapshot epsilon policy (default: geometric decay
            with factor 0.5, which supports an unbounded stream).
        n: default recommendation-list length.
        clustering_strategy: forwarded to each snapshot's recommender.
        seed: base noise seed (each snapshot derives an independent seed).

    Example:
        >>> from repro.similarity import CommonNeighbors
        >>> dyn = DynamicPrivateRecommender(
        ...     CommonNeighbors(), total_epsilon=1.0,
        ...     allocation=uniform_allocation(1.0, num_snapshots=4),
        ... )
    """

    def __init__(
        self,
        measure: SimilarityMeasure,
        total_epsilon: float,
        allocation: Optional[AllocationPolicy] = None,
        n: int = 10,
        clustering_strategy: Optional[ClusteringStrategy] = None,
        seed: int = 0,
    ) -> None:
        self.measure = measure
        self.budget = PrivacyBudget(total_epsilon)
        if allocation is None:
            allocation = decay_allocation(total_epsilon, factor=0.5)
        self.allocation = allocation
        self.n = n
        self.clustering_strategy = clustering_strategy
        self.seed = seed
        self._snapshots: List[PrivateSocialRecommender] = []

    @property
    def num_snapshots(self) -> int:
        """How many snapshots have been fitted so far."""
        return len(self._snapshots)

    @property
    def current(self) -> PrivateSocialRecommender:
        """The recommender for the most recent snapshot.

        Raises:
            PrivacyError: before the first snapshot is fitted.
        """
        if not self._snapshots:
            raise PrivacyError("no snapshot has been fitted yet")
        return self._snapshots[-1]

    def fit_snapshot(
        self, social: SocialGraph, preferences: PreferenceGraph
    ) -> PrivateSocialRecommender:
        """Fit a private recommender on the next snapshot, spending budget.

        The per-snapshot epsilon comes from the allocation policy; the
        charge is recorded *before* fitting so a crash cannot under-count.

        Returns:
            The fitted snapshot recommender (also kept as :attr:`current`).

        Raises:
            BudgetExhaustedError: when the policy's next charge does not
                fit in the remaining budget.
        """
        index = len(self._snapshots)
        epsilon = self.allocation(index)
        if not self.budget.can_spend(epsilon):
            raise BudgetExhaustedError(epsilon, self.budget.remaining)
        self.budget.spend(epsilon)
        recommender = PrivateSocialRecommender(
            self.measure,
            epsilon=epsilon,
            n=self.n,
            clustering_strategy=self.clustering_strategy,
            seed=self.seed * 100_003 + index,
        )
        recommender.fit(social, preferences)
        self._snapshots.append(recommender)
        return recommender

    def recommend(self, user, n: Optional[int] = None):
        """Recommendations from the most recent snapshot."""
        return self.current.recommend(user, n=n)

    def spent_epsilon(self) -> float:
        """Total epsilon consumed across all fitted snapshots."""
        return self.budget.spent

    def snapshot(self, index: int) -> PrivateSocialRecommender:
        """The fitted recommender for snapshot ``index`` (0-based)."""
        return self._snapshots[index]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(snapshots={self.num_snapshots}, "
            f"spent={self.budget.spent:g}, remaining={self.budget.remaining:g})"
        )
