"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands:

- ``stats``          — Table 1-style dataset summary.
- ``tradeoff``       — Figure 1/2 privacy–accuracy sweep.
- ``degree-effect``  — Figure 3 degree-vs-accuracy analysis.
- ``compare``        — Figure 4 mechanism comparison.
- ``attack``         — the Section 2.3 Sybil attack demonstration.
- ``check-release``  — verify a saved release artifact's integrity and
  provenance (optionally Monte-Carlo-auditing its epsilon claim).
- ``batch``          — serve top-N lists for every user at once (sharded
  workers + similarity cache), reporting throughput counters.
- ``cache``          — manage the persistent similarity-kernel cache
  (``info`` / ``warm`` / ``prune``).
- ``obs``            — inspect recorded observability data:
  ``repro obs report`` renders a trace, ``repro obs trend`` diffs two
  BENCH-style summaries (median-normalized timings + counter deltas).
- ``sweep``          — fault-tolerant distributed sweeps over a
  filesystem work queue: ``submit`` decomposes a tradeoff sweep into
  leaseable cell tasks, ``worker`` claims and computes them (any number
  of processes/hosts sharing the queue directory), ``status`` reports
  progress, ``reap`` reclaims leases left behind by dead workers.
- ``serve``          — the online serving tier: ``publish`` fits and
  saves a release artifact, ``run`` starts the long-lived asyncio HTTP
  service over it (admission control riding the degradation ladder,
  hot release swap via ``POST /admin/swap``), ``bench`` drives a
  seeded load generator against a server (or a self-hosted one) and
  reports p50/p99 latency and sustained QPS.

``tradeoff``, ``batch``, and ``cache warm`` accept ``--profile[=PATH]``:
the run executes under an active :mod:`repro.obs` registry and writes a
JSON-lines trace plus a BENCH-style summary (spans, counters, the
privacy ledger) next to it — see ``docs/observability.md``.

All commands operate on the synthetic datasets (``--dataset lastfm`` /
``flixster`` with ``--scale``), or on a real crawl directory via
``--data-dir`` (HetRec two-file layout).

Library failures exit with a short message on stderr and a distinct
code per failure family (see ``EXIT_CODES``) instead of a traceback;
programming errors still propagate with a full traceback.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import time
from contextlib import contextmanager
from typing import List, Optional

from repro.attacks.sybil import run_attack_experiment
from repro.core.private import PrivateSocialRecommender
from repro.core.recommender import SocialRecommender
from repro.datasets.dataset import SocialRecDataset
from repro.datasets.loader import load_dataset_directory
from repro.datasets.stats import dataset_stats, format_stats_table
from repro.datasets.synthetic import SyntheticDatasetSpec
from repro.exceptions import (
    DatasetError,
    ExperimentError,
    PrivacyError,
    ReleaseIntegrityError,
    ReproError,
    RetryExhaustedError,
)
from repro.experiments.comparison import format_comparison_table, run_comparison
from repro.experiments.degree_effect import run_degree_effect
from repro.experiments.engine import ENGINES
from repro.experiments.tradeoff import format_tradeoff_table, run_tradeoff
from repro.similarity.base import get_measure

__all__ = ["main", "build_parser", "EXIT_CODES"]

# Exit codes for library failures, most specific class first: the first
# matching entry wins, so subclasses must precede their bases.
EXIT_CODES = (
    (ReleaseIntegrityError, 6),
    (RetryExhaustedError, 7),
    (DatasetError, 3),
    (PrivacyError, 4),
    (ExperimentError, 5),
    (ReproError, 2),
)


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=("lastfm", "flixster"),
        default="lastfm",
        help="synthetic dataset preset (default: lastfm)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="size multiplier for the synthetic preset (default: 0.2)",
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        help="load a real crawl from this directory instead (HetRec layout)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")


def _resolve_dataset(args: argparse.Namespace) -> SocialRecDataset:
    if args.data_dir:
        return load_dataset_directory(args.data_dir)
    if args.dataset == "lastfm":
        spec = SyntheticDatasetSpec.lastfm_like(scale=args.scale)
    else:
        spec = SyntheticDatasetSpec.flixster_like(scale=args.scale * 0.1)
    return spec.generate(seed=args.seed)


def _parse_epsilon(token: str) -> float:
    if token.lower() in ("inf", "infinity"):
        return math.inf
    return float(token)


DEFAULT_PROFILE_PATH = "repro-obs.jsonl"


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        nargs="?",
        const=DEFAULT_PROFILE_PATH,
        default=None,
        metavar="PATH",
        help="record an observability trace (JSON-lines) to PATH "
        f"(default: {DEFAULT_PROFILE_PATH}) plus a BENCH-style summary "
        "next to it, and print the span/counter/privacy-ledger report",
    )


@contextmanager
def _profiled(command: str, trace_path: Optional[str]):
    """Run a CLI command body under an active telemetry registry.

    No-op when ``trace_path`` is None.  Otherwise the body runs inside a
    root ``cli.<command>`` span; on exit (even a failing one) the trace
    and its summary are written and the human report printed, so a
    crashed run still leaves its telemetry behind.
    """
    if not trace_path:
        yield
        return
    from repro import obs

    registry = obs.Telemetry()
    wall_start = time.perf_counter()
    try:
        with obs.telemetry(registry):
            with obs.span(f"cli.{command}"):
                yield
    finally:
        wall_seconds = time.perf_counter() - wall_start
        snapshot = registry.snapshot()
        meta = {"command": command, "wall_seconds": wall_seconds}
        obs.write_trace(trace_path, snapshot, meta=meta)
        summary_path = obs.summary_path_for(trace_path)
        obs.write_summary(
            summary_path, snapshot, wall_seconds=wall_seconds, meta=meta
        )
        print(f"profile:     trace {trace_path}, summary {summary_path}")
        print(obs.format_report(snapshot, wall_seconds=wall_seconds))


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-preserving social recommendation (EDBT 2014 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="Table 1-style dataset summary")
    _add_dataset_arguments(p_stats)

    p_trade = sub.add_parser("tradeoff", help="Figure 1/2 accuracy-vs-epsilon sweep")
    _add_dataset_arguments(p_trade)
    p_trade.add_argument(
        "--measures", nargs="+", default=["cn", "aa", "gd", "kz"],
        help="similarity measures (default: cn aa gd kz)",
    )
    p_trade.add_argument(
        "--epsilons", nargs="+", default=["inf", "1.0", "0.6", "0.1", "0.05", "0.01"],
        help="privacy settings; 'inf' means no noise",
    )
    p_trade.add_argument("--ns", nargs="+", type=int, default=[10, 50, 100])
    p_trade.add_argument("--repeats", type=int, default=5)
    p_trade.add_argument("--sample-size", type=int, default=None)
    p_trade.add_argument(
        "--checkpoint",
        default=None,
        help="JSON-lines checkpoint file; completed cells are skipped on "
        "rerun, so a killed sweep resumes where it stopped",
    )
    p_trade.add_argument(
        "--engine",
        choices=ENGINES,
        default="vectorized",
        help="sweep engine: 'vectorized' batches each noise draw into one "
        "matmul, 'reference' keeps the per-user loop (identical numbers)",
    )
    p_trade.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="process-pool size; >= 2 fans epsilon cells out in parallel "
        "(vectorized engine only)",
    )
    p_trade.add_argument(
        "--cache-dir",
        default=None,
        help="persist/reuse similarity kernels in this directory "
        "(vectorized engine only)",
    )
    p_trade.add_argument(
        "--backend",
        choices=("auto", "vectorized", "python"),
        default="auto",
        help="kernel construction backend (default: auto — vectorised "
        "when supported, python fallback on failure)",
    )
    _add_profile_argument(p_trade)

    p_degree = sub.add_parser("degree-effect", help="Figure 3 degree analysis")
    _add_dataset_arguments(p_degree)
    p_degree.add_argument("--measure", default="cn")
    p_degree.add_argument("--n", type=int, default=50)
    p_degree.add_argument("--threshold", type=int, default=10)

    p_cmp = sub.add_parser("compare", help="Figure 4 mechanism comparison")
    _add_dataset_arguments(p_cmp)
    p_cmp.add_argument("--measures", nargs="+", default=["cn"])
    p_cmp.add_argument("--epsilons", nargs="+", default=["1.0", "0.1"])
    p_cmp.add_argument("--n", type=int, default=50)
    p_cmp.add_argument("--repeats", type=int, default=3)
    p_cmp.add_argument("--sample-size", type=int, default=None)

    p_attack = sub.add_parser(
        "attack", help="Section 2.3 Sybil attack demo / privacy audit suite"
    )
    _add_dataset_arguments(p_attack)
    p_attack.add_argument("--measure", default="cn")
    p_attack.add_argument("--epsilon", type=_parse_epsilon, default=0.5)
    p_attack.add_argument("--victim", type=int, default=None)
    p_attack.add_argument("--top-n", type=int, default=50)
    attack_sub = p_attack.add_subparsers(dest="attack_command")
    p_audit = attack_sub.add_parser(
        "audit",
        help="red-team audit: empirical epsilon lower bounds vs the ledger",
    )
    _add_dataset_arguments(p_audit)
    p_audit.add_argument(
        "--measures", nargs="+", default=["cn"],
        help="similarity measures to audit (default: cn)",
    )
    p_audit.add_argument(
        "--eps", nargs="+", type=_parse_epsilon,
        default=[0.1, 0.5, 1.0, 2.0], metavar="EPS",
        help="epsilon sweep (default: 0.1 0.5 1.0 2.0)",
    )
    p_audit.add_argument(
        "--target", nargs="+", choices=("private", "nou", "noe", "lrm", "gs"),
        default=["private", "nou", "noe"],
        help="mechanisms to attack (default: private nou noe)",
    )
    p_audit.add_argument(
        "--trials", type=_positive_int, default=1000,
        help="membership trials per world per cell (default: 1000)",
    )
    p_audit.add_argument(
        "--repeats", type=_positive_int, default=3,
        help="reconstruction releases per private cell (default: 3)",
    )
    p_audit.add_argument("--louvain-runs", type=_positive_int, default=5)
    p_audit.add_argument(
        "--backend", choices=("auto", "vectorized", "python"), default="auto"
    )
    p_audit.add_argument(
        "--cache-dir", default=None,
        help="persistent similarity-kernel store directory",
    )
    p_audit.add_argument(
        "--json", nargs="?", const="-", default=None, metavar="PATH",
        help="emit the audit report as JSON to PATH (or stdout with no PATH)",
    )
    p_audit.add_argument(
        "--strict", action="store_true",
        help="fail (privacy exit code) if any cell violates "
        "eps_empirical <= eps_analytical",
    )
    _add_profile_argument(p_audit)

    p_analyze = sub.add_parser(
        "analyze", help="structural analysis of a dataset's social graph"
    )
    _add_dataset_arguments(p_analyze)
    p_analyze.add_argument("--path-samples", type=int, default=30)
    p_analyze.add_argument("--louvain-runs", type=int, default=5)

    p_validate = sub.add_parser(
        "validate",
        help="empirically estimate the privacy loss of module A_w",
    )
    p_validate.add_argument("--epsilon", type=float, default=0.5)
    p_validate.add_argument("--cluster-size", type=int, default=4)
    p_validate.add_argument("--samples", type=int, default=60000)
    p_validate.add_argument("--seed", type=int, default=0)

    p_report = sub.add_parser(
        "report", help="regenerate every table and figure as one markdown report"
    )
    p_report.add_argument("--lastfm-scale", type=float, default=0.15)
    p_report.add_argument("--flixster-scale", type=float, default=0.008)
    p_report.add_argument("--repeats", type=int, default=3)
    p_report.add_argument("--seed", type=int, default=0)
    p_report.add_argument(
        "--output", default=None, help="write to this file instead of stdout"
    )

    p_check = sub.add_parser(
        "check-release",
        help="verify a saved release artifact's integrity and provenance",
    )
    p_check.add_argument("path", help="path to a release .npz artifact")
    p_check.add_argument(
        "--audit",
        action="store_true",
        help="additionally Monte-Carlo-audit the artifact's epsilon claim "
        "against a fresh run of module A_w",
    )
    p_check.add_argument("--samples", type=int, default=30000)
    p_check.add_argument("--seed", type=int, default=0)

    p_batch = sub.add_parser(
        "batch",
        help="serve top-N recommendations for every user in one sharded pass",
    )
    _add_dataset_arguments(p_batch)
    p_batch.add_argument("--measure", default="cn")
    p_batch.add_argument("--epsilon", type=_parse_epsilon, default=0.5)
    p_batch.add_argument("--n", type=_positive_int, default=10)
    p_batch.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="process-pool size; >= 2 enables sharded parallel scoring",
    )
    p_batch.add_argument(
        "--shard-size",
        type=_positive_int,
        default=None,
        help="users per shard (default: 4 shards per worker)",
    )
    p_batch.add_argument(
        "--cache-dir",
        default=None,
        help="persist/reuse similarity kernels in this directory",
    )
    p_batch.add_argument(
        "--backend",
        choices=("auto", "vectorized", "python"),
        default="auto",
        help="kernel construction backend (default: auto — vectorised "
        "when supported, python fallback on failure)",
    )
    _add_profile_argument(p_batch)

    p_cache = sub.add_parser(
        "cache", help="manage the persistent similarity-kernel cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    p_cache_info = cache_sub.add_parser(
        "info", help="list cached kernel artifacts and totals"
    )
    p_cache_info.add_argument("--cache-dir", required=True)

    p_cache_prune = cache_sub.add_parser(
        "prune", help="delete artifacts, oldest first, down to a size budget"
    )
    p_cache_prune.add_argument("--cache-dir", required=True)
    p_cache_prune.add_argument(
        "--max-bytes",
        type=int,
        default=0,
        help="keep at most this many bytes of artifacts (default 0: empty)",
    )

    p_cache_warm = cache_sub.add_parser(
        "warm", help="precompute and persist similarity kernels for a dataset"
    )
    _add_dataset_arguments(p_cache_warm)
    p_cache_warm.add_argument("--cache-dir", required=True)
    p_cache_warm.add_argument(
        "--measures", nargs="+", default=["cn", "aa", "gd", "kz"],
        help="similarity measures to warm (default: cn aa gd kz)",
    )
    p_cache_warm.add_argument(
        "--backend",
        choices=("auto", "vectorized", "python"),
        default="auto",
        help="kernel construction backend (default: auto)",
    )
    _add_profile_argument(p_cache_warm)

    p_obs = sub.add_parser(
        "obs", help="inspect recorded observability traces"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_report = obs_sub.add_parser(
        "report", help="render a --profile trace as human tables"
    )
    p_obs_report.add_argument("path", help="path to a .jsonl trace file")
    p_obs_report.add_argument(
        "--json",
        action="store_true",
        help="print the BENCH-style summary JSON instead of tables",
    )
    p_obs_trend = obs_sub.add_parser(
        "trend",
        help="diff two BENCH-style summaries (pytest-benchmark or "
        "--profile summary JSON): median-normalized timing drift plus "
        "counter deltas",
    )
    p_obs_trend.add_argument("current", help="summary JSON from this run")
    p_obs_trend.add_argument("baseline", help="summary JSON to compare against")
    p_obs_trend.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="normalized slowdown fraction to flag as drift "
        "(default: %(default)s)",
    )
    p_obs_trend.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any benchmark drifts beyond the threshold "
        "(default: informational, exit 0)",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="distributed tradeoff sweeps over a filesystem work queue",
    )
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)

    p_sweep_submit = sweep_sub.add_parser(
        "submit",
        help="decompose a tradeoff sweep into leaseable cell tasks "
        "(idempotent for the same sweep)",
    )
    _add_dataset_arguments(p_sweep_submit)
    p_sweep_submit.add_argument("--queue", required=True, help="queue directory")
    p_sweep_submit.add_argument(
        "--measures", nargs="+", default=["cn", "aa", "gd", "kz"],
        help="similarity measures (default: cn aa gd kz)",
    )
    p_sweep_submit.add_argument(
        "--epsilons", nargs="+", default=["inf", "1.0", "0.6", "0.1", "0.05", "0.01"],
        help="privacy settings; 'inf' means no noise",
    )
    p_sweep_submit.add_argument("--ns", nargs="+", type=int, default=[10, 50, 100])
    p_sweep_submit.add_argument("--repeats", type=int, default=5)
    p_sweep_submit.add_argument("--sample-size", type=int, default=None)
    p_sweep_submit.add_argument("--louvain-runs", type=int, default=10)
    p_sweep_submit.add_argument(
        "--engine", choices=ENGINES, default="vectorized",
        help="sweep engine workers run cells with (default: vectorized)",
    )
    p_sweep_submit.add_argument(
        "--backend",
        choices=("auto", "vectorized", "python"),
        default="auto",
        help="kernel construction backend (default: auto)",
    )
    p_sweep_submit.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=3,
        help="failed attempts before a cell is quarantined (default: 3)",
    )

    p_sweep_worker = sweep_sub.add_parser(
        "worker",
        help="claim and compute cells from a queue until it is drained",
    )
    p_sweep_worker.add_argument("--queue", required=True, help="queue directory")
    p_sweep_worker.add_argument(
        "--worker-id", default=None, help="lease identity (default: host-pid)"
    )
    p_sweep_worker.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds a lease stays valid between heartbeats (default: 30)",
    )
    p_sweep_worker.add_argument(
        "--max-cells",
        type=_positive_int,
        default=None,
        help="stop after completing this many cells (default: drain)",
    )
    p_sweep_worker.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up after this long without claiming anything "
        "(default: wait while work remains)",
    )

    p_sweep_status = sweep_sub.add_parser(
        "status", help="one progress snapshot of a queue"
    )
    p_sweep_status.add_argument("--queue", required=True, help="queue directory")

    p_sweep_reap = sweep_sub.add_parser(
        "reap",
        help="reclaim expired leases left behind by dead workers",
    )
    p_sweep_reap.add_argument("--queue", required=True, help="queue directory")

    p_serve = sub.add_parser(
        "serve",
        help="online serving tier: async HTTP service over a published release",
    )
    serve_sub = p_serve.add_subparsers(dest="serve_command", required=True)

    p_serve_publish = serve_sub.add_parser(
        "publish",
        help="fit the private recommender and save its release artifact",
    )
    _add_dataset_arguments(p_serve_publish)
    p_serve_publish.add_argument("--measure", default="cn")
    p_serve_publish.add_argument("--epsilon", type=_parse_epsilon, default=0.5)
    p_serve_publish.add_argument(
        "--release", required=True, help="write the .npz artifact here"
    )

    p_serve_run = serve_sub.add_parser(
        "run", help="start the long-lived HTTP recommendation service"
    )
    _add_dataset_arguments(p_serve_run)
    p_serve_run.add_argument(
        "--release",
        default=None,
        help="serve this .npz artifact (default: fit one in-process from "
        "the dataset arguments)",
    )
    p_serve_run.add_argument("--measure", default="cn")
    p_serve_run.add_argument(
        "--epsilon",
        type=_parse_epsilon,
        default=0.5,
        help="privacy parameter when fitting in-process (ignored with "
        "--release)",
    )
    p_serve_run.add_argument("--host", default="127.0.0.1")
    p_serve_run.add_argument(
        "--port", type=int, default=0, help="bind port (0: ephemeral)"
    )
    p_serve_run.add_argument("--n", type=_positive_int, default=10)
    p_serve_run.add_argument(
        "--threads", type=_positive_int, default=4, help="scoring thread pool"
    )
    p_serve_run.add_argument(
        "--max-queue",
        type=_positive_int,
        default=64,
        help="admitted-request bound; beyond it requests are shed "
        "(default: 64)",
    )
    p_serve_run.add_argument(
        "--cluster-at",
        type=float,
        default=0.5,
        help="queue-depth fraction where responses degrade to "
        "cluster-popularity (default: 0.5)",
    )
    p_serve_run.add_argument(
        "--global-at",
        type=float,
        default=0.75,
        help="queue-depth fraction where responses degrade to global "
        "popularity (default: 0.75)",
    )
    p_serve_run.add_argument(
        "--max-requests",
        type=_positive_int,
        default=None,
        help="shut down cleanly after serving this many requests "
        "(default: serve until POST /admin/shutdown)",
    )
    p_serve_run.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline in milliseconds; expired "
        "requests are answered inline from the next degradation rung "
        "(default: none; requests may override with ?deadline_ms=)",
    )
    p_serve_run.add_argument(
        "--mmap-dir",
        default=None,
        help="memory-map release matrices via a content-addressed .npy "
        "cache in this directory",
    )
    p_serve_run.add_argument(
        "--cache-dir",
        default=None,
        help="warm similarity kernels through a persistent "
        "SimilarityStore in this directory (initial load and every swap)",
    )
    p_serve_run.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker processes; >1 starts the prefork supervisor over a "
        "shared data port (default: 1, single-process)",
    )
    p_serve_run.add_argument(
        "--control-port",
        type=int,
        default=0,
        help="supervisor admin port for /stats, /admin/swap, "
        "/admin/shutdown (0: ephemeral; only with --workers > 1)",
    )
    p_serve_run.add_argument(
        "--response-cache-size",
        type=int,
        default=0,
        help="per-process generation-keyed response-cache capacity "
        "(default: 0, disabled; requests bypass with ?fresh=1)",
    )
    p_serve_run.add_argument(
        "--socket-mode",
        choices=("auto", "reuseport", "inherit"),
        default="auto",
        help="how prefork workers share the data port (default: auto — "
        "SO_REUSEPORT where available, else an inherited listener)",
    )
    _add_profile_argument(p_serve_run)

    p_serve_swap = serve_sub.add_parser(
        "swap",
        help="hot-swap a running service to a new release artifact",
    )
    p_serve_swap.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="a single-process server's port, or a supervisor's "
        "--control-port (the shared data port refuses swaps)",
    )
    p_serve_swap.add_argument(
        "--release", required=True, help="the .npz artifact to swap to"
    )

    p_serve_bench = serve_sub.add_parser(
        "bench",
        help="drive the seeded load generator and report p50/p99/QPS",
    )
    _add_dataset_arguments(p_serve_bench)
    p_serve_bench.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="target a running server (default: self-host one in-process "
        "from the dataset arguments)",
    )
    p_serve_bench.add_argument("--measure", default="cn")
    p_serve_bench.add_argument(
        "--epsilon", type=_parse_epsilon, default=0.5,
        help="privacy parameter for the self-hosted release",
    )
    p_serve_bench.add_argument("--requests", type=_positive_int, default=200)
    p_serve_bench.add_argument(
        "--mode", choices=("closed", "open"), default="closed"
    )
    p_serve_bench.add_argument(
        "--concurrency", type=_positive_int, default=8,
        help="closed-loop in-flight bound (default: 8)",
    )
    p_serve_bench.add_argument(
        "--rate", type=float, default=200.0,
        help="open-loop arrivals per second (default: 200)",
    )
    p_serve_bench.add_argument("--n", type=_positive_int, default=10)
    p_serve_bench.add_argument(
        "--threads", type=_positive_int, default=4,
        help="self-hosted scoring thread pool",
    )
    p_serve_bench.add_argument(
        "--expect-tier",
        default=None,
        help="exit non-zero unless at least one response was served "
        "from this tier",
    )
    p_serve_bench.add_argument(
        "--capacity",
        action="store_true",
        help="capacity-planning report: sweep open-loop offered rates "
        "and print offered QPS vs achieved tier mix / p99",
    )
    p_serve_bench.add_argument(
        "--rates",
        default=None,
        metavar="R1,R2,...",
        help="offered rates for --capacity (default: 0.25x, 0.5x, 1x, "
        "2x, 4x of --rate)",
    )
    p_serve_bench.add_argument(
        "--clients",
        type=_positive_int,
        default=1,
        help="loadgen client processes (fork); >1 keeps one GIL-bound "
        "client from capping the measured QPS of a multi-worker server "
        "(requires --connect)",
    )
    p_serve_bench.add_argument(
        "--shutdown",
        action="store_true",
        help="POST /admin/shutdown to the --connect server afterwards",
    )
    p_serve_bench.add_argument(
        "--wait-ready",
        type=float,
        default=30.0,
        help="seconds to wait for a --connect server to answer /health "
        "(default: 30)",
    )
    _add_profile_argument(p_serve_bench)
    return parser


def _cmd_stats(args: argparse.Namespace) -> int:
    dataset = _resolve_dataset(args)
    print(format_stats_table([dataset_stats(dataset)]))
    return 0


def _cmd_tradeoff(args: argparse.Namespace) -> int:
    from repro.cache import SimilarityStore

    dataset = _resolve_dataset(args)
    measures = [get_measure(name) for name in args.measures]
    store = SimilarityStore(args.cache_dir) if args.cache_dir else None
    cells = run_tradeoff(
        dataset,
        measures,
        epsilons=[_parse_epsilon(e) for e in args.epsilons],
        ns=args.ns,
        repeats=args.repeats,
        sample_size=args.sample_size,
        seed=args.seed,
        checkpoint=args.checkpoint,
        engine=args.engine,
        workers=args.workers,
        store=store,
        backend=args.backend,
    )
    for n in args.ns:
        print(format_tradeoff_table(cells, n))
        print()
    stats = getattr(cells, "stats", None)
    if stats is not None:
        print(
            f"engine:      mode={stats.mode}, {stats.workers} worker(s), "
            f"{stats.cells} cell(s) x {stats.repeats} repeat(s) over "
            f"{stats.measures} measure(s) in {stats.wall_seconds:.2f}s"
        )
        if stats.fallback_cells or stats.legacy_cells:
            print(
                f"degraded:    {stats.fallback_cells} cell(s) retried "
                f"sequentially, {stats.legacy_cells} on the per-user path"
            )
        print(
            f"kernel:      {stats.kernel_seconds * 1000:.0f} ms "
            f"({stats.cache_hits} cache hit(s), {stats.cache_misses} miss(es))"
        )
        if stats.compute is not None:
            print(_format_compute_stats(stats.compute))
    if store is not None:
        print(f"cache dir:   {store.directory}")
    return 0


def _cmd_degree_effect(args: argparse.Namespace) -> int:
    dataset = _resolve_dataset(args)
    result = run_degree_effect(
        dataset,
        get_measure(args.measure),
        n=args.n,
        threshold=args.threshold,
        seed=args.seed,
    )
    print(f"dataset: {result.dataset}  measure: {result.measure.upper()}")
    print(
        f"NDCG@{result.n} (eps=inf): degree <= {result.threshold}: "
        f"{result.low_degree_mean:.3f}, degree > {result.threshold}: "
        f"{result.high_degree_mean:.3f}"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = _resolve_dataset(args)
    measures = [get_measure(name) for name in args.measures]
    cells = run_comparison(
        dataset,
        measures,
        epsilons=[_parse_epsilon(e) for e in args.epsilons],
        n=args.n,
        repeats=args.repeats,
        sample_size=args.sample_size,
        seed=args.seed,
    )
    print(format_comparison_table(cells))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    if getattr(args, "attack_command", None) == "audit":
        return _cmd_attack_audit(args)
    dataset = _resolve_dataset(args)
    measure_name = args.measure
    victim = args.victim
    if victim is None:
        # Pick the first user that actually has preferences to leak.
        for user in dataset.social.users():
            if (
                dataset.preferences.has_user(user)
                and dataset.preferences.user_degree(user) > 0
            ):
                victim = user
                break
    if victim is None:
        print("no user with preference edges found", file=sys.stderr)
        return 1

    non_private = run_attack_experiment(
        dataset.social,
        dataset.preferences,
        victim,
        lambda: SocialRecommender(get_measure(measure_name), n=args.top_n),
        top_n=args.top_n,
    )
    private = run_attack_experiment(
        dataset.social,
        dataset.preferences,
        victim,
        lambda: PrivateSocialRecommender(
            get_measure(measure_name), epsilon=args.epsilon, n=args.top_n,
            seed=args.seed,
        ),
        top_n=args.top_n,
    )
    print(f"Sybil attack against victim {victim!r} "
          f"({len(non_private.actual)} private preference edges)")
    print(
        f"  non-private recommender: recall={non_private.recall:.2f} "
        f"precision={non_private.precision:.2f}"
    )
    print(
        f"  private (eps={args.epsilon:g}):    recall={private.recall:.2f} "
        f"precision={private.precision:.2f}"
    )
    return 0


def _cmd_attack_audit(args: argparse.Namespace) -> int:
    """Run the red-team privacy audit and report empirical vs analytical."""
    import json

    from repro.attacks.audit import format_audit_table, run_privacy_audit

    dataset = _resolve_dataset(args)
    store = None
    if args.cache_dir:
        from repro.cache.store import SimilarityStore

        store = SimilarityStore(args.cache_dir)
    # Dedupe targets preserving order (nargs="+" allows repeats).
    targets = list(dict.fromkeys(args.target))
    report = run_privacy_audit(
        dataset,
        measures=args.measures,
        epsilons=args.eps,
        targets=targets,
        trials=args.trials,
        repeats=args.repeats,
        seed=args.seed,
        backend=args.backend,
        store=store,
        louvain_runs=args.louvain_runs,
    )
    if args.json == "-":
        print(json.dumps(report.to_jsonable(), indent=2))
    else:
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(report.to_jsonable(), handle, indent=2)
            print(f"audit report written to {args.json}")
        print(format_audit_table(report))
    violations = report.violations()
    if violations:
        for cell in violations:
            print(
                f"repro: audit violation: {cell.target}/{cell.measure} "
                f"eps={cell.epsilon:g}: empirical {cell.eps_empirical:.4f} > "
                f"analytical {cell.eps_analytical:.4f}",
                file=sys.stderr,
            )
        if args.strict:
            raise PrivacyError(
                f"{len(violations)} audit cell(s) exceed the ledger's "
                f"analytical epsilon"
            )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Print the structural properties the dataset substitution rests on."""
    import numpy as np

    from repro.graph.analysis import (
        average_clustering_coefficient,
        community_size_profile,
        degree_histogram,
        sampled_path_length,
    )

    dataset = _resolve_dataset(args)
    graph = dataset.social
    print(f"dataset: {dataset.name}")
    print(f"users: {graph.num_users:,}   social edges: {graph.num_edges:,}")
    degrees = sorted(graph.degrees().values())
    if degrees:
        print(
            f"degree: min {degrees[0]}, median {degrees[len(degrees) // 2]}, "
            f"mean {graph.average_degree():.1f}, max {degrees[-1]}"
        )
    histogram = degree_histogram(graph)
    low = sum(count for degree, count in histogram.items() if degree <= 10)
    print(f"users with degree <= 10: {low} ({low / max(len(degrees), 1):.0%})")
    print(
        f"avg clustering coefficient: "
        f"{average_clustering_coefficient(graph):.3f}"
    )
    length = sampled_path_length(
        graph, samples=args.path_samples, rng=np.random.default_rng(args.seed)
    )
    print(f"sampled mean path length: {length:.2f}")
    profile = community_size_profile(
        graph, runs=args.louvain_runs, seed=args.seed
    )
    preview = ", ".join(str(s) for s in profile.sizes[:10])
    if len(profile.sizes) > 10:
        preview += ", ..."
    print(
        f"louvain: {profile.num_clusters} communities "
        f"(Q={profile.modularity:.3f}); sizes [{preview}]; "
        f"largest holds {profile.largest_fraction:.1%} of users"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Monte-Carlo check that module A_w's release respects its epsilon."""
    from repro.community.clustering import Clustering
    from repro.core.cluster_weights import noisy_cluster_item_weights
    from repro.graph.preference_graph import PreferenceGraph
    from repro.privacy.validation import estimate_privacy_loss

    size = max(1, args.cluster_size)
    clustering = Clustering([list(range(size))])
    base = PreferenceGraph()
    base.add_users(range(size))
    base.add_edge(0, "item")
    neighbour = base.with_edge(size - 1, "item") if size > 1 else base.copy()
    if size == 1:
        neighbour = base.without_edge(0, "item")

    def mechanism(prefs, rng):
        released = noisy_cluster_item_weights(
            prefs, clustering, args.epsilon, rng=rng
        )
        return released.weight("item", 0)

    estimate = estimate_privacy_loss(
        mechanism, base, neighbour, samples=args.samples, seed=args.seed
    )
    verdict = "OK" if estimate.is_consistent_with(args.epsilon) else "VIOLATION"
    print(
        f"claimed epsilon: {args.epsilon:g}   cluster size: {size}\n"
        f"empirical lower bound: {estimate.epsilon_lower_bound:.4f} "
        f"({estimate.samples} samples, {estimate.buckets_compared} buckets)\n"
        f"verdict: {verdict}"
    )
    return 0 if verdict == "OK" else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import ReportConfig, generate_report

    config = ReportConfig(
        lastfm_scale=args.lastfm_scale,
        flixster_scale=args.flixster_scale,
        repeats=args.repeats,
        seed=args.seed,
    )
    report = generate_report(config)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def _cmd_check_release(args: argparse.Namespace) -> int:
    """Verify a release artifact: integrity, provenance, optional audit."""
    from repro.core.persistence import inspect_release

    provenance = inspect_release(args.path)
    checksum = (
        f"{provenance.checksum[:16]}... (verified)"
        if provenance.checksum_verified
        else "absent (format v1, pre-integrity)"
    )
    epsilon = "inf" if math.isinf(provenance.epsilon) else f"{provenance.epsilon:g}"
    measure = provenance.measure + (
        "" if provenance.measure_registered else "  [NOT REGISTERED in this build]"
    )
    print(f"release:     {provenance.path}")
    print(f"integrity:   OK (format v{provenance.version})")
    print(f"checksum:    {checksum}")
    print(f"epsilon:     {epsilon}")
    print(f"measure:     {measure}")
    print(f"max_weight:  {provenance.max_weight:g}")
    print(
        f"dimensions:  {provenance.num_items} items x "
        f"{provenance.num_clusters} clusters ({provenance.num_users} users)"
    )
    if not args.audit:
        return 0
    if math.isinf(provenance.epsilon):
        print("audit:       skipped (epsilon = inf releases exact averages)")
        return 0

    # Monte-Carlo audit: rerun module A_w at the artifact's claimed
    # epsilon on the smallest neighbouring input that the release's own
    # clustering admits, and bound the empirical privacy loss.
    from repro.community.clustering import Clustering
    from repro.core.cluster_weights import noisy_cluster_item_weights
    from repro.core.persistence import PublishedRelease
    from repro.graph.preference_graph import PreferenceGraph
    from repro.privacy.validation import estimate_privacy_loss

    release = PublishedRelease.load(args.path)
    size = max(1, min(min(release.weights.clustering.sizes(), default=1), 8))
    clustering = Clustering([list(range(size))])
    base = PreferenceGraph()
    base.add_users(range(size))
    base.add_edge(0, "item")
    neighbour = (
        base.with_edge(size - 1, "item") if size > 1 else base.without_edge(0, "item")
    )

    def mechanism(prefs, rng):
        released = noisy_cluster_item_weights(
            prefs,
            clustering,
            release.epsilon,
            rng=rng,
            max_weight=release.max_weight,
        )
        return released.weight("item", 0)

    estimate = estimate_privacy_loss(
        mechanism, base, neighbour, samples=args.samples, seed=args.seed
    )
    verdict = "OK" if estimate.is_consistent_with(release.epsilon) else "VIOLATION"
    print(
        f"audit:       empirical lower bound "
        f"{estimate.epsilon_lower_bound:.4f} vs claimed {epsilon} "
        f"({estimate.samples} samples) -> {verdict}"
    )
    return 0 if verdict == "OK" else 1


def _format_bytes(size: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f} {unit}" if unit != "B" else f"{int(size)} B"
        size /= 1024
    return f"{size:.1f} GiB"  # pragma: no cover - loop always returns


def _cmd_batch(args: argparse.Namespace) -> int:
    """Serve every user's top-N in one batch, printing perf counters."""
    from repro.cache import SimilarityStore
    from repro.core.batch import batch_recommend_all

    dataset = _resolve_dataset(args)
    store = SimilarityStore(args.cache_dir) if args.cache_dir else None
    recommender = PrivateSocialRecommender(
        get_measure(args.measure), epsilon=args.epsilon, n=args.n, seed=args.seed
    )
    recommender.fit(dataset.social, dataset.preferences)
    results = batch_recommend_all(
        recommender,
        n=args.n,
        store=store,
        workers=args.workers,
        shard_size=args.shard_size,
        backend=args.backend,
    )
    stats = results.stats
    shard_ms = [f"{s * 1000:.0f}" for s in stats.shard_seconds]
    preview = ", ".join(shard_ms[:8]) + (", ..." if len(shard_ms) > 8 else "")
    print(
        f"served {stats.users_served} users in {stats.wall_seconds:.2f}s "
        f"({stats.rows_per_second:,.0f} rows/s, mode={stats.mode})"
    )
    print(
        f"shards:      {stats.num_shards} "
        f"({stats.fallback_shards} degraded, "
        f"{stats.fallback_users} users on the per-user path)"
    )
    if shard_ms:
        print(f"shard wall:  [{preview}] ms")
    print(
        f"kernel:      {stats.kernel_seconds * 1000:.0f} ms "
        f"({stats.cache_hits} cache hit(s), {stats.cache_misses} miss(es))"
    )
    if stats.compute is not None:
        print(_format_compute_stats(stats.compute))
    if store is not None:
        print(f"cache dir:   {store.directory}")
    return 0


def _format_compute_stats(compute) -> str:
    """One summary line for a kernel construction's ComputeStats."""
    stages = ", ".join(
        f"{stage} {seconds * 1000:.0f}ms"
        for stage, seconds in compute.stage_seconds.items()
    )
    line = (
        f"compute:     backend={compute.backend} "
        f"(requested {compute.requested}), "
        f"{compute.rows} rows at {compute.rows_per_second:,.0f} rows/s"
    )
    if compute.blocks:
        line += f", {compute.blocks} block(s) x {compute.workers} worker(s)"
    if compute.fallbacks:
        line += f", {compute.fallbacks} fallback(s)"
    if stages:
        line += f" [{stages}]"
    return line


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect, prune, or warm the persistent similarity-kernel cache."""
    from repro.cache import SimilarityStore

    store = SimilarityStore(args.cache_dir)
    if args.cache_command == "info":
        entries = store.info()
        if not entries:
            print(f"cache {store.directory}: empty")
            return 0
        total = sum(entry.size_bytes for entry in entries)
        print(f"cache {store.directory}: {len(entries)} artifact(s), "
              f"{_format_bytes(total)}")
        import json as _json

        for entry in entries:
            status = "ok" if entry.ok else "CORRUPT"
            try:
                fingerprint = _json.loads(entry.measure)
                params = fingerprint.get("params") or {}
                measure = fingerprint["measure"] + (
                    "(" + ", ".join(f"{k}={v}" for k, v in params.items()) + ")"
                    if params
                    else ""
                )
            except (ValueError, KeyError, TypeError):
                measure = entry.measure
            print(
                f"  {entry.key[:16]}...  {status:>7}  "
                f"{entry.num_users:>6} users  {entry.nnz:>9} nnz  "
                f"{_format_bytes(entry.size_bytes):>10}  {measure}"
            )
        return 0
    if args.cache_command == "prune":
        removed, freed = store.prune(max_bytes=args.max_bytes)
        print(
            f"pruned {removed} artifact(s), freed {_format_bytes(freed)} "
            f"(budget {_format_bytes(args.max_bytes)})"
        )
        return 0
    # warm
    import time as _time

    from repro.compute.stats import ComputeStats
    from repro.core.batch import compute_similarity_kernel, supports_vectorised_measure

    dataset = _resolve_dataset(args)
    backend = getattr(args, "backend", "auto")
    for name in args.measures:
        measure = get_measure(name)
        if not supports_vectorised_measure(measure):
            print(f"{name}: skipped (no vectorised kernel)")
            continue
        compute_stats = ComputeStats(requested=backend)
        start = _time.perf_counter()
        lookup = store.warm(
            dataset.social,
            measure,
            lambda m=measure: compute_similarity_kernel(
                dataset.social, m, backend=backend, stats=compute_stats
            ),
        )
        elapsed = _time.perf_counter() - start
        state = "hit" if lookup.hit else "computed"
        print(
            f"{name}: {state} in {elapsed:.2f}s "
            f"({lookup.matrix.num_users} users, {lookup.matrix.nnz} nnz) "
            f"-> {lookup.path}"
        )
        if not lookup.hit and compute_stats.backend:
            print("  " + _format_compute_stats(compute_stats))
    stats = store.stats
    print(
        f"cache stats: {stats.hits} hit(s), {stats.misses} miss(es), "
        f"{stats.corrupt_recomputed} corrupt artifact(s) recomputed"
    )
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Inspect observability data: render a trace or diff two summaries."""
    import json as _json

    from repro import obs

    if args.obs_command == "trend":
        try:
            report = obs.compare_summaries(
                args.current, args.baseline, threshold=args.threshold
            )
        except (OSError, ValueError) as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        print(f"current:     {args.current}")
        print(f"baseline:    {args.baseline}")
        print(obs.format_trend(report, threshold=args.threshold))
        if args.strict and report.regressions:
            return 1
        return 0

    try:
        snapshot, meta = obs.read_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    wall = meta.get("wall_seconds")
    wall = float(wall) if isinstance(wall, (int, float)) else None
    if args.json:
        print(
            _json.dumps(
                obs.summary_dict(snapshot, wall_seconds=wall, meta=meta),
                indent=2,
            )
        )
        return 0
    command = meta.get("command")
    if command:
        print(f"trace:       {args.path} (command: {command})")
    else:
        print(f"trace:       {args.path}")
    print(obs.format_report(snapshot, wall_seconds=wall))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Distributed sweep queue operations (submit/worker/status/reap)."""
    from repro.dist import (
        SweepQueue,
        SweepSpec,
        SweepWorker,
        dataset_descriptor,
        submit_tradeoff_sweep,
    )

    if args.sweep_command == "submit":
        if args.data_dir:
            descriptor = dataset_descriptor(data_dir=args.data_dir)
        else:
            scale = (
                args.scale if args.dataset == "lastfm" else args.scale * 0.1
            )
            descriptor = dataset_descriptor(
                preset=args.dataset, scale=scale, seed=args.seed
            )
        spec = SweepSpec.build(
            dataset=descriptor,
            measures=args.measures,
            epsilons=[_parse_epsilon(e) for e in args.epsilons],
            ns=args.ns,
            repeats=args.repeats,
            sample_size=args.sample_size,
            louvain_runs=args.louvain_runs,
            seed=args.seed,
            engine=args.engine,
            backend=args.backend,
            max_attempts=args.max_attempts,
        )
        queue = submit_tradeoff_sweep(args.queue, spec)
        status = queue.status()
        print(f"queue:       {args.queue}")
        print(f"sweep:       {spec.describe()}")
        print(
            f"tasks:       {status.total} cell(s) "
            f"({status.done} already done, {status.pending} pending)"
        )
        print(f"run workers: repro sweep worker --queue {args.queue}")
        return 0
    if args.sweep_command == "worker":
        worker = SweepWorker(
            args.queue,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
            max_cells=args.max_cells,
            max_idle_s=args.max_idle,
        )
        print(f"worker {worker.worker_id} attached to {args.queue}")
        stats = worker.run()
        print(
            f"worker done: {stats.cells_completed} cell(s) completed, "
            f"{stats.cells_failed} failed, "
            f"{stats.cells_skipped_cached} already checkpointed, "
            f"{stats.lease_losses} lease(s) lost"
        )
        return 0
    if args.sweep_command == "status":
        queue = SweepQueue(args.queue)
        status = queue.status()
        print(f"queue:       {args.queue}")
        print(
            f"cells:       {status.total} total = {status.done} done, "
            f"{status.pending} pending, {status.leased} leased "
            f"({status.expired} expired), {status.poisoned} poisoned"
        )
        for task_id in queue.task_ids():
            if queue.is_poisoned(task_id):
                record = queue.poison_record(task_id) or {}
                print(
                    f"  poisoned: {task_id} after "
                    f"{record.get('attempts', '?')} attempt(s): "
                    f"{record.get('reason', 'unknown')}"
                )
        return 0
    # reap
    queue = SweepQueue(args.queue)
    reclaimed = queue.reap()
    status = queue.status()
    print(
        f"reaped {reclaimed} expired lease(s); {status.remaining} cell(s) "
        f"remaining ({status.poisoned} poisoned)"
    )
    return 0


def _serve_release(args, dataset):
    """Load (or fit in-process) the release a serve command operates on.

    Returns ``(release, path)`` where ``path`` is None for in-process
    releases.
    """
    from repro.core.persistence import PublishedRelease

    path = getattr(args, "release", None)
    if path:
        release = PublishedRelease.load(
            path, mmap_dir=getattr(args, "mmap_dir", None)
        )
        return release, path
    recommender = PrivateSocialRecommender(
        get_measure(args.measure),
        epsilon=args.epsilon,
        n=getattr(args, "n", 10),
        seed=args.seed,
    )
    recommender.fit(dataset.social, dataset.preferences)
    return PublishedRelease.from_recommender(recommender), None


def _serve_build_server(args, dataset, release, path):
    from repro.serve import (
        AdmissionController,
        AdmissionPolicy,
        HotSwapper,
        RecommendationServer,
        ServerConfig,
        ServingEngine,
    )

    store = None
    if getattr(args, "cache_dir", None):
        from repro.cache import SimilarityStore

        store = SimilarityStore(args.cache_dir)
    engine = ServingEngine(
        release, dataset.social, generation=0, path=path, store=store
    )
    policy = AdmissionPolicy(
        max_queue=getattr(args, "max_queue", 64),
        cluster_at=getattr(args, "cluster_at", 0.5),
        global_at=getattr(args, "global_at", 0.75),
    )
    config = ServerConfig(
        host=getattr(args, "host", "127.0.0.1"),
        port=getattr(args, "port", 0),
        n_default=args.n,
        threads=args.threads,
        max_requests=getattr(args, "max_requests", None),
        mmap_dir=getattr(args, "mmap_dir", None),
        deadline_ms=getattr(args, "deadline_ms", None),
        response_cache_size=getattr(args, "response_cache_size", 0),
    )
    return RecommendationServer(
        HotSwapper(engine),
        AdmissionController(policy),
        dataset.social,
        config,
        store=store,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Online serving tier: publish an artifact, run the service, bench it."""
    import asyncio
    import signal

    if args.serve_command == "publish":
        from repro.core.persistence import PublishedRelease

        dataset = _resolve_dataset(args)
        recommender = PrivateSocialRecommender(
            get_measure(args.measure), epsilon=args.epsilon, seed=args.seed
        )
        recommender.fit(dataset.social, dataset.preferences)
        release = PublishedRelease.from_recommender(recommender)
        release.save(args.release)
        weights = release.weights
        epsilon = "inf" if math.isinf(release.epsilon) else f"{release.epsilon:g}"
        print(f"release:     {args.release}")
        print(
            f"provenance:  measure {release.measure_name}, epsilon {epsilon}, "
            f"{len(weights.items)} items x "
            f"{weights.clustering.num_clusters} clusters "
            f"({weights.clustering.num_users} users)"
        )
        return 0

    if args.serve_command == "run":
        dataset = _resolve_dataset(args)
        if getattr(args, "workers", 1) > 1:
            return _cmd_serve_supervisor(args, dataset)
        release, path = _serve_release(args, dataset)
        server = _serve_build_server(args, dataset, release, path)

        async def _run() -> None:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, server.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # non-unix platforms / nested loops
            await server.start()
            desc = server.swapper.current.describe()
            print(
                f"serving on http://{server.config.host}:{server.port} "
                f"(generation {desc['generation']}, "
                f"{desc['num_users']} users, {desc['num_items']} items, "
                f"measure {desc['measure']})",
                flush=True,
            )
            await server.serve_until_shutdown()

        asyncio.run(_run())
        tiers = ", ".join(
            f"{tier}={count}"
            for tier, count in sorted(server.tier_counts.items())
        )
        print(
            f"shutdown:    clean ({server.requests_served} request(s) "
            f"served, {server.errors} error(s))"
        )
        print(f"tiers:       [{tiers or 'none'}]")
        print(
            f"admission:   peak depth {server.admission.peak_depth}, "
            f"{server.admission.shed_count} shed"
        )
        return 0

    if args.serve_command == "swap":
        return _cmd_serve_swap(args)

    return _cmd_serve_bench(args)


def _cmd_serve_supervisor(args: argparse.Namespace, dataset) -> int:
    """``serve run --workers N``: the prefork supervisor path."""
    import asyncio
    import signal
    import tempfile

    from repro.serve import (
        AdmissionPolicy,
        ServerConfig,
        ServingSupervisor,
        SupervisorConfig,
    )

    release_path = args.release
    if release_path is None:
        # Workers load the artifact from disk (that is what makes the
        # release pages shareable), so an in-process fit is staged to a
        # temporary artifact first.
        release, _ = _serve_release(args, dataset)
        staging = tempfile.mkdtemp(prefix="repro-serve-")
        release_path = os.path.join(staging, "release.npz")
        release.save(release_path)
        print(f"staged:      in-process fit -> {release_path}")

    supervisor = ServingSupervisor(
        release_path,
        dataset.social,
        server_config=ServerConfig(
            host=args.host,
            port=args.port,
            n_default=args.n,
            threads=args.threads,
            max_requests=args.max_requests,
            mmap_dir=args.mmap_dir,
            deadline_ms=args.deadline_ms,
            response_cache_size=args.response_cache_size,
        ),
        config=SupervisorConfig(
            workers=args.workers,
            socket_mode=args.socket_mode,
            control_port=args.control_port,
        ),
        policy=AdmissionPolicy(
            max_queue=args.max_queue,
            cluster_at=args.cluster_at,
            global_at=args.global_at,
        ),
        cache_dir=args.cache_dir,
    )

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, supervisor.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass
        await supervisor.start()
        print(
            f"serving on http://{args.host}:{supervisor.port} "
            f"({args.workers} workers, "
            f"{supervisor.config.resolved_socket_mode} socket sharing, "
            f"generation {supervisor.generation})",
            flush=True,
        )
        print(
            f"control:     http://{supervisor.config.control_host}:"
            f"{supervisor.control_port} (/stats, /admin/swap, "
            f"/admin/shutdown)",
            flush=True,
        )
        await supervisor.serve_until_shutdown()

    asyncio.run(_run())
    stats = supervisor.final_stats or {}
    workers = stats.get("workers", {})
    tiers = ", ".join(
        f"{tier}={count}"
        for tier, count in sorted(stats.get("tier_counts", {}).items())
    )
    print(
        f"shutdown:    clean ({stats.get('requests_served', 0)} request(s) "
        f"served, {stats.get('errors', 0)} error(s), "
        f"{workers.get('restarts_total', 0)} worker restart(s))"
    )
    print(f"tiers:       [{tiers or 'none'}]")
    print(f"generation:  {stats.get('generation', supervisor.generation)}")
    return 0


def _cmd_serve_swap(args: argparse.Namespace) -> int:
    """``serve swap``: hot-swap a running service to a new artifact."""
    import asyncio
    from urllib.parse import quote

    from repro.serve import http_request_json

    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(
            f"repro: error: --connect expects HOST:PORT, "
            f"got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    release_path = os.path.abspath(args.release)

    async def _swap():
        return await http_request_json(
            host, port, "POST", f"/admin/swap?path={quote(release_path)}"
        )

    try:
        status, payload = asyncio.run(_swap())
    except (OSError, ValueError) as exc:
        print(f"repro: error: swap request failed: {exc}", file=sys.stderr)
        return 2
    if status != 200:
        print(
            f"repro: error: swap refused (HTTP {status}): "
            f"{payload.get('error', payload)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"swap:        generation {payload['old_generation']} -> "
        f"{payload['new_generation']} ({payload['path']})"
    )
    if "workers_swapped" in payload:
        print(
            f"workers:     {payload['workers_swapped']} swapped in place, "
            f"{payload['workers_replaced']} replaced"
        )
    else:
        print(
            f"drain:       {payload['inflight_at_flip']} in flight at flip, "
            f"drained={payload['drained']} "
            f"in {payload['drain_seconds']:.3f}s"
        )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import asyncio
    import time as _time

    from repro.serve import (
        LoadgenConfig,
        LoadGenerator,
        http_get_json,
        http_request_json,
        run_multiprocess,
    )

    dataset = _resolve_dataset(args)
    users = sorted(dataset.social.users())
    clients = getattr(args, "clients", 1)
    if clients > 1 and not args.connect:
        print(
            "repro: error: --clients > 1 requires --connect (the forked "
            "client processes would starve a self-hosted server's loop)",
            file=sys.stderr,
        )
        return 2

    # One (label, offered_rate, config) row per load run: a single run
    # for the plain bench, one open-loop run per offered rate for the
    # --capacity sweep.  With several client processes each offers its
    # share of the rate, so the union stream matches the labelled rate.
    if args.capacity:
        if args.rates:
            try:
                rates = [
                    float(r) for r in args.rates.split(",") if r.strip()
                ]
            except ValueError:
                print(
                    f"repro: error: --rates expects comma-separated "
                    f"numbers, got {args.rates!r}",
                    file=sys.stderr,
                )
                return 2
        else:
            rates = [args.rate * m for m in (0.25, 0.5, 1.0, 2.0, 4.0)]
        if not rates or any(rate <= 0 for rate in rates):
            print(
                "repro: error: --capacity needs at least one positive "
                "offered rate",
                file=sys.stderr,
            )
            return 2
        runs = [
            (
                f"{rate:g}",
                rate,
                LoadgenConfig(
                    requests=args.requests,
                    mode="open",
                    concurrency=args.concurrency,
                    rate=rate / clients,
                    n=args.n,
                    seed=args.seed,
                ),
            )
            for rate in rates
        ]
    else:
        runs = [
            (
                args.mode,
                None,
                LoadgenConfig(
                    requests=args.requests,
                    mode=args.mode,
                    concurrency=args.concurrency,
                    rate=args.rate / clients,
                    n=args.n,
                    seed=args.seed,
                ),
            )
        ]

    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            print(
                f"repro: error: --connect expects HOST:PORT, "
                f"got {args.connect!r}",
                file=sys.stderr,
            )
            return 2

        async def _wait_ready():
            deadline = _time.monotonic() + args.wait_ready
            while True:
                try:
                    status, _ = await http_get_json(host, port, "/health")
                    if status == 200:
                        return
                except (OSError, ValueError):
                    pass
                if _time.monotonic() >= deadline:
                    raise ConnectionError(
                        f"server at {host}:{port} not ready within "
                        f"{args.wait_ready:g}s"
                    )
                await asyncio.sleep(0.1)

        try:
            asyncio.run(_wait_ready())
        except ConnectionError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2
        reports = []
        for label, rate, config in runs:
            if clients > 1:
                report = run_multiprocess(
                    host, port, users, config, clients=clients
                )
            else:
                report = LoadGenerator(users, config).run(host, port)
            reports.append((label, rate, report))
        if args.shutdown:
            asyncio.run(
                http_request_json(host, port, "POST", "/admin/shutdown")
            )
        target = f"{host}:{port}"
    else:
        release, path = _serve_release(args, dataset)
        server = _serve_build_server(args, dataset, release, path)

        async def _bench_selfhost():
            await server.start()
            out = []
            for label, rate, config in runs:
                report = await LoadGenerator(users, config).run_async(
                    "127.0.0.1", server.port
                )
                out.append((label, rate, report))
            server.request_shutdown()
            await server.serve_until_shutdown()
            return out

        reports = asyncio.run(_bench_selfhost())
        target = "self-hosted"

    if args.capacity:
        print(
            f"capacity:    open-loop sweep, {args.requests} request(s) per "
            f"rate, {clients} client(s), seed {args.seed}, target {target}"
        )
        header = (
            f"{'offered/s':>10}  {'achieved/s':>10}  {'p50 ms':>8}  "
            f"{'p99 ms':>8}  {'errors':>6}  tiers"
        )
        print(header)
        for label, rate, report in reports:
            tiers = ", ".join(
                f"{tier}={count}"
                for tier, count in sorted(report.tier_counts().items())
            )
            print(
                f"{rate:>10g}  {report.qps:>10.1f}  {report.p50_ms:>8.2f}  "
                f"{report.p99_ms:>8.2f}  {report.error_count:>6}  "
                f"[{tiers or 'none'}]"
            )
    else:
        _label, _rate, report = reports[0]
        print(
            f"loadgen:     {args.mode} loop, {args.requests} request(s), "
            f"{clients} client(s), seed {args.seed}, target {target}"
        )
        print(f"result:      {report.summary()}")
        print(f"p50:         {report.p50_ms:.2f} ms")
        print(f"p99:         {report.p99_ms:.2f} ms")
        print(f"qps:         {report.qps:,.1f}")
    if args.expect_tier is not None:
        served = sum(
            report.tier_counts().get(args.expect_tier, 0)
            for _label, _rate, report in reports
        )
        errors = sum(report.error_count for _l, _r, report in reports)
        if served == 0 or errors:
            print(
                f"repro: error: expected tier {args.expect_tier!r} "
                f"(served {served} of it, {errors} error(s))",
                file=sys.stderr,
            )
            return 1
        print(
            f"expect-tier: OK ({served} response(s) from "
            f"{args.expect_tier!r}, 0 errors)"
        )
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "tradeoff": _cmd_tradeoff,
    "degree-effect": _cmd_degree_effect,
    "compare": _cmd_compare,
    "attack": _cmd_attack,
    "report": _cmd_report,
    "validate": _cmd_validate,
    "analyze": _cmd_analyze,
    "check-release": _cmd_check_release,
    "batch": _cmd_batch,
    "cache": _cmd_cache,
    "obs": _cmd_obs,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library errors (:class:`~repro.exceptions.ReproError`) are reported
    as one short stderr line and mapped to a family-specific exit code;
    anything else is a bug and keeps its traceback.
    """
    args = build_parser().parse_args(argv)
    command = args.command
    subcommand = getattr(args, f"{command}_command", None)
    if subcommand:
        command = f"{command}.{subcommand}"
    try:
        with _profiled(command, getattr(args, "profile", None)):
            return _COMMANDS[args.command](args)
    except ReproError as exc:
        for family, code in EXIT_CODES:
            if isinstance(exc, family):
                print(f"repro: error: {exc}", file=sys.stderr)
                return code
        raise  # unreachable: ReproError is the last entry


if __name__ == "__main__":
    sys.exit(main())
