"""Loading real crawls from disk, with the paper's exact pre-processing.

If you have the HetRec 2011 Last.fm files (``user_friends.dat``,
``user_artists.dat``) or Flixster dumps in the same two-file shape, point
:func:`load_dataset_directory` at the directory and it will apply the
Section 6.1 pipeline: keep the main connected component (Flixster-style)
or all components (Last.fm-style), drop weak preference edges, binarise
the remainder.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.datasets.dataset import SocialRecDataset
from repro.exceptions import DatasetError
from repro.graph.components import largest_component
from repro.graph.io import read_preference_graph, read_social_graph
from repro.resilience.retry import RetryPolicy
from repro.graph.preference_graph import PreferenceGraph
from repro.graph.social_graph import SocialGraph

__all__ = ["load_dataset_directory", "preprocess_paper_style"]


def preprocess_paper_style(
    social: SocialGraph,
    preferences: PreferenceGraph,
    name: str,
    min_weight: float = 2.0,
    main_component_only: bool = False,
) -> SocialRecDataset:
    """Apply the paper's Section 6.1 pre-processing.

    1. Optionally restrict to the main connected component of the social
       graph induced by users with at least one preference edge (the
       Flixster recipe).
    2. Discard preference edges with weight below ``min_weight`` (the paper
       drops listened-to counts / ratings < 2).
    3. Binarise the surviving edges to weight 1.

    Args:
        social: raw social graph.
        preferences: raw (weighted) preference graph.
        name: dataset label.
        min_weight: threshold below which edges indicate no real preference.
        main_component_only: apply step 1.

    Raises:
        DatasetError: when the result has no users.
    """
    if main_component_only:
        with_prefs = [
            u
            for u in social.users()
            if preferences.has_user(u) and preferences.user_degree(u) > 0
        ]
        induced = social.subgraph(with_prefs)
        social = largest_component(induced)
        preferences = preferences.restricted_to_users(social.users())
    cleaned = preferences.thresholded(min_weight)
    cleaned = cleaned.restricted_to_users(
        [u for u in cleaned.users() if u in social]
    )
    for u in social.users():
        cleaned.add_user(u)
    if social.num_users == 0:
        raise DatasetError(f"dataset {name!r} is empty after pre-processing")
    dataset = SocialRecDataset(name=name, social=social, preferences=cleaned)
    dataset.validate()
    return dataset


def load_dataset_directory(
    directory: str,
    name: Optional[str] = None,
    social_file: str = "user_friends.dat",
    preference_file: str = "user_artists.dat",
    skip_header: bool = True,
    min_weight: float = 2.0,
    main_component_only: bool = False,
    retry: Optional[RetryPolicy] = None,
) -> SocialRecDataset:
    """Load a two-file crawl directory and pre-process it paper-style.

    Args:
        retry: optional policy retrying transient IO failures while
            reading either file (malformed content is never retried).

    Raises:
        DatasetError: when either file is missing, or malformed (the
            error carries the offending path and line number).
        RetryExhaustedError: when ``retry`` was given and the transient
            failures outlasted its budget.
    """
    social_path = os.path.join(directory, social_file)
    preference_path = os.path.join(directory, preference_file)
    for path in (social_path, preference_path):
        if not os.path.exists(path):
            raise DatasetError(f"expected dataset file {path!r} does not exist")
    social = read_social_graph(social_path, skip_header=skip_header, retry=retry)
    preferences = read_preference_graph(
        preference_path, skip_header=skip_header, retry=retry
    )
    return preprocess_paper_style(
        social,
        preferences,
        name=name if name is not None else os.path.basename(directory.rstrip("/")),
        min_weight=min_weight,
        main_component_only=main_component_only,
    )
