"""Datasets: containers, synthetic builders, statistics, disk loaders.

The paper evaluates on crawls of Last.fm (HetRec 2011) and Flixster, which
cannot be redistributed with this reproduction.  The builders in
:mod:`repro.datasets.synthetic` generate datasets matched to the structural
properties that drive the framework's behaviour (community structure,
degree distributions, preference sparsity, item-popularity skew); see
DESIGN.md §4 for the substitution argument.  If you have the original
crawls on disk, :mod:`repro.datasets.loader` loads them in HetRec format
and applies the paper's exact pre-processing.
"""

from repro.datasets.dataset import SocialRecDataset
from repro.datasets.loader import load_dataset_directory, preprocess_paper_style
from repro.datasets.stats import DatasetStats, dataset_stats, format_stats_table
from repro.datasets.synthetic import SyntheticDatasetSpec

__all__ = [
    "SocialRecDataset",
    "SyntheticDatasetSpec",
    "DatasetStats",
    "dataset_stats",
    "format_stats_table",
    "load_dataset_directory",
    "preprocess_paper_style",
]
