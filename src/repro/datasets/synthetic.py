"""Synthetic datasets matched to the paper's Last.fm and Flixster crawls.

The framework's accuracy depends on four structural properties of the
input, all of which the generator controls explicitly:

1. **Community structure** in the social graph — each community is an
   internal preferential-attachment graph, with random bridges between
   communities (:func:`repro.graph.generators.community_attachment_graph`).
2. **Heavy-tailed social degrees** — from the preferential attachment
   (Table 1 reports degree std well above the mean for both crawls).
3. **Preference sparsity and item-popularity skew** — item popularity
   follows a Zipf-like law; preference counts per user are geometric-ish.
4. **Community-correlated tastes with sub-community heterogeneity** —
   users in the same community draw most of their preferences from a
   community-specific item pool (what makes *any* social recommender
   work), but each user also belongs to a *sub-group* with its own
   narrower pool.  Sub-group tastes are finer-grained than the communities
   Louvain detects, so cluster averages cannot represent them exactly —
   this is what gives the framework a realistic, non-zero approximation
   error and reproduces the paper's Figure 3 degree effect (low-degree
   users suffer more from averaging).

Two presets mirror the paper's datasets at configurable scale:

- :meth:`SyntheticDatasetSpec.lastfm_like` — sparse social graph
  (avg degree ~13), ~9 items per user.
- :meth:`SyntheticDatasetSpec.flixster_like` — denser social graph
  (avg degree ~18.5), ~55 preferences per user; the higher degree is what
  produced Flixster's larger clusters and stronger noise resistance in the
  paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.datasets.dataset import SocialRecDataset
from repro.exceptions import DatasetError
from repro.graph.generators import community_attachment_graph
from repro.graph.preference_graph import PreferenceGraph

__all__ = ["SyntheticDatasetSpec"]


@dataclass(frozen=True)
class SyntheticDatasetSpec:
    """Parameters of a synthetic social-recommendation dataset.

    Attributes:
        name: dataset label.
        num_users: total number of users.
        num_communities: number of planted communities.
        attachment: preferential-attachment parameter inside communities
            (drives the average social degree, roughly 2x this value).
        inter_community_edges: random bridges between communities.
        num_items: size of the item universe.
        mean_prefs_per_user: average number of preference edges per user.
        community_affinity: probability that a non-sub-group preference is
            drawn from the user's community pool rather than the global
            pool.
        subgroup_affinity: probability that a preference is drawn from the
            user's *sub-group* pool (finer than the community; this is the
            heterogeneity that creates realistic approximation error).
        subgroups_per_community: number of sub-group pools per community.
        pool_fraction: fraction of the item universe in each community pool.
        zipf_exponent: popularity skew of the global item distribution.
        contagion: fraction of each user's preferences copied from their
            *social neighbors'* preferences (homophily/influence).  This
            aligns tastes with actual friend circles — structure finer than
            any community clustering can capture — and is what gives
            low-degree users their idiosyncratic, averaging-resistant top
            items (the paper's Figure 3 effect).
        num_isolated_components: tiny disconnected social components
            appended after the main graph (the Last.fm crawl has 19 such
            components of 2-7 users; each becomes its own Louvain
            cluster, §6.2).  Their users draw global-pool preferences.
        isolated_component_max_size: size cap for those components (the
            crawl's is 7; sizes are drawn uniformly in [2, cap]).
    """

    name: str
    num_users: int
    num_communities: int
    attachment: int
    inter_community_edges: int
    num_items: int
    mean_prefs_per_user: float
    community_affinity: float = 0.8
    subgroup_affinity: float = 0.45
    subgroups_per_community: int = 4
    pool_fraction: float = 0.05
    zipf_exponent: float = 1.1
    contagion: float = 0.5
    num_isolated_components: int = 0
    isolated_component_max_size: int = 7

    def __post_init__(self) -> None:
        if self.num_users < self.num_communities:
            raise DatasetError(
                f"num_users={self.num_users} < num_communities={self.num_communities}"
            )
        if self.num_communities < 1:
            raise DatasetError("need at least one community")
        if not 0.0 <= self.community_affinity <= 1.0:
            raise DatasetError(
                f"community_affinity must be in [0, 1], got {self.community_affinity}"
            )
        if not 0.0 <= self.subgroup_affinity <= 1.0:
            raise DatasetError(
                f"subgroup_affinity must be in [0, 1], got {self.subgroup_affinity}"
            )
        if self.subgroups_per_community < 1:
            raise DatasetError("subgroups_per_community must be >= 1")
        if not 0.0 <= self.contagion < 1.0:
            raise DatasetError(
                f"contagion must be in [0, 1), got {self.contagion}"
            )
        if self.num_isolated_components < 0:
            raise DatasetError("num_isolated_components must be >= 0")
        if self.isolated_component_max_size < 2:
            raise DatasetError("isolated_component_max_size must be >= 2")
        if self.num_items < 1:
            raise DatasetError("need at least one item")
        if self.mean_prefs_per_user <= 0:
            raise DatasetError("mean_prefs_per_user must be positive")

    # ------------------------------------------------------------------
    # presets
    # ------------------------------------------------------------------
    @classmethod
    def lastfm_like(cls, scale: float = 1.0) -> "SyntheticDatasetSpec":
        """A Last.fm-shaped dataset (Table 1, left column), scaled.

        At scale 1.0: ~1,892 users, avg social degree ~13, ~3,500 items,
        ~49 preferences per user — matching the crawl's user count, social
        density, and per-user preference volume.  The item universe is kept
        proportionally smaller than the crawl's 17,632 artists so that the
        synthetic popularity distribution still gives most items a few
        edges (the crawl's long tail of single-listener artists carries no
        signal for any recommender).
        """
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        users = max(60, int(round(1892 * scale)))
        return cls(
            name=f"lastfm-like(x{scale:g})",
            num_users=users,
            num_communities=max(4, int(round(16 * min(scale, 1.0) + 4))),
            attachment=6,
            inter_community_edges=max(10, users // 8),
            num_items=max(100, int(round(3500 * scale))),
            mean_prefs_per_user=49.0,
            community_affinity=0.8,
            subgroup_affinity=0.5,
            subgroups_per_community=6,
            pool_fraction=0.06,
            zipf_exponent=1.1,
            # The crawl has 19 tiny disconnected components (2-7 users)
            # that become their own Louvain clusters (§6.2).
            num_isolated_components=max(0, int(round(19 * min(scale, 1.0)))),
        )

    @classmethod
    def flixster_like(cls, scale: float = 0.1) -> "SyntheticDatasetSpec":
        """A Flixster-shaped dataset (Table 1, right column), scaled.

        The crawl has 137K users; the default scale 0.1 gives ~13.7K users,
        which preserves the property that matters relative to Last.fm —
        much higher average social degree (~18.5) and hence much larger
        communities — while staying laptop-sized.
        """
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        users = max(100, int(round(137372 * scale)))
        return cls(
            name=f"flixster-like(x{scale:g})",
            num_users=users,
            num_communities=max(6, int(round(46 * min(scale * 10, 1.0)))),
            attachment=9,
            inter_community_edges=max(20, users // 6),
            num_items=max(1500, int(round(48756 * scale * 0.5))),
            mean_prefs_per_user=51.0,
            community_affinity=0.75,
            subgroup_affinity=0.3,
            subgroups_per_community=4,
            pool_fraction=0.04,
            zipf_exponent=1.05,
        )

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def community_sizes(self, rng: np.random.Generator) -> List[int]:
        """Heterogeneous community sizes summing to ``num_users``.

        Real community size distributions are skewed (the paper's Last.fm
        clustering has a largest cluster with 28.5% of the users); sizes
        are drawn from a Dirichlet with concentration < 1 to reproduce the
        skew, with a floor that keeps preferential attachment valid.
        """
        floor = self.attachment + 2
        if self.num_users < self.num_communities * floor:
            # Too small for skewed sizes: just split evenly.
            base = self.num_users // self.num_communities
            sizes = [base] * self.num_communities
            for i in range(self.num_users - base * self.num_communities):
                sizes[i] += 1
            if min(sizes) <= self.attachment:
                raise DatasetError(
                    f"num_users={self.num_users} too small for "
                    f"{self.num_communities} communities with attachment "
                    f"{self.attachment}"
                )
            return sizes
        spare = self.num_users - self.num_communities * floor
        shares = rng.dirichlet([0.7] * self.num_communities)
        sizes = [floor + int(round(spare * s)) for s in shares]
        # Fix rounding drift deterministically on the largest community.
        drift = self.num_users - sum(sizes)
        sizes[int(np.argmax(sizes))] += drift
        return sizes

    def _item_popularity(self, rng: np.random.Generator) -> np.ndarray:
        """Zipf-like popularity over a randomly permuted item universe."""
        ranks = np.arange(1, self.num_items + 1, dtype=float)
        weights = ranks ** (-self.zipf_exponent)
        rng.shuffle(weights)
        return weights / weights.sum()

    def generate(self, seed: int = 0) -> SocialRecDataset:
        """Materialise the dataset deterministically from ``seed``."""
        rng = np.random.default_rng(np.random.SeedSequence((seed, 17)))
        sizes = self.community_sizes(rng)
        social = community_attachment_graph(
            sizes, self.attachment, self.inter_community_edges, rng
        )

        # Per-community item pools over the global popularity distribution,
        # plus finer sub-group pools nested under each community.  Sub-group
        # pools deliberately include items from outside the community pool:
        # real friend circles have niche tastes the wider community does not
        # share, and that divergence is what cluster averaging cannot
        # capture (the paper's approximation error).
        popularity = self._item_popularity(rng)
        pool_size = max(5, int(self.pool_fraction * self.num_items))
        subpool_size = max(3, pool_size // 2)
        pools: List[np.ndarray] = []
        subpools: List[List[np.ndarray]] = []
        for _ in range(len(sizes)):
            pool = rng.choice(
                self.num_items, size=pool_size, replace=False, p=popularity
            )
            pools.append(pool)
            subpools.append(
                [
                    rng.choice(self.num_items, size=subpool_size, replace=False)
                    for _ in range(self.subgroups_per_community)
                ]
            )

        preferences = PreferenceGraph()
        preferences.add_users(range(self.num_users))
        for item in range(self.num_items):
            preferences.add_item(item)

        # Pass 1 — base tastes: each user draws "seed" preferences from the
        # sub-group / community / global mixture.
        base_items: List[List[int]] = [[] for _ in range(self.num_users)]
        boundaries = np.cumsum([0, *sizes])
        for community, pool in enumerate(pools):
            pool_weights = popularity[pool]
            pool_weights = pool_weights / pool_weights.sum()
            size = int(sizes[community])
            groups = subpools[community]
            for user in range(boundaries[community], boundaries[community + 1]):
                offset = user - boundaries[community]
                subgroup = groups[
                    min(
                        int(offset * len(groups) / max(size, 1)),
                        len(groups) - 1,
                    )
                ]
                count = 1 + rng.poisson(max(self.mean_prefs_per_user - 1, 0.0))
                count = min(count, self.num_items)
                seed_count = max(1, int(round(count * (1.0 - self.contagion))))
                chosen: set = set()
                for _ in range(seed_count):
                    draw = rng.random()
                    if draw < self.subgroup_affinity:
                        item = int(subgroup[rng.integers(len(subgroup))])
                    elif draw < self.subgroup_affinity + (
                        1.0 - self.subgroup_affinity
                    ) * self.community_affinity:
                        item = int(pool[rng.choice(len(pool), p=pool_weights)])
                    else:
                        # Residual draws are uniform over the whole
                        # universe: the long tail of rare items that real
                        # crawls have in the thousands.
                        item = int(rng.integers(self.num_items))
                    chosen.add(item)
                base_items[user] = list(chosen)

        # Pass 2 — contagion: the remaining preferences are copied from the
        # base tastes of random social neighbors, so taste correlates with
        # the *actual friend circle*, not just the planted community.
        final_items: List[set] = [set(items) for items in base_items]
        if self.contagion > 0.0:
            for user in range(self.num_users):
                neighbors = list(social.neighbors(user))
                if not neighbors:
                    continue
                count = 1 + rng.poisson(max(self.mean_prefs_per_user - 1, 0.0))
                copy_count = count - len(base_items[user])
                for _ in range(max(copy_count, 0)):
                    nbr = neighbors[int(rng.integers(len(neighbors)))]
                    source = base_items[nbr]
                    if source:
                        final_items[user].add(
                            source[int(rng.integers(len(source)))]
                        )

        # Optional tiny disconnected components (the crawl's 19 stray
        # groups): path-connected so each is one community, with a handful
        # of global-pool preferences per user.
        next_user = self.num_users
        for _ in range(self.num_isolated_components):
            size = int(rng.integers(2, self.isolated_component_max_size + 1))
            members = list(range(next_user, next_user + size))
            next_user += size
            for a, b in zip(members, members[1:]):
                social.add_edge(a, b)
            for user in members:
                preferences.add_user(user)
                count = 1 + int(rng.poisson(max(self.mean_prefs_per_user - 1, 0.0)))
                chosen = {
                    int(rng.integers(self.num_items))
                    for _ in range(min(count, self.num_items))
                }
                for item in chosen:
                    preferences.add_edge(user, item)

        for user in range(self.num_users):
            for item in final_items[user]:
                preferences.add_edge(user, item)

        dataset = SocialRecDataset(
            name=self.name, social=social, preferences=preferences
        )
        dataset.validate()
        return dataset
