"""The dataset container shared by experiments, examples, and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import DatasetError
from repro.graph.preference_graph import PreferenceGraph
from repro.graph.social_graph import SocialGraph
from repro.types import UserId

__all__ = ["SocialRecDataset"]


@dataclass
class SocialRecDataset:
    """A named (social graph, preference graph) pair.

    Attributes:
        name: a human-readable label used in tables and logs.
        social: the public social graph ``G_s``.
        preferences: the private preference graph ``G_p``.
    """

    name: str
    social: SocialGraph
    preferences: PreferenceGraph

    def validate(self) -> None:
        """Check basic consistency between the two graphs.

        Every preference-graph user should also exist in the social graph —
        the framework tolerates stragglers (they get singleton clusters),
        but a large mismatch usually indicates a loading bug.

        Raises:
            DatasetError: when any preference user is missing from the
                social graph.
        """
        missing = [u for u in self.preferences.users() if u not in self.social]
        if missing:
            raise DatasetError(
                f"dataset {self.name!r}: {len(missing)} preference-graph "
                f"users are missing from the social graph "
                f"(first few: {missing[:5]!r})"
            )

    def users(self) -> List[UserId]:
        """The social-graph users (the recommendation targets)."""
        return self.social.users()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"users={self.social.num_users}, "
            f"social_edges={self.social.num_edges}, "
            f"items={self.preferences.num_items}, "
            f"preference_edges={self.preferences.num_edges})"
        )
