"""Dataset summary statistics — the quantities of the paper's Table 1."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.datasets.dataset import SocialRecDataset

__all__ = ["DatasetStats", "dataset_stats", "format_stats_table"]


def _mean_std(values: Sequence[float]) -> tuple:
    if not values:
        return (0.0, 0.0)
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return (mean, math.sqrt(variance))


@dataclass(frozen=True)
class DatasetStats:
    """Summary of a dataset, mirroring the rows of the paper's Table 1.

    Attributes:
        name: dataset label.
        num_users: |U|.
        num_social_edges: |E_s|.
        avg_user_degree / std_user_degree: social degree statistics.
        num_items: |I|.
        num_preference_edges: |E_p|.
        avg_item_degree / std_item_degree: preferences per item.
        sparsity: 1 - |E_p| / (|U| * |I|).
    """

    name: str
    num_users: int
    num_social_edges: int
    avg_user_degree: float
    std_user_degree: float
    num_items: int
    num_preference_edges: int
    avg_item_degree: float
    std_item_degree: float
    sparsity: float


def dataset_stats(dataset: SocialRecDataset) -> DatasetStats:
    """Compute the Table 1 statistics for ``dataset``."""
    social = dataset.social
    prefs = dataset.preferences
    user_degrees = [social.degree(u) for u in social.users()]
    item_degrees = [prefs.item_degree(i) for i in prefs.items()]
    avg_user, std_user = _mean_std(user_degrees)
    avg_item, std_item = _mean_std(item_degrees)
    return DatasetStats(
        name=dataset.name,
        num_users=social.num_users,
        num_social_edges=social.num_edges,
        avg_user_degree=avg_user,
        std_user_degree=std_user,
        num_items=prefs.num_items,
        num_preference_edges=prefs.num_edges,
        avg_item_degree=avg_item,
        std_item_degree=std_item,
        sparsity=prefs.sparsity(),
    )


def format_stats_table(stats: Sequence[DatasetStats]) -> str:
    """Render statistics as a text table shaped like the paper's Table 1."""
    rows = [
        ("", [s.name for s in stats]),
        ("|U|", [f"{s.num_users:,}" for s in stats]),
        ("|E_s|", [f"{s.num_social_edges:,}" for s in stats]),
        (
            "avg. user degree",
            [f"{s.avg_user_degree:.1f} (std. {s.std_user_degree:.1f})" for s in stats],
        ),
        ("|I|", [f"{s.num_items:,}" for s in stats]),
        ("|E_p|", [f"{s.num_preference_edges:,}" for s in stats]),
        (
            "avg. item degree",
            [f"{s.avg_item_degree:.1f} (std. {s.std_item_degree:.1f})" for s in stats],
        ),
        ("sparsity(G_p)", [f"{s.sparsity:.3f}" for s in stats]),
    ]
    label_width = max(len(label) for label, _ in rows)
    col_widths = [
        max(len(rows[r][1][c]) for r in range(len(rows)))
        for c in range(len(stats))
    ]
    lines = []
    for label, cells in rows:
        padded = "  ".join(cell.rjust(col_widths[c]) for c, cell in enumerate(cells))
        lines.append(f"{label.ljust(label_width)}  {padded}")
    return "\n".join(lines)
