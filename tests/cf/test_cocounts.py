"""Unit tests for the item-item co-occurrence matrix."""

import math

import numpy as np
import pytest

from repro.cf.cocounts import ItemCoCounts
from repro.exceptions import PrivacyError
from repro.graph.preference_graph import PreferenceGraph


@pytest.fixture
def prefs():
    g = PreferenceGraph()
    g.add_edge(1, "a")
    g.add_edge(1, "b")
    g.add_edge(2, "a")
    g.add_edge(2, "b")
    g.add_edge(3, "a")
    g.add_edge(3, "c")
    return g


class TestExactCounts:
    def test_co_counts(self, prefs):
        counts = ItemCoCounts.build(prefs)
        assert counts.count("a", "b") == 2.0   # users 1 and 2
        assert counts.count("a", "c") == 1.0   # user 3
        assert counts.count("b", "c") == 0.0

    def test_diagonal_is_item_degree(self, prefs):
        counts = ItemCoCounts.build(prefs)
        assert counts.count("a", "a") == 3.0
        assert counts.count("c", "c") == 1.0

    def test_symmetric(self, prefs):
        counts = ItemCoCounts.build(prefs)
        assert np.allclose(counts.matrix, counts.matrix.T)

    def test_clamp_limits_contributions(self, prefs):
        # With clamp 1 each user contributes only their first item: no
        # off-diagonal pair can be counted.
        counts = ItemCoCounts.build(prefs, max_items_per_user=1)
        off_diag = counts.matrix - np.diag(np.diag(counts.matrix))
        assert not off_diag.any()

    def test_invalid_clamp(self, prefs):
        with pytest.raises(PrivacyError):
            ItemCoCounts.build(prefs, max_items_per_user=0)

    def test_unknown_item_raises(self, prefs):
        counts = ItemCoCounts.build(prefs)
        with pytest.raises(KeyError):
            counts.count("zzz", "a")


class TestNoisyRelease:
    def test_noise_applied(self, prefs):
        noisy = ItemCoCounts.build(
            prefs, epsilon=0.5, rng=np.random.default_rng(1)
        )
        exact = ItemCoCounts.build(prefs)
        assert not np.allclose(noisy.matrix, exact.matrix)

    def test_noisy_release_stays_symmetric(self, prefs):
        noisy = ItemCoCounts.build(
            prefs, epsilon=0.5, rng=np.random.default_rng(1)
        )
        assert np.allclose(noisy.matrix, noisy.matrix.T)

    def test_deterministic_given_rng(self, prefs):
        a = ItemCoCounts.build(prefs, epsilon=0.5, rng=np.random.default_rng(7))
        b = ItemCoCounts.build(prefs, epsilon=0.5, rng=np.random.default_rng(7))
        assert np.array_equal(a.matrix, b.matrix)

    def test_edge_level_l1_sensitivity_bounded(self, prefs):
        """Edge-level sensitivity: one new preference edge changes the
        upper triangle (incl. diagonal) by at most 2*clamp in L1 — the new
        item's pairings plus one displaced item's pairings."""
        clamp = 2
        before = ItemCoCounts.build(prefs, max_items_per_user=clamp)
        after = ItemCoCounts.build(
            prefs.with_edge(3, "b"), max_items_per_user=clamp
        )
        diff = np.abs(np.triu(after.matrix - before.matrix))
        assert diff.sum() <= 2 * clamp


class TestCosineSimilarities:
    def test_perfect_overlap_scores_one(self, prefs):
        sims = ItemCoCounts.build(prefs).cosine_similarities()
        counts = ItemCoCounts.build(prefs)
        ab = sims[counts.item_index["a"], counts.item_index["b"]]
        # a and b co-occur twice; degrees 3 and 2 => 2/sqrt(6).
        assert ab == pytest.approx(2 / math.sqrt(6))

    def test_diagonal_zeroed(self, prefs):
        sims = ItemCoCounts.build(prefs).cosine_similarities()
        assert not np.diag(sims).any()

    def test_noisy_negative_diagonals_handled(self, prefs):
        noisy = ItemCoCounts.build(
            prefs, epsilon=0.05, rng=np.random.default_rng(3)
        )
        sims = noisy.cosine_similarities()
        assert np.isfinite(sims).all()
