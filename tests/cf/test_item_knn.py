"""Unit tests for the item-based CF recommender."""

import math

import pytest

from repro.cf.item_knn import ItemBasedCF
from repro.graph.preference_graph import PreferenceGraph
from repro.graph.social_graph import SocialGraph


@pytest.fixture
def social():
    return SocialGraph([(1, 2), (2, 3)])


@pytest.fixture
def prefs():
    g = PreferenceGraph()
    # Items a and b co-occur strongly; c is independent.
    g.add_edge(1, "a")
    g.add_edge(1, "b")
    g.add_edge(2, "a")
    g.add_edge(2, "b")
    g.add_edge(3, "c")
    return g


class TestScoring:
    def test_co_occurring_item_scores_highest(self, social, prefs):
        # A user who owns only "a" should be steered to "b".
        prefs = prefs.copy()
        prefs.add_edge(4, "a")
        social = social.copy()
        social.add_user(4)
        cf = ItemBasedCF(n=3)
        cf.fit(social, prefs)
        ranking = cf.recommend(4).item_ids()
        # "a" itself scores 0 (diagonal zeroed); "b" must beat "c".
        assert ranking.index("b") < ranking.index("c")

    def test_user_without_preferences_zero_scores(self, social, prefs):
        prefs = prefs.copy()
        prefs.add_user(9)
        social = social.copy()
        social.add_user(9)
        cf = ItemBasedCF(n=3)
        cf.fit(social, prefs)
        assert set(cf.utilities(9).values()) == {0.0}

    def test_exclude_owned(self, social, prefs):
        cf = ItemBasedCF(n=3, exclude_owned=True)
        cf.fit(social, prefs)
        ranking = cf.recommend(1, n=3).item_ids()
        assert ranking[0] not in ("a", "b") or math.isinf(
            -cf.utilities(1)["a"]
        )
        assert cf.utilities(1)["a"] == -math.inf

    def test_does_not_read_social_graph(self, prefs):
        """CF must produce identical output for any social graph."""
        empty_social = SocialGraph()
        empty_social.add_users([1, 2, 3])
        dense_social = SocialGraph([(1, 2), (2, 3), (1, 3)])
        a = ItemBasedCF(n=3)
        a.fit(empty_social, prefs)
        b = ItemBasedCF(n=3)
        b.fit(dense_social, prefs)
        assert a.utilities(1) == b.utilities(1)


class TestPrivateCF:
    def test_noise_changes_scores(self, social, prefs):
        # The default clamp (50) would put noise of scale 100/eps on this
        # tiny matrix and wipe out every similarity; clamp to the real
        # maximum preferences per user instead.
        exact = ItemBasedCF(n=3, max_items_per_user=2)
        exact.fit(social, prefs)
        noisy = ItemBasedCF(epsilon=5.0, n=3, seed=1, max_items_per_user=2)
        noisy.fit(social, prefs)
        assert exact.utilities(1) != noisy.utilities(1)

    def test_deterministic_given_seed(self, social, prefs):
        def fitted(seed):
            cf = ItemBasedCF(
                epsilon=5.0, n=3, seed=seed, max_items_per_user=2
            )
            cf.fit(social, prefs)
            return cf.utilities(1)

        assert fitted(4) == fitted(4)
        assert fitted(4) != fitted(5)

    def test_recommend_length(self, lastfm_small):
        cf = ItemBasedCF(epsilon=1.0, n=7, seed=0)
        cf.fit(lastfm_small.social, lastfm_small.preferences)
        user = lastfm_small.social.users()[0]
        assert len(cf.recommend(user)) == 7

    def test_invalid_epsilon(self):
        from repro.exceptions import InvalidEpsilonError

        with pytest.raises(InvalidEpsilonError):
            ItemBasedCF(epsilon=0.0)


class TestSocialVsCF:
    def test_social_recommender_more_personalised(self, lastfm_small):
        """On community-structured data the social recommender should
        track the per-user reference better than global item CF — the
        premise of the paper's introduction."""
        from repro.core.recommender import SocialRecommender
        from repro.experiments.evaluation import (
            EvaluationContext,
            evaluate_recommender,
        )
        from repro.similarity.common_neighbors import CommonNeighbors

        context = EvaluationContext.build(
            lastfm_small, CommonNeighbors(), max_n=10
        )
        cf_score = evaluate_recommender(context, ItemBasedCF(n=10), 10)
        social_score = evaluate_recommender(
            context, SocialRecommender(CommonNeighbors(), n=10), 10
        )
        assert social_score == pytest.approx(1.0)
        assert cf_score < social_score
